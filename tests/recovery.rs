//! Durability tests: daemon death must be a non-event.
//!
//! The contracts under test, straight from the design's recovery story:
//!
//! 1. **SIGKILL chaos** — a daemon killed with `kill -9` mid-campaign
//!    loses nothing: a restart over the same journal directory replays
//!    the write-ahead manifest, re-admits every incomplete campaign, and
//!    finishes each with **zero duplicate simulations** and an outcome
//!    bitwise identical to a serial run. Invariant across worker counts
//!    and solver backends.
//! 2. **Journal-dir fencing** — one writer per directory, enforced
//!    against daemons *and* CLI resumes, with typed errors for the
//!    loser; a lock left by the SIGKILLed daemon is stale and reclaimed
//!    automatically (exercised by every restart in test 1).
//! 3. **Disk-fault degradation** — injected storage faults fail only the
//!    affected campaigns, typed; the daemon keeps scheduling and serving
//!    and counts every survived fault.

use asdex::env::{DiskFault, DiskFaultKind};
use asdex::serve::json::Json;
use asdex::serve::protocol::outcome_json;
use asdex::serve::scheduler::CampaignStatus;
use asdex::serve::{
    build_problem, run_campaign, CampaignSpec, Client, Scheduler, SchedulerConfig, SubmitError,
};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdex-recov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serial reference with the spec's solver pinned, matching what the
/// daemon runs. Returns the canonical bitwise outcome JSON.
fn serial_reference(spec: &CampaignSpec) -> String {
    let solver = asdex::spice::analysis::SolverChoice::from_label(&spec.solver)
        .expect("known solver");
    let problem =
        build_problem(&spec.bench, &spec.corners).expect("benchmark builds").with_solver(solver);
    let outcome = run_campaign(&problem, spec, None).expect("campaign runs");
    outcome_json(&outcome).dump()
}

/// Spawns a real `asdex serve` daemon process on `port` over `dir`.
fn spawn_daemon(port: u16, dir: &Path, workers: usize) -> Child {
    Command::new(env!("CARGO_BIN_EXE_asdex"))
        .args([
            "serve",
            "--addr",
            &format!("127.0.0.1:{port}"),
            "--journal-dir",
            &dir.display().to_string(),
            "--threads",
            "2",
            "--max-active",
            "4",
            "--workers",
            &workers.to_string(),
            "--quiet",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns")
}

/// Picks a free TCP port by binding port 0 and releasing it.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0").expect("bind").local_addr().expect("addr").port()
}

/// Polls until the daemon answers `/healthz` (process up) — distinct
/// from readiness, which the tests assert separately via `/readyz`.
fn wait_until_live(client: &Client, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        if client.healthz().is_ok() {
            return;
        }
        assert!(Instant::now() < until, "daemon never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Complete (newline-terminated) `E ` records in a journal file — the
/// evaluations a resume is obliged to replay rather than re-simulate.
fn complete_eval_lines(path: &Path) -> usize {
    match std::fs::read_to_string(path) {
        Ok(text) => text
            .split_inclusive('\n')
            .filter(|raw| raw.ends_with('\n') && raw.starts_with("E "))
            .count(),
        Err(_) => 0,
    }
}

/// The SIGKILL chaos matrix: in-process evaluation with the dense
/// backend, process-isolated workers with the sparse backend. Outcomes
/// must be bitwise identical to serial runs in both.
#[test]
fn sigkilled_daemon_recovers_bitwise_identically() {
    for (workers, solver) in [(0usize, "dense"), (4usize, "sparse")] {
        let specs: Vec<CampaignSpec> = (0..4u64)
            .map(|k| CampaignSpec {
                bench: "opamp45".to_string(),
                agent: "trm".to_string(),
                seed: 40 + k,
                budget: 1500,
                // fsync per evaluation: the worst case for torn tails,
                // and enough write pressure that the kill lands mid-run.
                checkpoint_every: 1,
                solver: solver.to_string(),
                ..CampaignSpec::default()
            })
            .collect();
        let references: Vec<String> = specs.iter().map(serial_reference).collect();
        let ids: Vec<String> = (0..specs.len()).map(|k| format!("r-{k}")).collect();

        let dir = temp_dir(&format!("kill-w{workers}-{solver}"));
        let mut victim = spawn_daemon(free_port(), &dir, workers);
        // Re-read the actual port: 0 is never passed, so reuse the one we
        // chose — but the daemon may have lost the race for it. Retry on
        // a fresh port until the bind sticks.
        let mut client = None;
        for _ in 0..4 {
            let _ = victim.kill();
            let _ = victim.wait();
            let port = free_port();
            victim = spawn_daemon(port, &dir, workers);
            let candidate = Client::new(format!("127.0.0.1:{port}"));
            let until = Instant::now() + Duration::from_secs(20);
            while Instant::now() < until {
                if candidate.healthz().is_ok() {
                    client = Some(candidate);
                    break;
                }
                if let Ok(Some(_)) = victim.try_wait() {
                    break; // lost the port race; next attempt
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            if client.is_some() {
                break;
            }
        }
        let client = client.expect("daemon came up");

        for (k, spec) in specs.iter().enumerate() {
            client.submit(Some(&ids[k]), spec).expect("admitted");
        }
        // Let the campaigns get partway in, then kill -9: no drain, no
        // checkpoint call, no Drop handlers — the worst case.
        std::thread::sleep(Duration::from_millis(150));
        victim.kill().expect("SIGKILL");
        victim.wait().expect("reaped");

        // The kill must have landed mid-flight for the test to mean
        // anything: the manifest on disk must show at least one campaign
        // without a final terminal record.
        let manifest_text =
            std::fs::read_to_string(dir.join("manifest.log")).unwrap_or_default();
        let finalized = ids
            .iter()
            .filter(|id| {
                manifest_text.lines().any(|l| {
                    l.starts_with(&format!("T id={id} "))
                        && (l.contains("status=completed") || l.contains("status=failed"))
                })
            })
            .count();
        assert!(
            finalized < ids.len(),
            "kill -9 landed after all campaigns finished (workers={workers}); \
             raise the budget or shorten the sleep"
        );

        // What landed on disk is all the successor may replay; anything
        // beyond it must come from real (but non-duplicated) simulation.
        let recorded_at_kill: Vec<usize> = ids
            .iter()
            .map(|id| complete_eval_lines(&dir.join(format!("{id}.journal"))))
            .collect();
        // The SIGKILLed daemon left its lock file behind with a dead
        // pid — the restart below must reclaim it, not wedge.
        assert!(dir.join("asdex.lock").exists(), "kill -9 leaves the stale lock");

        let port = free_port();
        let mut successor = spawn_daemon(port, &dir, workers);
        let client = Client::new(format!("127.0.0.1:{port}"));
        wait_until_live(&client, Duration::from_secs(20));
        // Readiness gate: /readyz flips to 200 once recovery has
        // replayed the manifest (it may be instant; liveness above never
        // implies it).
        let until = Instant::now() + Duration::from_secs(30);
        while !client.readyz().expect("readyz answers") {
            assert!(Instant::now() < until, "recovery never finished");
            std::thread::sleep(Duration::from_millis(10));
        }

        for (k, id) in ids.iter().enumerate() {
            // No resubmission: recovery re-admitted incomplete campaigns
            // on its own; campaigns that finished before the kill are
            // re-exposed with their durable manifest summary.
            let doc = client.wait_for(id, Duration::from_secs(300)).expect("terminal");
            let status = doc.get("status").and_then(Json::as_str).expect("status");
            assert_eq!(status, "completed", "{id} after SIGKILL recovery: {}", doc.dump());
            match doc.get("outcome") {
                Some(outcome) => {
                    assert_eq!(
                        outcome.dump(),
                        references[k],
                        "{id} diverged after SIGKILL (workers={workers}, solver={solver})"
                    );
                    let journal = doc.get("journal").expect("journal telemetry");
                    let replayed =
                        journal.get("replayed").and_then(Json::as_u64).expect("replayed") as usize;
                    assert_eq!(
                        replayed, recorded_at_kill[k],
                        "{id}: every evaluation on disk at kill time must be replayed, \
                         not re-simulated"
                    );
                }
                None => {
                    // Finished before the kill: served from the manifest
                    // summary, whose digest must match the serial run's
                    // outcome JSON bit for bit.
                    let recovered = doc.get("recovered").expect("summary for recovered terminal");
                    let digest =
                        recovered.get("outcome_digest").and_then(Json::as_str).expect("digest");
                    assert_eq!(
                        digest,
                        format!("{:016x}", asdex::serve::manifest::fnv1a(&references[k])),
                        "{id}: recovered digest diverged from the serial outcome"
                    );
                }
            }
        }

        let metrics = client.metrics().expect("metrics");
        assert!(
            metrics.contains("asdex_recovered_campaigns_total"),
            "recovery metric family missing"
        );
        client.drain().expect("graceful drain");
        let status = successor.wait().expect("reaped");
        assert!(status.success(), "drained daemon exits 0");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn journal_dir_fencing_rejects_daemon_and_cli_second_openers() {
    let dir = temp_dir("fence");
    let holder = Scheduler::start(
        SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
        Arc::new(asdex::serve::Metrics::new()),
    )
    .expect("first owner starts");

    // A second daemon process on the same directory: typed startup
    // failure, exit 1, the lock diagnostic on stderr.
    let output = Command::new(env!("CARGO_BIN_EXE_asdex"))
        .args(["serve", "--addr", "127.0.0.1:0", "--journal-dir", &dir.display().to_string()])
        .output()
        .expect("daemon runs");
    assert_eq!(output.status.code(), Some(1), "second daemon must exit 1");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("locked by live process"), "stderr: {stderr}");

    // A CLI journaled run into the same directory: same typed rejection,
    // and not a single byte written.
    let journal = dir.join("cli.journal");
    let output = Command::new(env!("CARGO_BIN_EXE_asdex"))
        .args([
            "size",
            "bowl3",
            "--budget",
            "50",
            "--journal",
            &journal.display().to_string(),
        ])
        .output()
        .expect("CLI runs");
    assert_eq!(output.status.code(), Some(1), "CLI against a live daemon's dir must exit 1");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("locked by live process"), "stderr: {stderr}");
    assert!(!journal.exists(), "the fenced CLI must not have created its journal");

    // Graceful drain releases the fence; the same CLI run now succeeds
    // (and itself takes + releases the lock).
    holder.drain();
    let output = Command::new(env!("CARGO_BIN_EXE_asdex"))
        .args([
            "size",
            "bowl3",
            "--budget",
            "50",
            "--journal",
            &journal.display().to_string(),
            "--quiet",
        ])
        .output()
        .expect("CLI runs");
    assert!(output.status.success(), "CLI after drain: {output:?}");
    assert!(journal.exists());
    assert!(!dir.join("asdex.lock").exists(), "the CLI releases the lock on exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_disk_faults_fail_only_affected_campaigns() {
    let dir = temp_dir("faults");
    let metrics = Arc::new(asdex::serve::Metrics::new());
    let scheduler = Scheduler::start(
        SchedulerConfig {
            journal_dir: dir.clone(),
            max_active: 2,
            disk_fault: Some(DiskFault::new(DiskFaultKind::FsyncError, 0.25, 1)),
            ..SchedulerConfig::default()
        },
        Arc::clone(&metrics),
    )
    .expect("scheduler starts");

    let mut admitted = Vec::new();
    let mut rejected_typed = 0usize;
    for k in 0..8u64 {
        let spec = CampaignSpec {
            bench: "bowl3".to_string(),
            seed: 60 + k,
            budget: 400,
            ..CampaignSpec::default()
        };
        match scheduler.submit(Some(format!("df-{k}")), spec) {
            Ok(id) => admitted.push(id),
            Err(SubmitError::Storage(msg)) => {
                // Write-ahead refused: nothing admitted, typed error.
                assert!(msg.contains("storage error"), "{msg}");
                assert!(scheduler.get(&format!("df-{k}")).is_none(), "df-{k} half-admitted");
                rejected_typed += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }

    let mut completed = 0usize;
    let mut failed_typed = 0usize;
    for id in &admitted {
        assert!(scheduler.wait(id, Duration::from_secs(120)), "{id} timed out");
        let record = scheduler.get(id).expect("registered");
        match record.status() {
            CampaignStatus::Completed => completed += 1,
            CampaignStatus::Failed => {
                let err = record.outcome().expect("terminal").expect_err("failed has an error");
                assert!(
                    err.contains("storage error") || err.contains("not durable"),
                    "{id}: fault-induced failure must be typed, got: {err}"
                );
                failed_typed += 1;
            }
            other => panic!("{id}: unexpected terminal status {other:?}"),
        }
    }

    // The chosen (seed, rate) must actually exercise both sides of the
    // degradation contract: faults hurt someone, and never everyone.
    assert!(completed >= 1, "at least one campaign must survive the fault rate");
    assert!(
        failed_typed + rejected_typed >= 1,
        "at least one campaign must be degraded by the fault rate \
         (completed={completed}, admitted={})",
        admitted.len()
    );
    use std::sync::atomic::Ordering;
    assert!(
        metrics.storage_errors.load(Ordering::Relaxed) > 0,
        "survived faults must be counted"
    );

    // The daemon is still a daemon: after all that, a healthy submission
    // may still hit an injected fault at admission, but the scheduler
    // keeps scheduling — drain cleanly to prove nothing wedged.
    scheduler.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
