//! Chaos and equivalence tests for process-isolated evaluation workers.
//!
//! The contracts under test extend the repo's determinism guarantees to
//! the worker-process execution model:
//!
//! 1. **Worker-count invariance** — campaigns dispatched to 1 or 4
//!    sandboxed `asdex worker` processes produce outcomes bitwise
//!    identical to in-process execution.
//! 2. **Injected-fault equivalence** — process-level fault modes
//!    (worker-abort, worker-hang, worker-kill) produce evaluations
//!    bitwise identical to the unarmed in-process degradations of the
//!    same fault plan: abort/kill ⇔ a caught panic (`worker-panic`),
//!    hang ⇔ a solve-deadline expiry (`timeout`).
//! 3. **SIGKILL transparency** — externally killing random workers in a
//!    loop mid-campaign loses zero campaigns and zero evaluations: the
//!    daemon stays up, every campaign completes, and the outcome is
//!    bitwise identical to a clean run.

use asdex::env::{FaultConfig, FaultInjectingEvaluator, FaultMode};
use asdex::serve::protocol::outcome_json;
use asdex::serve::scheduler::CampaignStatus;
use asdex::serve::{
    build_problem, run_campaign, CampaignSpec, Scheduler, SchedulerConfig, WorkerPool,
    WorkerPoolConfig, WorkerStats,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdex-wp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_asdex"))
}

/// Serial in-process reference for one campaign, as canonical JSON.
fn serial_reference(spec: &CampaignSpec) -> String {
    let problem = build_problem(&spec.bench, &spec.corners).expect("benchmark builds");
    let outcome = run_campaign(&problem, spec, None).expect("campaign runs");
    outcome_json(&outcome).dump()
}

fn scheduler_with_workers(dir: PathBuf, workers: usize) -> Arc<Scheduler> {
    Scheduler::start(
        SchedulerConfig {
            max_active: 4,
            thread_budget: 2,
            journal_dir: dir,
            workers,
            worker_program: Some(worker_binary()),
            ..SchedulerConfig::default()
        },
        Arc::new(asdex::serve::Metrics::new()),
    )
    .expect("scheduler starts")
}

#[test]
fn worker_counts_one_and_four_match_in_process_bitwise() {
    let specs: Vec<CampaignSpec> = (0..4u64)
        .map(|k| CampaignSpec {
            bench: "bowl3".to_string(),
            agent: ["trm", "bo", "random"][(k % 3) as usize].to_string(),
            seed: 500 + k,
            budget: 400,
            ..CampaignSpec::default()
        })
        .collect();
    let references: Vec<String> = specs.iter().map(serial_reference).collect();

    for workers in [1usize, 4] {
        let dir = temp_dir(&format!("count-{workers}"));
        let scheduler = scheduler_with_workers(dir.clone(), workers);
        let ids: Vec<String> = specs
            .iter()
            .enumerate()
            .map(|(k, s)| scheduler.submit(Some(format!("w{workers}-{k}")), s.clone()).unwrap())
            .collect();
        for (k, id) in ids.iter().enumerate() {
            assert!(scheduler.wait(id, Duration::from_secs(300)), "{id} timed out");
            let record = scheduler.get(id).expect("registered");
            assert_eq!(record.status(), CampaignStatus::Completed, "{id}");
            let outcome = record.outcome().expect("terminal").expect("no error");
            assert_eq!(
                outcome_json(&outcome).dump(),
                references[k],
                "campaign {id} diverged from in-process execution at {workers} worker(s)"
            );
        }
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Compares pooled evaluation under an armed process-level fault plan
/// against in-process evaluation of the identical (unarmed) plan, point
/// by point, as full `Evaluation` structs.
fn assert_fault_mode_equivalence(mode: FaultMode, rate: f64, seed: u64) {
    let fault_cfg = FaultConfig::only(mode, rate, seed);

    let mut reference = build_problem("bowl3", "nominal").unwrap();
    reference.evaluator =
        Arc::new(FaultInjectingEvaluator::new(reference.evaluator.clone(), fault_cfg));

    let mut pooled = build_problem("bowl3", "nominal").unwrap();
    pooled.evaluator =
        Arc::new(FaultInjectingEvaluator::new(pooled.evaluator.clone(), fault_cfg));
    let mut cfg = WorkerPoolConfig::new(worker_binary(), "bowl3", "nominal", 2);
    cfg.fault = Some((rate, seed, Some(mode)));
    // Injected hangs are real sleeps in the worker; keep the supervisor
    // deadline tight so the test stays fast. Lethal attempts are
    // deterministic, so one re-dispatch is enough to prove the path.
    cfg.attempt_deadline = Duration::from_millis(250);
    cfg.redispatch_budget = 1;
    let stats = Arc::new(WorkerStats::new());
    let pool = WorkerPool::for_problem(cfg, &pooled, Arc::clone(&stats));
    let pooled = pooled.with_dispatcher(pool.clone());

    let mut mismatches = Vec::new();
    for k in 0..12usize {
        let t = k as f64 / 11.0;
        let u = vec![t, 1.0 - t, (0.3 + 0.4 * t).clamp(0.0, 1.0)];
        let via_pool = pooled.evaluate_normalized(&u, 0);
        let direct = reference.evaluate_normalized(&u, 0);
        if via_pool != direct {
            mismatches.push(format!("point {k}: pooled {via_pool:?} != direct {direct:?}"));
        }
    }
    pool.shutdown();
    assert!(
        mismatches.is_empty(),
        "{} under injected {} faults diverged:\n{}",
        "worker pool",
        mode.label(),
        mismatches.join("\n")
    );
    assert!(
        stats.deaths.load(Ordering::Relaxed) > 0 || mode == FaultMode::WorkerHang,
        "injected {} faults never killed a worker — the chaos was not exercised",
        mode.label()
    );
}

#[test]
fn injected_worker_abort_matches_in_process_panics() {
    assert_fault_mode_equivalence(FaultMode::WorkerAbort, 0.3, 41);
}

#[test]
fn injected_worker_kill_matches_in_process_panics() {
    assert_fault_mode_equivalence(FaultMode::WorkerKill, 0.3, 43);
}

#[test]
fn injected_worker_hang_matches_in_process_timeouts() {
    assert_fault_mode_equivalence(FaultMode::WorkerHang, 0.25, 47);
}

/// Pool-level SIGKILL chaos: a killer thread shoots live workers while a
/// stream of evaluations flows through the pool. Every evaluation must
/// come back bitwise identical to the in-process run.
#[test]
fn external_sigkill_of_workers_is_invisible_in_evaluations() {
    let reference = build_problem("bowl4", "nominal").unwrap();
    let pooled = build_problem("bowl4", "nominal").unwrap();
    let mut cfg = WorkerPoolConfig::new(worker_binary(), "bowl4", "nominal", 4);
    cfg.base_backoff = Duration::from_millis(5);
    cfg.max_backoff = Duration::from_millis(100);
    // Fast heartbeats so the monitor notices idle corpses within the
    // lifetime of this test rather than on the 500ms production cadence.
    cfg.heartbeat_interval = Duration::from_millis(25);
    let stats = Arc::new(WorkerStats::new());
    let pool = WorkerPool::for_problem(cfg, &pooled, Arc::clone(&stats));
    let pooled = pooled.with_dispatcher(pool.clone());

    let done = Arc::new(AtomicBool::new(false));
    let killer = {
        let pool = pool.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                if let Some(pid) = pool.worker_pids().first() {
                    let _ = std::process::Command::new("kill")
                        .args(["-9", &pid.to_string()])
                        .status();
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let mut mismatches = 0usize;
    for k in 0..200usize {
        // Attempts here are microsecond-fast; without pacing, the whole
        // stream finishes before the first kill takes effect. Yield
        // periodically so kills and supervisor recovery interleave with
        // live dispatches.
        if k % 25 == 0 {
            std::thread::sleep(Duration::from_millis(20));
        }
        let t = k as f64 / 199.0;
        let u = vec![t, 1.0 - t, 0.5, (2.0 * t) % 1.0];
        let via_pool = pooled.evaluate_normalized(&u, 0);
        let direct = reference.evaluate_normalized(&u, 0);
        if via_pool != direct {
            mismatches += 1;
        }
    }
    // Kills that land on *idle* workers are buried silently (no `death`)
    // and respawned by the monitor, so the proof that chaos landed is
    // spawns beyond the initial four. Give the monitor a moment to
    // finish its recovery pass.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while stats.spawns.load(Ordering::Relaxed) <= 4 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    done.store(true, Ordering::SeqCst);
    killer.join().unwrap();
    let spawns = stats.spawns.load(Ordering::Relaxed);
    pool.shutdown();
    assert_eq!(mismatches, 0, "evaluations diverged under SIGKILL chaos");
    assert!(spawns > 4, "the killer never landed — chaos was not exercised (spawns={spawns})");
}

/// Reads the parent pid (field 4 of `/proc/<pid>/stat`, after the
/// parenthesized comm).
fn ppid_of(pid: u32) -> Option<u32> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let (_, rest) = stat.rsplit_once(')')?;
    rest.split_whitespace().nth(1)?.parse().ok()
}

/// Finds `asdex worker` children of this process working on `bench` —
/// scoped by benchmark so this killer cannot interfere with the other
/// (concurrently running) pool tests.
fn worker_pids_for_bench(bench: &str) -> Vec<u32> {
    let me = std::process::id();
    let needle: Vec<u8> = format!("worker\0--bench\0{bench}\0").into_bytes();
    let Ok(entries) = std::fs::read_dir("/proc") else { return Vec::new() };
    entries
        .flatten()
        .filter_map(|e| e.file_name().to_str()?.parse::<u32>().ok())
        .filter(|&pid| ppid_of(pid) == Some(me))
        .filter(|&pid| {
            std::fs::read(format!("/proc/{pid}/cmdline"))
                .map(|cmd| cmd.windows(needle.len()).any(|w| w == needle))
                .unwrap_or(false)
        })
        .collect()
}

/// The acceptance scenario: SIGKILL random workers in a loop while the
/// scheduler runs campaigns at worker counts 1 and 4. Zero lost
/// campaigns, bitwise-identical outcomes, and the scheduler keeps
/// accepting work afterwards.
#[test]
fn sigkill_chaos_loses_no_campaigns_and_preserves_outcomes() {
    // bowl5 is unique to this test, so the /proc-scoped killer only ever
    // shoots this test's workers.
    let specs: Vec<CampaignSpec> = (0..3u64)
        .map(|k| CampaignSpec {
            bench: "bowl5".to_string(),
            agent: ["trm", "random", "bo"][(k % 3) as usize].to_string(),
            seed: 900 + k,
            budget: 500,
            ..CampaignSpec::default()
        })
        .collect();
    let references: Vec<String> = specs.iter().map(serial_reference).collect();

    for workers in [1usize, 4] {
        let dir = temp_dir(&format!("chaos-{workers}"));
        let scheduler = scheduler_with_workers(dir.clone(), workers);

        let done = Arc::new(AtomicBool::new(false));
        let killer = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    for pid in worker_pids_for_bench("bowl5") {
                        let _ = std::process::Command::new("kill")
                            .args(["-9", &pid.to_string()])
                            .status();
                    }
                    std::thread::sleep(Duration::from_millis(30));
                }
            })
        };

        let ids: Vec<String> = specs
            .iter()
            .enumerate()
            .map(|(k, s)| scheduler.submit(Some(format!("ch{workers}-{k}")), s.clone()).unwrap())
            .collect();
        for (k, id) in ids.iter().enumerate() {
            assert!(scheduler.wait(id, Duration::from_secs(300)), "{id} timed out under chaos");
            let record = scheduler.get(id).expect("registered");
            assert_eq!(
                record.status(),
                CampaignStatus::Completed,
                "{id} lost under SIGKILL chaos at {workers} worker(s)"
            );
            let outcome = record.outcome().expect("terminal").expect("no error");
            assert_eq!(
                outcome_json(&outcome).dump(),
                references[k],
                "campaign {id} diverged under SIGKILL chaos at {workers} worker(s)"
            );
        }
        done.store(true, Ordering::SeqCst);
        killer.join().unwrap();

        // The daemon-side scheduler is still healthy: it accepts and
        // completes new work after the massacre.
        let after = scheduler
            .submit(None, CampaignSpec { bench: "bowl5".into(), budget: 120, seed: 999, ..CampaignSpec::default() })
            .expect("scheduler still accepts work");
        assert!(scheduler.wait(&after, Duration::from_secs(120)));
        assert_eq!(scheduler.get(&after).unwrap().status(), CampaignStatus::Completed);

        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
