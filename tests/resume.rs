//! Crash-equivalence: a campaign resumed from a checkpoint journal must
//! reproduce the uninterrupted campaign bit for bit.
//!
//! The journal records every `(point, corner, attempt-cap)` evaluation a
//! campaign consumes. Because every agent is deterministic given its seed
//! and every evaluation is a pure function of its key, resuming means:
//! rerun the agent from the same seed and serve recorded evaluations from
//! the journal instead of the simulator. These tests drive all six agents
//! (the trust-region explorer plus the five baselines) at 1 and 4 worker
//! threads and require:
//!
//! 1. journaling itself never changes a `SearchOutcome`,
//! 2. a journal truncated mid-write (the SIGKILL case, including a torn
//!    final line) resumes to the uninterrupted outcome, bitwise, with
//!    equal `EvalStats`,
//! 3. a complete journal replays without a single simulator call, and
//! 4. resume equivalence survives injected worker panics — quarantine
//!    state is rebuilt from the replayed evaluations.

use asdex::baselines::rl::{A2c, Ppo, Trpo};
use asdex::baselines::{CustomizedBo, RandomSearch};
use asdex::core::LocalExplorer;
use asdex::env::circuits::synthetic::Bowl;
use asdex::env::{
    EnvError, EvalEffort, Evaluator, FaultConfig, FaultInjectingEvaluator, FaultMode, Journal,
    JournalMeta, PvtCorner, SearchBudget, Searcher, SizingProblem,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique temp path per test case so parallel test binaries never
/// collide.
fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("asdex-resume-{}-{tag}.journal", std::process::id()))
}

fn bowl(threads: usize) -> SizingProblem {
    Bowl::problem(3, 0.2).expect("bowl builds").with_threads(threads)
}

/// A bowl whose evaluator panics on a deterministic fraction of calls.
fn panicky_bowl(threads: usize, rate: f64, seed: u64) -> SizingProblem {
    let mut p = Bowl::problem(3, 0.2).expect("bowl builds");
    p.evaluator = Arc::new(FaultInjectingEvaluator::new(
        p.evaluator.clone(),
        FaultConfig::only(FaultMode::Panic, rate, seed),
    ));
    p.with_threads(threads)
}

fn agents() -> Vec<Box<dyn Searcher>> {
    vec![
        Box::new(LocalExplorer::default()),
        Box::new(RandomSearch::new()),
        Box::new(CustomizedBo::new()),
        Box::new(A2c::new()),
        Box::new(Ppo::new()),
        Box::new(Trpo::new()),
    ]
}

/// Counts every simulator call that reaches the wrapped evaluator.
struct CountingEvaluator {
    inner: Arc<dyn Evaluator>,
    calls: AtomicUsize,
}

impl Evaluator for CountingEvaluator {
    fn measurement_names(&self) -> &[String] {
        self.inner.measurement_names()
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.evaluate(x, corner)
    }

    fn evaluate_with_effort(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.evaluate_with_effort(x, corner, effort)
    }
}

#[test]
fn journaling_and_full_replay_match_the_plain_run_for_every_agent() {
    let budget = SearchBudget::new(300);
    for threads in [1usize, 4] {
        for mut agent in agents() {
            let name = agent.name().to_string();
            let plain = agent.search(&bowl(threads), budget, 1);

            // Recording must be invisible in the outcome.
            let path = journal_path(&format!("full-{name}-{threads}"));
            let journal = Journal::create(&path, JournalMeta::new(), 10).expect("journal create");
            let recorded = agent.search(&bowl(threads).with_journal(journal), budget, 1);
            assert_eq!(recorded, plain, "{name}@{threads}t: journaling changed the outcome");

            // A full replay must reproduce it again, consuming every entry.
            let journal = Journal::resume(&path, 10).expect("journal resume");
            let problem = bowl(threads).with_journal(journal);
            let resumed = agent.search(&problem, budget, 1);
            assert_eq!(resumed, plain, "{name}@{threads}t: resumed outcome diverged");
            let handle = problem.journal_handle().expect("journal attached");
            let journal = handle.lock().expect("journal lock");
            assert!(journal.replayed() > 0, "{name}@{threads}t: nothing replayed");
            assert_eq!(journal.unconsumed(), 0, "{name}@{threads}t: stale journal entries");
            drop(journal);
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn truncated_journal_resumes_to_the_uninterrupted_outcome() {
    let budget = SearchBudget::new(300);
    for threads in [1usize, 4] {
        for mut agent in agents() {
            let name = agent.name().to_string();
            let plain = agent.search(&bowl(threads), budget, 1);

            let path = journal_path(&format!("cut-{name}-{threads}"));
            let journal = Journal::create(&path, JournalMeta::new(), 5).expect("journal create");
            let _ = agent.search(&bowl(threads).with_journal(journal), budget, 1);

            // Simulate a SIGKILL partway through the campaign: keep 40 %
            // of the bytes, which almost always tears the final line.
            let bytes = std::fs::read(&path).expect("journal readable");
            std::fs::write(&path, &bytes[..bytes.len() * 2 / 5]).expect("journal truncates");

            let journal = Journal::resume(&path, 5).expect("torn journal resumes");
            let to_replay = journal.recorded();
            assert!(to_replay > 0, "{name}@{threads}t: truncation left nothing to replay");
            let problem = bowl(threads).with_journal(journal);
            let resumed = agent.search(&problem, budget, 1);
            assert_eq!(
                resumed, plain,
                "{name}@{threads}t: resume after truncation diverged (stats included)"
            );
            let handle = problem.journal_handle().expect("journal attached");
            let journal = handle.lock().expect("journal lock");
            assert_eq!(
                journal.replayed(),
                to_replay,
                "{name}@{threads}t: not every surviving entry was replayed"
            );
            drop(journal);
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn complete_journal_replays_without_touching_the_simulator() {
    let budget = SearchBudget::new(200);
    let mut agent = RandomSearch::new();
    let path = journal_path("no-sim");
    let journal = Journal::create(&path, JournalMeta::new(), 25).expect("journal create");
    let plain = agent.search(&bowl(1).with_journal(journal), budget, 1);

    let counter = Arc::new(CountingEvaluator {
        inner: Bowl::problem(3, 0.2).expect("bowl builds").evaluator.clone(),
        calls: AtomicUsize::new(0),
    });
    let mut problem = Bowl::problem(3, 0.2).expect("bowl builds");
    problem.evaluator = counter.clone();
    let journal = Journal::resume(&path, 25).expect("journal resume");
    let resumed = agent.search(&problem.with_journal(journal), budget, 1);
    assert_eq!(resumed, plain, "replayed outcome diverged");
    assert_eq!(
        counter.calls.load(Ordering::SeqCst),
        0,
        "a fully journaled campaign must not simulate"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_equivalence_survives_injected_worker_panics() {
    let budget = SearchBudget::new(300);
    for threads in [1usize, 4] {
        for mut agent in agents() {
            let name = agent.name().to_string();
            let plain = agent.search(&panicky_bowl(threads, 0.2, 23), budget, 1);

            let path = journal_path(&format!("panic-{name}-{threads}"));
            let journal = Journal::create(&path, JournalMeta::new(), 5).expect("journal create");
            let _ = agent.search(&panicky_bowl(threads, 0.2, 23).with_journal(journal), budget, 1);

            let bytes = std::fs::read(&path).expect("journal readable");
            std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("journal truncates");

            // The replayed prefix contains terminal worker-panic records;
            // finalize re-inserts their quarantine keys, so the live tail
            // sees the same quarantine state the original run had.
            let journal = Journal::resume(&path, 5).expect("torn journal resumes");
            let resumed =
                agent.search(&panicky_bowl(threads, 0.2, 23).with_journal(journal), budget, 1);
            assert_eq!(resumed, plain, "{name}@{threads}t: panic-laden resume diverged");
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn sparse_backend_resume_matches_the_uninterrupted_sparse_run() {
    // The solver backend is part of the campaign's identity: a journal
    // written by a sparse-backend campaign must resume — through a torn
    // tail — to the uninterrupted sparse outcome, bitwise. This drives
    // the MNA-backed opamp so real factorizations (and the symbolic
    // cache rebuilt from topology on the resumed process) are on the
    // replay path, not an analytic stand-in.
    use asdex::env::circuits::opamp::TwoStageOpamp;
    use asdex::spice::analysis::SolverChoice;
    let sparse_opamp = |threads: usize| {
        TwoStageOpamp::bsim45()
            .problem()
            .expect("opamp builds")
            .with_solver(SolverChoice::Sparse)
            .with_threads(threads)
    };
    let budget = SearchBudget::new(40);
    for threads in [1usize, 4] {
        let mut agent = LocalExplorer::default();
        let plain = agent.search(&sparse_opamp(threads), budget, 1);

        let path = journal_path(&format!("sparse-{threads}"));
        let journal = Journal::create(&path, JournalMeta::new(), 5).expect("journal create");
        let _ = agent.search(&sparse_opamp(threads).with_journal(journal), budget, 1);
        let bytes = std::fs::read(&path).expect("journal readable");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("journal truncates");

        let journal = Journal::resume(&path, 5).expect("torn journal resumes");
        let resumed = agent.search(&sparse_opamp(threads).with_journal(journal), budget, 1);
        assert_eq!(resumed, plain, "sparse@{threads}t: crash-resume diverged");
        let _ = std::fs::remove_file(&path);
    }
}

/// Every possible byte-level tear of the journal's *final* record — the
/// exact state a `SIGKILL` mid-`write(2)` leaves behind — must resume by
/// dropping that one record and nothing else, and must physically repair
/// the file to the last intact line.
#[test]
fn every_partial_final_record_resumes_by_dropping_exactly_that_record() {
    let budget = SearchBudget::new(200);
    let mut agent = RandomSearch::new();
    let plain = agent.search(&bowl(1), budget, 1);

    let path = journal_path("partial-final");
    let journal = Journal::create(&path, JournalMeta::new(), 5).expect("journal create");
    let _ = agent.search(&bowl(1).with_journal(journal), budget, 1);
    let bytes = std::fs::read(&path).expect("journal readable");
    let text = String::from_utf8(bytes.clone()).expect("journal is UTF-8");
    let total_records = text.lines().count() - 2; // header + meta
    let last_line_start = text[..text.len() - 1].rfind('\n').expect("multi-line journal") + 1;

    let repaired = journal_path("partial-final-cut");
    for cut in last_line_start..bytes.len() {
        std::fs::write(&repaired, &bytes[..cut]).expect("tear writes");
        let journal = Journal::resume(&repaired, 5)
            .unwrap_or_else(|e| panic!("cut at byte {cut} failed to resume: {e}"));
        assert_eq!(
            journal.recorded(),
            total_records - 1,
            "cut at byte {cut}: a torn final record must be dropped, no more, no less"
        );
        drop(journal);
        // The repair is physical: the file is truncated to the last
        // intact line, so a *second* resume sees a clean journal.
        let after = std::fs::read(&repaired).expect("repaired journal readable");
        assert_eq!(
            after,
            &bytes[..last_line_start],
            "cut at byte {cut}: file not truncated to the last intact record"
        );
    }

    // Spot-check full search equivalence at three representative tears:
    // one byte into the record, mid-record, and one byte short of intact.
    for cut in [last_line_start + 1, (last_line_start + bytes.len()) / 2, bytes.len() - 1] {
        std::fs::write(&repaired, &bytes[..cut]).expect("tear writes");
        let journal = Journal::resume(&repaired, 5).expect("torn journal resumes");
        let resumed = agent.search(&bowl(1).with_journal(journal), budget, 1);
        assert_eq!(resumed, plain, "cut at byte {cut}: resumed outcome diverged");
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&repaired);
}

/// Interior corruption — a torn line *followed by* complete records, the
/// signature of two writers interleaving on one journal file — is not a
/// crash tail and must be refused with a typed format error naming the
/// line, never silently repaired.
#[test]
fn interior_torn_line_is_a_typed_format_error_not_a_silent_repair() {
    let budget = SearchBudget::new(200);
    let mut agent = RandomSearch::new();
    let path = journal_path("interior-torn");
    let journal = Journal::create(&path, JournalMeta::new(), 5).expect("journal create");
    let _ = agent.search(&bowl(1).with_journal(journal), budget, 1);
    let text = std::fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 6, "need several records to corrupt an interior one");

    // Case 1: an interior record cut in half, later records intact.
    let victim = lines.len() / 2;
    let mutant = journal_path("interior-torn-half");
    let mut doctored: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    doctored[victim] = doctored[victim][..doctored[victim].len() / 2].to_string();
    std::fs::write(&mutant, doctored.join("\n") + "\n").expect("mutant writes");
    match Journal::resume(&mutant, 5) {
        Err(asdex::env::JournalError::Format { line, .. }) => {
            assert_eq!(line, victim + 1, "error must name the corrupt line");
        }
        other => panic!("interior tear must be a Format error, got {other:?}"),
    }

    // Case 2: two records fused onto one line (a lost newline between
    // interleaved writers).
    let mut fused: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let tail = fused.remove(victim + 1);
    fused[victim].push_str(&tail);
    std::fs::write(&mutant, fused.join("\n") + "\n").expect("mutant writes");
    match Journal::resume(&mutant, 5) {
        Err(asdex::env::JournalError::Format { line, .. }) => {
            assert_eq!(line, victim + 1, "error must name the fused line");
        }
        other => panic!("fused records must be a Format error, got {other:?}"),
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&mutant);
}
