//! The shipped example decks must parse, bias, and measure sensibly —
//! they are the first thing a new user feeds to `asdex sim`.

use asdex::spice::analysis::{ac_analysis, dc_operating_point, OpOptions, Sweep};
use asdex::spice::measure::frequency_response;
use asdex::spice::parser::parse_netlist;

#[test]
fn rc_filter_deck_measures_like_two_cascaded_poles() {
    let src = std::fs::read_to_string("decks/rc_filter.cir").expect("deck ships with the repo");
    let ckt = parse_netlist(&src).expect("parses");
    let ac = ac_analysis(
        &ckt,
        Sweep::Decade { fstart: 10.0, fstop: 10e6, points_per_decade: 10 },
        &OpOptions::default(),
    )
    .expect("ac runs");
    let out = ckt.find_node("out").expect("out node");
    let fr = frequency_response(&ac, out);
    assert!((fr.dc_gain_db - 0.0).abs() < 0.1, "unity DC gain, got {}", fr.dc_gain_db);
    let bw = fr.bandwidth_3db.expect("has a corner");
    // Dominant pole ≈ 1/(2π·(R1·C1 + (R1+R2)·C2)) ≈ 7.5 kHz; loose check.
    assert!(bw > 1e3 && bw < 20e3, "bandwidth {bw}");
}

#[test]
fn opamp_deck_biases_and_amplifies() {
    let src =
        std::fs::read_to_string("decks/two_stage_opamp.cir").expect("deck ships with the repo");
    let ckt = parse_netlist(&src).expect("parses (subckt expansion)");
    let op = dc_operating_point(&ckt, &OpOptions::default()).expect("biases");
    let out = ckt.find_node("out").expect("out node");
    let vout = op.voltage(out);
    assert!(
        (0.5..1.5).contains(&vout),
        "feedback centers the output near the input common mode, got {vout}"
    );
    let ac = ac_analysis(
        &ckt,
        Sweep::Decade { fstart: 10.0, fstop: 10e9, points_per_decade: 10 },
        &OpOptions::default(),
    )
    .expect("ac runs");
    let fr = frequency_response(&ac, out);
    assert!(fr.dc_gain_db > 60.0, "open-loop gain {} dB", fr.dc_gain_db);
    assert!(fr.unity_gain_freq.is_some(), "has a UGF");
}
