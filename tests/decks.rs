//! The shipped example decks must parse, bias, and measure sensibly —
//! they are the first thing a new user feeds to `asdex sim` — and the
//! shipped *sizing* decks (`decks/*.sp`) must compile through the
//! netlist-bench frontend and reproduce their recorded measurement
//! goldens bit for bit.

use asdex::env::{netlist_digest, NetlistBench, SearchBudget, Searcher};
use asdex::spice::analysis::{ac_analysis, dc_operating_point, OpOptions, Sweep};
use asdex::spice::measure::frequency_response;
use asdex::spice::parser::parse_netlist;
use std::path::Path;

#[test]
fn rc_filter_deck_measures_like_two_cascaded_poles() {
    let src = std::fs::read_to_string("decks/rc_filter.cir").expect("deck ships with the repo");
    let ckt = parse_netlist(&src).expect("parses");
    let ac = ac_analysis(
        &ckt,
        Sweep::Decade { fstart: 10.0, fstop: 10e6, points_per_decade: 10 },
        &OpOptions::default(),
    )
    .expect("ac runs");
    let out = ckt.find_node("out").expect("out node");
    let fr = frequency_response(&ac, out);
    assert!((fr.dc_gain_db - 0.0).abs() < 0.1, "unity DC gain, got {}", fr.dc_gain_db);
    let bw = fr.bandwidth_3db.expect("has a corner");
    // Dominant pole ≈ 1/(2π·(R1·C1 + (R1+R2)·C2)) ≈ 7.5 kHz; loose check.
    assert!(bw > 1e3 && bw < 20e3, "bandwidth {bw}");
}

#[test]
fn opamp_deck_biases_and_amplifies() {
    let src =
        std::fs::read_to_string("decks/two_stage_opamp.cir").expect("deck ships with the repo");
    let ckt = parse_netlist(&src).expect("parses (subckt expansion)");
    let op = dc_operating_point(&ckt, &OpOptions::default()).expect("biases");
    let out = ckt.find_node("out").expect("out node");
    let vout = op.voltage(out);
    assert!(
        (0.5..1.5).contains(&vout),
        "feedback centers the output near the input common mode, got {vout}"
    );
    let ac = ac_analysis(
        &ckt,
        Sweep::Decade { fstart: 10.0, fstop: 10e9, points_per_decade: 10 },
        &OpOptions::default(),
    )
    .expect("ac runs");
    let fr = frequency_response(&ac, out);
    assert!(fr.dc_gain_db > 60.0, "open-loop gain {} dB", fr.dc_gain_db);
    assert!(fr.unity_gain_freq.is_some(), "has a UGF");
}

/// Grid-midpoint measurement goldens for every shipped sizing deck, as
/// IEEE-754 bit patterns (`{:016x}` of `f64::to_bits`), in measurement
/// order `gain_db, ugf_hz, pm_deg, power_w, area_m2`. String equality ⇔
/// bitwise equality — the same contract the journal and wire formats
/// use — so any change to a deck, the parser, the compiler, or the
/// simulator that perturbs even one ulp fails here by name.
const SIZING_GOLDENS: &[(&str, [&str; 5])] = &[
    (
        "two_stage_opamp_sized.sp",
        [
            "4058437fddbb7b2a",
            "418370b80341bd8b",
            "4029f01e81f33820",
            "3f0cbd99aae1108a",
            "3db23b318ff64a87",
        ],
    ),
    (
        "folded_cascode_opamp.sp",
        [
            "c0660334c5897b20",
            "0000000000000000",
            "0000000000000000",
            "3f0bb6092fc50cda",
            "3dab4b1a6284035a",
        ],
    ),
    (
        "bandgap_reference.sp",
        [
            "c048740a3c5423b2",
            "0000000000000000",
            "0000000000000000",
            "3ec287e67ed65610",
            "3da718e89e5a2764",
        ],
    ),
    (
        "comparator.sp",
        [
            "40584c2ff8a2e0b6",
            "41be348c7db3a7b5",
            "c0244deec5c35350",
            "3f0ca03faeba17ef",
            "3db23b318ff64a87",
        ],
    ),
    (
        "two_stage_ldo.sp",
        [
            "c0651f073c734a82",
            "0000000000000000",
            "0000000000000000",
            "3ef30ff6e5dedbc6",
            "3da27737fec6d694",
        ],
    ),
];

#[test]
fn sizing_decks_compile_and_match_midpoint_goldens_bitwise() {
    for (file, want) in SIZING_GOLDENS {
        let path = Path::new("decks").join(file);
        let bench = NetlistBench::load(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        // The digest the daemon journals is the digest of the shipped
        // source, stable under include expansion (none here).
        assert_eq!(
            bench.digest(),
            netlist_digest(bench.source()),
            "{file}: digest disagrees with its own source"
        );
        let problem = bench.problem().unwrap_or_else(|e| panic!("{file}: {e}"));
        let eval = problem.evaluate_normalized(&vec![0.5; problem.dim()], 0);
        let meas = eval
            .measurements
            .unwrap_or_else(|| panic!("{file}: midpoint fails: {:?}", eval.failure));
        let got: Vec<String> = meas.iter().map(|v| format!("{:016x}", v.to_bits())).collect();
        assert_eq!(got, want.to_vec(), "{file}: midpoint measurements drifted");
    }
}

#[test]
fn sizing_decks_search_end_to_end() {
    // A short random-search campaign over every shipped deck: the cheap
    // proof that each compiles into a problem every agent can drive.
    for (file, _) in SIZING_GOLDENS {
        let bench = NetlistBench::load(&Path::new("decks").join(file)).unwrap();
        let problem = bench.problem().unwrap();
        let out =
            asdex::baselines::RandomSearch::new().search(&problem, SearchBudget::new(20), 1);
        assert!(out.simulations > 0, "{file}: search ran no simulations");
        assert_eq!(out.best_point.len(), problem.dim(), "{file}");
    }
}

#[test]
fn malformed_sizing_stanzas_are_typed_errors_never_panics() {
    let base = std::fs::read_to_string("decks/bandgap_reference.sp").unwrap();
    // Each row mutates the known-good deck one way; every mutant must
    // fail `compile` with a typed error (or, for the last rows, still
    // compile — the mutation is legal) without panicking.
    let mutants: &[(&str, &str)] = &[
        (".process 45", ".process 13"),
        (".process 45", ".process"),
        (".process 45", ""),
        (".sizeparam rsrc 5e2 5e4 STEP 64", ".sizeparam rsrc 5e4 5e2 STEP 64"),
        (".sizeparam rsrc 5e2 5e4 STEP 64", ".sizeparam rsrc xx 5e4 STEP 64"),
        (".sizeparam rsrc 5e2 5e4 STEP 64", ".sizeparam rsrc 5e2 5e4 STEP 0"),
        (
            ".sizeparam rsrc 5e2 5e4 STEP 64",
            ".sizeparam rsrc 5e2 5e4 STEP 64\n.sizeparam rsrc 5e2 5e4 STEP 64",
        ),
        (".sizeparam rsrc 5e2 5e4 STEP 64", ".sizeparam rsrc 5e2 5e4 STEP nope"),
        (".sizeparam rsrc 5e2 5e4 STEP 64", ".sizeparam"),
        (".goal gain_db <= -45", ".goal gain_db ~= -45"),
        (".goal gain_db <= -45", ".goal resistance <= -45"),
        (".goal gain_db <= -45", ".goal gain_db <= banana"),
        ("ROUT out 0 {rout}", "ROUT out 0 {undeclared}"),
        ("M1 n1 n1 0 0 nch W={w_n} L=1.8e-7", "M1 n1 n1 0 0 nch W={w_n}"),
    ];
    for (from, to) in mutants {
        assert!(base.contains(from), "mutation target {from:?} missing from base deck");
        let mutated = base.replace(from, to);
        let result = std::panic::catch_unwind(|| NetlistBench::compile(&mutated));
        let compiled = result.unwrap_or_else(|_| panic!("compile panicked on {to:?}"));
        assert!(compiled.is_err(), "mutant {to:?} compiled");
        let msg = compiled.err().unwrap().to_string();
        assert!(!msg.is_empty(), "empty error for {to:?}");
    }
    // Goal-less and axis-less decks are rejected with a naming error.
    let no_goals: String =
        base.lines().filter(|l| !l.starts_with(".goal")).collect::<Vec<_>>().join("\n");
    assert!(NetlistBench::compile(&no_goals).unwrap_err().to_string().contains("goal"));
    let no_axes: String =
        base.lines().filter(|l| !l.starts_with(".sizeparam")).collect::<Vec<_>>().join("\n");
    assert!(NetlistBench::compile(&no_axes).is_err());
}
