//! Cross-crate integration tests: full searches on real circuits, the
//! netlist pipeline, and the experiment-shape assertions that back the
//! paper's claims.

use asdex::baselines::{CustomizedBo, RandomSearch};
use asdex::core::{Framework, FrameworkConfig, LocalExplorer, PortingStrategy, WarmStart};
use asdex::env::circuits::opamp::{meas as opamp_meas, TwoStageOpamp};
use asdex::env::circuits::synthetic::Bowl;
use asdex::env::{PvtSet, SearchBudget, Searcher};
use asdex::spice::analysis::{dc_operating_point, OpOptions};
use asdex::spice::parser::parse_netlist;

#[test]
fn trm_sizes_the_45nm_opamp_within_paper_order() {
    let problem = TwoStageOpamp::bsim45().problem().expect("problem builds");
    let mut fw = Framework::new(FrameworkConfig::default(), 42);
    let out = fw.search(&problem).expect("search runs");
    assert!(out.success, "best value {}", out.best_value);
    // Paper: 36 ± 16; anything within a few times that is the right order.
    assert!(out.simulations < 500, "took {} sims", out.simulations);

    // The returned point must actually satisfy the specs on re-evaluation.
    let e = problem.evaluate_normalized(&out.best_point, 0);
    assert!(e.feasible, "returned point fails re-verification: value {}", e.value);
    let m = e.measurements.expect("feasible point has measurements");
    assert!(m[opamp_meas::GAIN_DB] >= 65.0);
    assert!(m[opamp_meas::PM_DEG] >= 60.0);
}

#[test]
fn trm_beats_bo_beats_random_on_the_opamp() {
    let problem = TwoStageOpamp::bsim45().problem().expect("problem builds");
    let budget = SearchBudget::new(10_000);
    // The framework-derived configuration (§IV-F) — the same one Table I
    // benchmarks.
    let cfg = Framework::new(FrameworkConfig::default(), 0).derive_explorer_config(&problem);
    let mut trm_total = 0usize;
    let mut bo_total = 0usize;
    let mut rnd_total = 0usize;
    for seed in 0..6 {
        let trm = LocalExplorer::new(cfg).search(&problem, budget, seed);
        let bo = CustomizedBo::new().search(&problem, budget, seed);
        let rnd = RandomSearch::new().search(&problem, budget, seed);
        assert!(trm.success, "trm seed {seed}");
        trm_total += trm.simulations;
        bo_total += bo.simulations;
        rnd_total += rnd.simulations;
    }
    assert!(trm_total < bo_total, "trm {trm_total} vs bo {bo_total}");
    assert!(bo_total < rnd_total, "bo {bo_total} vs random {rnd_total}");
}

#[test]
fn porting_start_sharing_beats_fresh() {
    // Table II's qualitative claim on fast synthetic landscapes.
    let source = Bowl::problem(4, 0.12).expect("source problem");
    let target = {
        // The "new node": same landscape shifted by a corner-like offset is
        // emulated by a different seed region; reuse the bowl with another
        // feasible radius.
        Bowl::problem(4, 0.12).expect("target problem")
    };
    let explorer = LocalExplorer::default();
    let budget = SearchBudget::new(5_000);
    let (out, artifacts) = explorer.run(&source, 0, budget, 3, &WarmStart::default());
    assert!(out.success);

    let mut fresh = 0usize;
    let mut ported = 0usize;
    for seed in 0..4 {
        let f = explorer
            .run(&target, 0, budget, seed, &PortingStrategy::Fresh.warm_start(&artifacts))
            .0;
        let p = explorer
            .run(&target, 0, budget, seed, &PortingStrategy::StartOnly.warm_start(&artifacts))
            .0;
        assert!(f.success && p.success);
        fresh += f.simulations;
        ported += p.simulations;
    }
    assert!(ported < fresh, "ported {ported} vs fresh {fresh}");
}

#[test]
fn pvt_progressive_full_pipeline() {
    use asdex::core::{PvtExplorer, PvtStrategy};
    let opamp = TwoStageOpamp::bsim22();
    let problem = opamp
        .problem_with(opamp.specs(), PvtSet::signoff5())
        .expect("PVT problem");
    let agent = PvtExplorer::new(PvtStrategy::ProgressiveHardest);
    let out = agent.run(&problem, SearchBudget::new(10_000), 3);
    assert!(out.success, "best {}", out.best_value);
    // The final point must pass every corner on re-evaluation.
    for (c, e) in problem.evaluate_all_corners(&out.best_point).into_iter().enumerate() {
        assert!(e.feasible, "corner {c} fails: value {}", e.value);
    }
    // Ledger bookkeeping is complete.
    assert_eq!(out.ledger.len(), out.simulations);
}

#[test]
fn netlist_to_measurement_pipeline() {
    let deck = "\
divider with bypass
V1 in 0 DC 3.0
R1 in mid 2k
R2 mid 0 1k
C1 mid 0 1u
.end
";
    let ckt = parse_netlist(deck).expect("parses");
    let op = dc_operating_point(&ckt, &OpOptions::default()).expect("converges");
    let mid = ckt.find_node("mid").expect("node exists");
    assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
}

#[test]
fn framework_auto_configuration_is_problem_aware() {
    let small = Bowl::problem(2, 0.2).expect("small problem");
    let large = TwoStageOpamp::bsim45().problem().expect("large problem");
    let f = Framework::new(FrameworkConfig::default(), 0);
    let cs = f.derive_explorer_config(&small);
    let cl = f.derive_explorer_config(&large);
    assert!(cl.mc_samples > cs.mc_samples, "bigger problem, more planning samples");
}

#[test]
fn failed_simulations_do_not_crash_the_search() {
    // The LDO space contains non-convergent corners; the agent must treat
    // them as infeasible and keep going.
    use asdex::env::circuits::ldo::Ldo;
    let problem = Ldo::n6().problem().expect("ldo problem");
    let mut agent = LocalExplorer::default();
    let out = agent.search(&problem, SearchBudget::new(300), 5);
    // Success in 300 sims is unlikely but allowed; what matters is that the
    // run terminates cleanly and reports a sane budget.
    assert!(out.simulations <= 300);
    assert!(out.best_value.is_finite() || out.best_value == f64::NEG_INFINITY);
}
