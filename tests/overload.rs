//! Overload-resilience integration tests for the serving layer.
//!
//! Abusive clients — slow-loris byte dribblers, half-open peers that
//! connect and go silent, oversized-header floods, pipelined garbage —
//! are aimed at a live daemon while well-behaved requests ride
//! alongside. The contract under test: the daemon stays responsive,
//! sheds typed (`503` + `Retry-After` at the connection cap), reaps
//! abusers within the connection deadline, and never hangs or leaks.
//! The final test drives the cross-campaign evaluation dedup store over
//! HTTP and holds it to the repo's bitwise-determinism contract.

use asdex::serve::json::Json;
use asdex::serve::protocol::outcome_json;
use asdex::serve::{
    build_problem, run_campaign, CampaignSpec, Client, DrainHandle, SchedulerConfig, Server,
    ServerConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Mirrors `asdex::serve::http::MAX_LINE` (the parser's per-line bound).
const MAX_LINE: usize = 8 << 10;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdex-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boots a daemon on a free port with tight overload knobs. Returns the
/// address, the drain handle, the server thread, and the journal dir.
fn start_daemon(
    tag: &str,
    max_conns: usize,
    conn_timeout: Duration,
) -> (String, DrainHandle, std::thread::JoinHandle<()>, PathBuf) {
    let dir = temp_dir(tag);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        conn_timeout,
        max_conns,
        scheduler: SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
    };
    let drain = DrainHandle::new();
    let server = Server::bind(cfg, drain.clone()).expect("daemon binds");
    let addr = server.local_addr().expect("bound").to_string();
    let thread = std::thread::spawn(move || server.run().expect("daemon runs"));
    (addr, drain, thread, dir)
}

/// Scrapes one counter value from the metrics exposition; `None` if the
/// scrape itself is shed (the daemon may still be at its connection cap).
fn try_metric(client: &Client, line_prefix: &str) -> Option<u64> {
    let text = client.metrics().ok()?;
    text.lines()
        .find(|l| l.starts_with(line_prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Scrapes one counter value, panicking if the scrape fails.
fn metric(client: &Client, line_prefix: &str) -> u64 {
    try_metric(client, line_prefix)
        .unwrap_or_else(|| panic!("metric {line_prefix:?} unavailable"))
}

/// Polls until `check` passes or the deadline lands.
fn eventually(timeout: Duration, mut check: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if check() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Sends raw bytes and reads the whole response (connection: close).
fn raw_exchange(addr: &str, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(payload).expect("request written");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

#[test]
fn slow_loris_and_half_open_clients_are_reaped_while_service_continues() {
    let timeout = Duration::from_millis(300);
    let (addr, drain, server, dir) = start_daemon("loris", 32, timeout);
    let client = Client::new(addr.clone());

    // A half-open peer: connects, sends nothing, never closes.
    let mut half_open = TcpStream::connect(&addr).expect("half-open connects");
    half_open.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A slow-loris: dribbles header bytes slower than the deadline. The
    // phase deadline is absolute — trickling "progress" does not reset
    // it — so the connection dies when the header deadline lands.
    let loris_addr = addr.clone();
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(&loris_addr).expect("loris connects");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for byte in b"GET /healthz HTTP/1.1\r\nx-slow: dribble\r\n" {
            if stream.write_all(&[*byte]).is_err() {
                break; // reaped mid-dribble: exactly the point
            }
            std::thread::sleep(Duration::from_millis(40));
        }
        // The server must have closed on us; a read observes it.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    });

    // Well-behaved traffic keeps flowing while the abusers linger.
    for _ in 0..5 {
        let doc = client.healthz().expect("healthz during the siege");
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        std::thread::sleep(Duration::from_millis(50));
    }

    // Both abusers are reaped within the deadline (plus scheduling slack).
    assert!(
        eventually(Duration::from_secs(10), || {
            metric(&client, "asdex_connections_total{event=\"reaped\"}") >= 2
        }),
        "slow-loris and half-open connections must be reaped"
    );
    // The half-open client observes the server's close as EOF, not a hang.
    let mut sink = Vec::new();
    let n = half_open.read_to_end(&mut sink).expect("server closed cleanly");
    assert_eq!(n, 0, "no response owed to a client that never sent a request");
    loris.join().expect("loris thread");

    // The set drains back to empty: nothing leaked.
    assert!(
        eventually(Duration::from_secs(5), || metric(&client, "asdex_connections_open") == 0),
        "open-connection gauge must return to zero"
    );

    drain.request_drain();
    server.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_cap_sheds_typed_with_retry_after() {
    // Cap of 2, long deadline: two parked connections pin the cap, so a
    // third arrival must be shed with a typed 503 — not parsed, not
    // queued, not hung.
    let (addr, drain, server, dir) = start_daemon("cap", 2, Duration::from_secs(5));

    let parked: Vec<TcpStream> =
        (0..2).map(|_| TcpStream::connect(&addr).expect("parked connects")).collect();

    // While the cap is pinned every new arrival — including a metrics
    // scrape — must be shed, so the shed response itself is the probe.
    // Retry until the reactor has pulled both parked connections into
    // its tracked set and starts shedding.
    let deadline = Instant::now() + Duration::from_secs(10);
    let response = loop {
        let response = raw_exchange(&addr, b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
        if response.starts_with("HTTP/1.1 503") || Instant::now() >= deadline {
            break response;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(response.starts_with("HTTP/1.1 503"), "expected a shed 503, got:\n{response}");
    assert!(
        response.contains("retry-after:"),
        "the shed must carry a Retry-After hint:\n{response}"
    );
    assert!(response.contains("connection limit reached"), "typed body:\n{response}");

    // Freeing the cap restores service, and the metrics agree on the
    // shed classification.
    drop(parked);
    let client = Client::new(addr.clone());
    assert!(eventually(Duration::from_secs(10), || {
        try_metric(&client, "asdex_requests_shed_total{reason=\"conn_cap\"}")
            .is_some_and(|v| v >= 1)
    }));

    drain.request_drain();
    server.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_header_floods_are_rejected_around_the_line_bound() {
    let (addr, drain, server, dir) = start_daemon("flood", 32, Duration::from_secs(5));

    // Just under the bound: a legal (if obnoxious) header — served.
    let pad = "a".repeat(MAX_LINE - "x-pad: ".len() - 2);
    let ok = raw_exchange(
        &addr,
        format!("GET /healthz HTTP/1.1\r\nx-pad: {pad}\r\nconnection: close\r\n\r\n").as_bytes(),
    );
    assert!(ok.starts_with("HTTP/1.1 200"), "under-bound header must be served:\n{}", &ok[..64.min(ok.len())]);

    // Over the bound, *without a newline*: the incremental parser must
    // reject the dangling line as soon as it exceeds MAX_LINE rather
    // than buffering a never-ending header.
    let flood = format!("GET /healthz HTTP/1.1\r\nx-flood: {}", "a".repeat(MAX_LINE));
    let rejected = raw_exchange(&addr, flood.as_bytes());
    assert!(rejected.starts_with("HTTP/1.1 400"), "over-bound header:\n{}", &rejected[..64.min(rejected.len())]);
    assert!(rejected.contains("header line too long"), "typed reason:\n{rejected}");

    // A flood of *many* small headers trips the header-count bound.
    let mut many = String::from("GET /healthz HTTP/1.1\r\n");
    for k in 0..200 {
        many.push_str(&format!("x-h{k}: v\r\n"));
    }
    // No terminating blank line: rejection must not wait for one.
    let rejected = raw_exchange(&addr, many.as_bytes());
    assert!(rejected.starts_with("HTTP/1.1 400"), "header-count flood:\n{}", &rejected[..64.min(rejected.len())]);

    drain.request_drain();
    server.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_garbage_after_a_request_is_never_consumed() {
    let (addr, drain, server, dir) = start_daemon("pipeline", 32, Duration::from_secs(5));

    // One valid request with garbage pipelined behind it. The protocol
    // is one request per connection (`Connection: close`): the request
    // is answered, the garbage is never parsed, and the connection
    // closes cleanly.
    let payload = b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n\x00\xffGET /smuggled HTTP/9.9\r\n\r\n";
    let response = raw_exchange(&addr, payload);
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert_eq!(response.matches("HTTP/1.1").count(), 1, "exactly one response:\n{response}");
    assert!(!response.contains("smuggled"), "pipelined bytes must never be interpreted");

    drain.request_drain();
    server.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_duplicate_campaigns_dedup_and_stay_bitwise_identical() {
    let (addr, drain, server, dir) = start_daemon("dedup", 32, Duration::from_secs(10));
    let client = Client::new(addr);

    let spec = CampaignSpec {
        bench: "bowl3".to_string(),
        agent: "trm".to_string(),
        seed: 500,
        budget: 300,
        ..CampaignSpec::default()
    };
    // Serial reference: the library path, no daemon, no store.
    let problem = build_problem(&spec.bench, &spec.corners).expect("benchmark builds");
    let reference =
        outcome_json(&run_campaign(&problem, &spec, None).expect("serial run")).dump();

    // Two identical campaigns in flight concurrently: the dedup store
    // computes each point once and hands the result to the twin.
    let first = client.submit(None, &spec).expect("first admitted");
    let second = client.submit(None, &spec).expect("second admitted");
    for id in [&first, &second] {
        let doc = client.wait_for(id, Duration::from_secs(120)).expect("completes");
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("completed"), "{id}");
        assert_eq!(
            doc.get("outcome").expect("outcome").dump(),
            reference,
            "campaign {id} diverged from the store-less serial run"
        );
    }

    let hits = metric(&client, "asdex_dedup_events_total{event=\"hit\"}");
    let misses = metric(&client, "asdex_dedup_events_total{event=\"miss\"}");
    assert!(hits > 0, "duplicate campaigns must share evaluations");
    assert!(hits >= misses, "the twin's evaluations must all be hits ({hits} vs {misses})");
    assert_eq!(metric(&client, "asdex_dedup_events_total{event=\"abort\"}"), 0);

    drain.request_drain();
    server.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}
