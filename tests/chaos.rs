//! Chaos tests: every search agent must survive a faulty simulator.
//!
//! A `FaultInjectingEvaluator` corrupts 10–30 % of evaluations with the
//! failure modes a real SPICE deployment exhibits — non-convergence, NaN
//! and Inf measurements, wrong-dimension outputs — and every agent (the
//! trust-region explorer plus all five baselines) is required to:
//!
//! 1. never panic,
//! 2. keep budget accounting exact (`sims ≤ max_sims` always, and
//!    `sims == max_sims` whenever the search fails), and
//! 3. degrade gracefully: report a finite best value and typed,
//!    non-zero failure telemetry in `SearchOutcome::stats`.

use asdex::baselines::rl::{A2c, Ppo, Trpo};
use asdex::baselines::{CustomizedBo, RandomSearch};
use asdex::core::LocalExplorer;
use asdex::env::circuits::synthetic::Bowl;
use asdex::env::{
    EnvError, EvalStats, Evaluator, FailureKind, FaultConfig, FaultInjectingEvaluator, PvtCorner,
    SearchBudget, Searcher, SizingProblem,
};
use std::sync::Arc;

/// A 3-D bowl problem whose evaluator is wrapped in deterministic fault
/// injection at `rate`.
fn chaotic_problem(rate: f64, seed: u64) -> SizingProblem {
    let mut p = Bowl::problem(3, 0.2).expect("bowl builds");
    p.evaluator =
        Arc::new(FaultInjectingEvaluator::new(p.evaluator.clone(), FaultConfig::new(rate, seed)));
    p
}

fn agents() -> Vec<Box<dyn Searcher>> {
    vec![
        Box::new(LocalExplorer::default()),
        Box::new(RandomSearch::new()),
        Box::new(CustomizedBo::new()),
        Box::new(A2c::new()),
        Box::new(Ppo::new()),
        Box::new(Trpo::new()),
    ]
}

/// Drives every agent through the faulty problem and checks the chaos
/// invariants; returns the merged telemetry for rate-level assertions.
fn run_all_agents(rate: f64, fault_seed: u64, max_sims: usize) -> EvalStats {
    let problem = chaotic_problem(rate, fault_seed);
    let budget = SearchBudget::new(max_sims);
    let mut merged = EvalStats::new();
    for mut agent in agents() {
        let out = agent.search(&problem, budget, 1);
        let name = agent.name();
        assert!(
            out.simulations <= max_sims,
            "{name}: reported {} sims over the {max_sims} cap",
            out.simulations
        );
        assert!(
            out.stats.sims <= max_sims,
            "{name}: telemetry counted {} sims over the {max_sims} cap",
            out.stats.sims
        );
        if !out.success {
            assert_eq!(
                out.stats.sims, max_sims,
                "{name}: failed without spending the whole budget"
            );
            assert_eq!(out.simulations, max_sims, "{name}: failure must report the full budget");
        }
        assert!(out.best_value.is_finite(), "{name}: best value went non-finite");
        assert!(out.best_point.iter().all(|v| v.is_finite()), "{name}: non-finite best point");
        merged.merge(&out.stats);
    }
    merged
}

#[test]
fn all_agents_survive_10_percent_faults() {
    let merged = run_all_agents(0.10, 11, 400);
    assert!(merged.total_failures() > 0, "10% chaos must surface typed failures");
    assert!(merged.retries > 0, "injected non-convergence must trigger the retry ladder");
}

#[test]
fn all_agents_survive_30_percent_faults() {
    let merged = run_all_agents(0.30, 7, 400);
    // Every corruption mode must be represented and typed in the merged
    // telemetry: NaN/Inf → non-finite, wrong dimension → invalid input,
    // persistent injected non-convergence → injected.
    assert!(merged.failures_of(FailureKind::NonFinite) > 0, "NaN/Inf faults typed");
    assert!(merged.failures_of(FailureKind::InvalidInput) > 0, "wrong-dimension faults typed");
    assert!(merged.failures_of(FailureKind::Injected) > 0, "persistent no-convergence typed");
    assert!(merged.retries > 0, "retry ladder active under chaos");
    assert!(merged.recoveries > 0, "some injected non-convergence recovered on retry");
}

#[test]
fn chaos_outcomes_are_deterministic_per_seed() {
    let problem = chaotic_problem(0.30, 5);
    let budget = SearchBudget::new(300);
    let a = RandomSearch::new().search(&problem, budget, 9);
    let b = RandomSearch::new().search(&problem, budget, 9);
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seeds, same chaos, same outcome");
}

#[test]
fn graceful_degradation_with_fault_rate() {
    // The search gets harder as faults increase, but success at a modest
    // rate must still be possible on an easy problem — the ladder and the
    // typed-failure path keep the agent productive.
    let clean = Bowl::problem(2, 0.3).expect("bowl builds");
    let noisy = {
        let mut p = Bowl::problem(2, 0.3).expect("bowl builds");
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::new(0.10, 3),
        ));
        p
    };
    let budget = SearchBudget::new(4000);
    let out_clean = RandomSearch::new().search(&clean, budget, 2);
    let out_noisy = RandomSearch::new().search(&noisy, budget, 2);
    assert!(out_clean.success);
    assert!(out_noisy.success, "10% faults must not sink an easy search");
    assert!(out_noisy.stats.sims <= budget.max_sims);
}

#[test]
fn injected_counter_matches_telemetry_direction() {
    let inner = Bowl::problem(2, 0.25).expect("bowl builds");
    let injector = Arc::new(FaultInjectingEvaluator::new(
        inner.evaluator.clone(),
        FaultConfig::new(0.30, 21),
    ));
    let mut p = inner;
    p.evaluator = injector.clone();
    let out = RandomSearch::new().search(&p, SearchBudget::new(500), 4);
    assert!(injector.injected() > 0, "faults were injected");
    // Injections either became terminal typed failures or were recovered
    // by the retry ladder; both must appear in the telemetry.
    assert!(
        out.stats.total_failures() + out.stats.recoveries > 0,
        "injections visible in stats: {}",
        out.stats
    );
}

/// An evaluator whose solve watchdog always expires: every call reports a
/// typed `Timeout`, the way a real solver does when its `SolveBudget` runs
/// out mid-Newton.
struct TimeoutEvaluator {
    names: Vec<String>,
}

impl Evaluator for TimeoutEvaluator {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, _x: &[f64], _corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        Err(EnvError::Simulation(asdex::spice::SpiceError::Timeout {
            analysis: "op",
            iterations: 1000,
        }))
    }
}

#[test]
fn all_agents_survive_injected_worker_panics() {
    // 30 % of evaluator calls panic outright. The isolation boundary must
    // convert every one into a typed `WorkerPanic`, keep the worker pool
    // unpoisoned, and let every agent run its campaign to completion with
    // exact budget accounting.
    let max_sims = 400;
    let budget = SearchBudget::new(max_sims);
    let mut merged = EvalStats::new();
    for mut agent in agents() {
        let mut p = Bowl::problem(3, 0.2).expect("bowl builds");
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::only(asdex::env::FaultMode::Panic, 0.30, 13),
        ));
        let out = agent.search(&p, budget, 1);
        let name = agent.name();
        assert!(out.simulations <= max_sims, "{name}: budget overrun after panics");
        if !out.success {
            assert_eq!(out.stats.sims, max_sims, "{name}: gave up early after panics");
        }
        assert!(out.best_value.is_finite(), "{name}: panic corrupted the best value");
        merged.merge(&out.stats);
    }
    assert!(
        merged.failures_of(FailureKind::WorkerPanic) > 0,
        "panics must surface as typed WorkerPanic telemetry: {merged}"
    );
    assert!(merged.retries > 0, "worker panics are retryable and must hit the ladder");
}

#[test]
fn all_agents_survive_extreme_measurement_poisoning() {
    // 5 % of evaluations return a huge-but-finite −1e30 measurement
    // vector. Unlike NaN/Inf these pass the finiteness checks and reach
    // the surrogate as training targets (the value function's normalized
    // slack ratio keeps *values* bounded, but the measurement regressor
    // sees the raw poison). On a bowl tight enough that no agent solves
    // it instantly, the self-healing sentinels must keep every campaign
    // finite with exact budget accounting, and somewhere in the fleet a
    // sentinel must actually fire.
    let max_sims = 400;
    let budget = SearchBudget::new(max_sims);
    let mut health_total = 0usize;
    for mut agent in agents() {
        let mut p = Bowl::problem(3, 0.05).expect("bowl builds");
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::only(asdex::env::FaultMode::ExtremeMeasurements, 0.05, 17),
        ));
        let out = agent.search(&p, budget, 1);
        let name = agent.name();
        assert!(out.simulations <= max_sims, "{name}: budget overrun under extremes");
        if !out.success {
            assert_eq!(out.stats.sims, max_sims, "{name}: gave up early under extremes");
        }
        assert!(out.best_value.is_finite(), "{name}: extreme leaked into the best value");
        assert!(out.best_point.iter().all(|v| v.is_finite()), "{name}: non-finite best point");
        health_total += out.health.total();
    }
    assert!(health_total > 0, "poisoning must trip at least one sentinel across the fleet");
}

#[test]
fn repeated_panics_quarantine_the_job() {
    // An evaluator that always panics: the first evaluation burns the full
    // retry ladder, after which the (point, corner) job is quarantined and
    // later requests short-circuit at unit cost without calling the
    // evaluator again.
    let mut p = Bowl::problem(2, 0.2).expect("bowl builds");
    p.evaluator = Arc::new(FaultInjectingEvaluator::new(
        p.evaluator.clone(),
        FaultConfig::only(asdex::env::FaultMode::Panic, 1.0, 1),
    ));
    let u = vec![0.4, 0.6];
    let first = p.evaluate_normalized(&u, 0);
    assert_eq!(first.failure, Some(FailureKind::WorkerPanic));
    assert!(first.sim_cost > 1, "first encounter must exhaust the retry ladder");
    let second = p.evaluate_normalized(&u, 0);
    assert_eq!(second.failure, Some(FailureKind::WorkerPanic));
    assert_eq!(second.sim_cost, 1, "quarantined job must short-circuit at unit cost");
}

#[test]
fn all_agents_survive_a_solve_budget_timeout_evaluator() {
    // Every simulation times out. No agent may hang or panic: the campaign
    // runs to budget exhaustion with every failure typed as Timeout and
    // the retry ladder engaged (timeouts are retryable — a bigger budget
    // might converge).
    let max_sims = 200;
    let budget = SearchBudget::new(max_sims);
    let mut merged = EvalStats::new();
    for mut agent in agents() {
        let mut p = Bowl::problem(3, 0.2).expect("bowl builds");
        let names = p.evaluator.measurement_names().to_vec();
        p.evaluator = Arc::new(TimeoutEvaluator { names });
        let out = agent.search(&p, budget, 1);
        let name = agent.name();
        assert!(!out.success, "{name}: succeeded although every solve timed out");
        assert_eq!(out.stats.sims, max_sims, "{name}: must spend the whole budget");
        assert!(out.best_value.is_finite(), "{name}: timeout corrupted the best value");
        merged.merge(&out.stats);
    }
    assert!(merged.failures_of(FailureKind::Timeout) > 0, "timeouts must be typed: {merged}");
    assert_eq!(
        merged.total_failures(),
        merged.failures_of(FailureKind::Timeout),
        "nothing but timeouts can appear: {merged}"
    );
    assert!(merged.retries > 0, "timeouts are retryable and must hit the ladder");
}

#[test]
fn pathological_netlist_is_classified_as_no_convergence() {
    use asdex::spice::analysis::{dc_operating_point, OpOptions};
    use asdex::spice::devices::DiodeModel;
    use asdex::spice::{Circuit, SpiceError};

    // A forward-biased diode driven hard, solved with a single Newton
    // iteration and heavy damping: the solver cannot reach its tolerance
    // and must report typed non-convergence (not NaN, not a panic).
    let mut ckt = Circuit::new();
    ckt.add_diode_model("d1n", DiodeModel::default());
    let vin = ckt.node("in");
    ckt.add_vsource("V1", vin, Circuit::GROUND, 5.0).unwrap();
    let mid = ckt.node("mid");
    ckt.add_resistor("R1", vin, mid, 10.0).unwrap();
    ckt.add_diode("D1", mid, Circuit::GROUND, "d1n", 1.0).unwrap();
    let opts = OpOptions { max_iter: 1, max_step: 1e-3, ..OpOptions::default() };
    let err = dc_operating_point(&ckt, &opts).expect_err("cannot converge in one iteration");
    assert!(matches!(err, SpiceError::NoConvergence { .. }), "got {err:?}");
    assert_eq!(FailureKind::classify_spice(&err), FailureKind::NoConvergence);
}
