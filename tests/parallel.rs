//! Thread-count invariance: the batched evaluation pipeline must be
//! observably equivalent to serial evaluation.
//!
//! `SizingProblem::evaluate_batch` may fan requests out over a worker
//! pool, but the contract is that the thread count changes wall-clock
//! only: at 1, 4, and 8 threads every agent must return bitwise-identical
//! `Evaluation`s, `EvalStats`, and `SearchOutcome`s — on clean problems,
//! on the MNA-backed opamp, under injected faults, and under budgets too
//! tight to admit every request.

use asdex::baselines::rl::{A2c, Ppo, Trpo};
use asdex::baselines::{CustomizedBo, RandomSearch};
use asdex::core::LocalExplorer;
use asdex::env::circuits::opamp::TwoStageOpamp;
use asdex::env::circuits::synthetic::Bowl;
use asdex::env::{
    EvalRequest, EvalStats, FaultConfig, FaultInjectingEvaluator, SearchBudget, Searcher,
    SizingProblem,
};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

/// A 3-D bowl problem, optionally wrapped in deterministic fault
/// injection, running its batches on `threads` workers.
fn bowl(threads: usize, fault_rate: f64, fault_seed: u64) -> SizingProblem {
    let mut p = Bowl::problem(3, 0.2).expect("bowl builds");
    if fault_rate > 0.0 {
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::new(fault_rate, fault_seed),
        ));
    }
    p.with_threads(threads)
}

fn agents() -> Vec<Box<dyn Searcher>> {
    vec![
        Box::new(LocalExplorer::default()),
        Box::new(RandomSearch::new()),
        Box::new(CustomizedBo::new()),
        Box::new(A2c::new()),
        Box::new(Ppo::new()),
        Box::new(Trpo::new()),
    ]
}

/// A deterministic spread of multi-corner requests over the unit cube.
fn requests(n_points: usize, n_corners: usize, dim: usize) -> Vec<EvalRequest> {
    (0..n_points)
        .flat_map(|k| {
            let u: Vec<f64> = (0..dim).map(|i| ((k * 7 + i * 3) % 11) as f64 / 10.0).collect();
            EvalRequest::fan_out(&u, n_corners)
        })
        .collect()
}

/// Evaluates `requests` at every thread count and asserts identical
/// evaluations and identical merged telemetry; returns the serial result.
fn assert_thread_invariant(
    make_problem: impl Fn(usize) -> SizingProblem,
    requests: &[EvalRequest],
    remaining: usize,
) {
    let mut reference = None;
    for threads in THREAD_COUNTS {
        let problem = make_problem(threads);
        let evals = problem.evaluate_batch(requests, remaining);
        let mut stats = EvalStats::new();
        for e in &evals {
            stats.record(e);
        }
        match &reference {
            None => reference = Some((evals, stats)),
            Some((ref_evals, ref_stats)) => {
                assert_eq!(&evals, ref_evals, "evaluations diverged at {threads} threads");
                assert_eq!(&stats, ref_stats, "telemetry diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn batch_results_identical_across_thread_counts() {
    let dim = 3;
    let reqs = requests(12, 1, dim);
    assert_thread_invariant(|t| bowl(t, 0.0, 0), &reqs, usize::MAX);
}

#[test]
fn batch_results_identical_under_faults() {
    let dim = 3;
    let reqs = requests(12, 1, dim);
    for rate in [0.1, 0.4] {
        assert_thread_invariant(|t| bowl(t, rate, 17), &reqs, usize::MAX);
    }
}

#[test]
fn batch_results_identical_under_tight_budget() {
    let dim = 3;
    let reqs = requests(12, 1, dim);
    // Budgets below the full reservation truncate the admitted prefix;
    // the truncation point must not depend on the thread count.
    for remaining in [1, 5, 13] {
        assert_thread_invariant(|t| bowl(t, 0.3, 9), &reqs, remaining);
    }
}

#[test]
fn batch_results_identical_under_worker_panics() {
    // Injected panics exercise the isolation boundary and the quarantine
    // set; neither may leak scheduling into the results. Quarantine
    // updates happen in the ordered finalize pass, so which worker hits a
    // panicking point first cannot change what later requests observe.
    let dim = 3;
    let reqs = requests(12, 1, dim);
    let panicky = |threads: usize, rate: f64| {
        let mut p = Bowl::problem(dim, 0.2).expect("bowl builds");
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::only(asdex::env::FaultMode::Panic, rate, 29),
        ));
        p.with_threads(threads)
    };
    for rate in [0.2, 1.0] {
        assert_thread_invariant(|t| panicky(t, rate), &reqs, usize::MAX);
    }
    // Agent-level: a whole campaign over the panicking problem must be
    // thread-count invariant too.
    let budget = SearchBudget::new(300);
    let mut agent = RandomSearch::new();
    let reference = agent.search(&panicky(1, 0.2), budget, 1);
    for threads in [2, 8] {
        let out = agent.search(&panicky(threads, 0.2), budget, 1);
        assert_eq!(out, reference, "random search diverged at {threads} threads under panics");
    }
}

#[test]
fn opamp_batch_identical_across_thread_counts() {
    // The MNA-backed path: pooled engines, reused workspaces, and the
    // memo cache must all be invisible in the results.
    let amp = TwoStageOpamp::bsim45();
    let template = amp.problem().expect("problem builds");
    let reqs = requests(3, template.corners.len(), template.dim());
    assert_thread_invariant(
        |t| {
            let amp = TwoStageOpamp::bsim45();
            amp.problem().expect("problem builds").with_threads(t)
        },
        &reqs,
        usize::MAX,
    );
    // Re-evaluating through one long-lived problem (warm pool and cache)
    // must also reproduce a cold problem's evaluations exactly.
    let warm = template.with_threads(2);
    let first = warm.evaluate_batch(&reqs, usize::MAX);
    let second = warm.evaluate_batch(&reqs, usize::MAX);
    assert_eq!(first, second, "warm re-evaluation must be bitwise stable");
}

#[test]
fn each_solver_backend_identical_across_thread_counts() {
    // The determinism contract is per backend: dense and sparse each
    // reproduce themselves bitwise at 1, 4, and 8 threads. The sparse
    // leg is the interesting one — pooled workspaces re-derive the
    // symbolic factorization from topology alone, and the rare
    // ill-conditioned pivot falls back to a dense solve that is a pure
    // function of the assembled values, so no thread ever observes a
    // factorization another thread warmed up.
    use asdex::spice::analysis::SolverChoice;
    let template = TwoStageOpamp::bsim45().problem().expect("problem builds");
    let reqs = requests(3, template.corners.len(), template.dim());
    for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
        assert_thread_invariant(
            |t| {
                let amp = TwoStageOpamp::bsim45();
                amp.problem().expect("problem builds").with_solver(choice).with_threads(t)
            },
            &reqs,
            usize::MAX,
        );
    }
}

#[test]
fn all_agents_identical_across_thread_counts() {
    let budget = SearchBudget::new(300);
    for (rate, seed) in [(0.0, 0), (0.3, 7)] {
        for mut agent in agents() {
            let reference = agent.search(&bowl(1, rate, seed), budget, 1);
            for threads in [2, 8] {
                let out = agent.search(&bowl(threads, rate, seed), budget, 1);
                assert_eq!(
                    out,
                    reference,
                    "{} diverged at {threads} threads (fault rate {rate})",
                    agent.name()
                );
            }
        }
    }
}

#[test]
fn env_var_thread_default_does_not_change_results() {
    // `threads == 0` defers to ASDEX_THREADS at evaluation time; whatever
    // the environment says, results must match the explicit serial path.
    let reqs = requests(8, 1, 3);
    let serial = bowl(1, 0.2, 3).evaluate_batch(&reqs, usize::MAX);
    let deferred = bowl(0, 0.2, 3).evaluate_batch(&reqs, usize::MAX);
    assert_eq!(serial, deferred);
}
