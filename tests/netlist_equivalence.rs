//! The netlist-bench keystone: a deck-defined copy of the built-in
//! two-stage opamp bench (`decks/two_stage_opamp_sized.sp`) must run
//! campaigns **bitwise identical** to the hard-coded
//! `TwoStageOpamp::bsim45()` constructor — across thread counts, across
//! worker processes, across both linear-solver backends, and across a
//! mid-campaign crash + journal resume. Equality is asserted on the
//! canonical `outcome_json` dump, whose floats are IEEE-754 bit
//! patterns: string equality ⇔ bitwise equality.

use asdex::env::{netlist_digest, Journal};
use asdex::serve::protocol::outcome_json;
use asdex::serve::scheduler::CampaignStatus;
use asdex::serve::{
    build_problem_checked, run_campaign, CampaignSpec, Scheduler, SchedulerConfig,
};
use asdex::spice::analysis::SolverChoice;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const CLONE_PATH: &str = "decks/two_stage_opamp_sized.sp";
const CLONE_BENCH: &str = "netlist:decks/two_stage_opamp_sized.sp";
const BUDGET: usize = 60;

fn spec(bench: &str, solver: &str) -> CampaignSpec {
    CampaignSpec {
        bench: bench.to_string(),
        agent: "trm".to_string(),
        seed: 7,
        budget: BUDGET,
        corners: "nominal".to_string(),
        solver: solver.to_string(),
        ..CampaignSpec::default()
    }
}

/// Runs one in-process campaign and returns the canonical outcome dump.
fn outcome(spec: &CampaignSpec, threads: usize) -> String {
    let solver = SolverChoice::from_label(&spec.solver).expect("solver label");
    let problem = build_problem_checked(&spec.bench, &spec.corners, spec.netlist_digest)
        .expect("bench builds")
        .with_threads(threads)
        .with_solver(solver);
    outcome_json(&run_campaign(&problem, spec, None).expect("campaign runs")).dump()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdex-neteq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn clone_matches_builtin_across_threads_and_both_solver_backends() {
    for solver in ["dense", "sparse"] {
        let reference = outcome(&spec("opamp45", solver), 1);
        for threads in [1usize, 4] {
            assert_eq!(
                outcome(&spec(CLONE_BENCH, solver), threads),
                reference,
                "netlist clone diverged from opamp45 ({solver}, {threads} threads)"
            );
        }
        // The built-in itself is thread-invariant; the clone inherits it.
        assert_eq!(outcome(&spec("opamp45", solver), 4), reference, "builtin ({solver})");
    }
}

#[test]
fn clone_matches_builtin_through_worker_processes_and_inline_submission() {
    let reference = outcome(&spec("opamp45", "auto"), 1);
    let source = std::fs::read_to_string(CLONE_PATH).expect("clone deck ships with the repo");
    for workers in [0usize, 4] {
        let dir = temp_dir(&format!("w{workers}"));
        let scheduler = Scheduler::start(
            SchedulerConfig {
                max_active: 2,
                thread_budget: 2,
                journal_dir: dir.clone(),
                workers,
                worker_program: Some(PathBuf::from(env!("CARGO_BIN_EXE_asdex"))),
                ..SchedulerConfig::default()
            },
            Arc::new(asdex::serve::Metrics::new()),
        )
        .expect("scheduler starts");

        // Two admission paths to the same campaign: the on-disk deck by
        // reference, and the deck source submitted inline (the daemon
        // compiles it at admission and persists it content-addressed).
        let by_path = scheduler
            .submit(Some(format!("path-{workers}")), spec(CLONE_BENCH, "auto"))
            .expect("path admission");
        let inline = scheduler
            .submit(
                Some(format!("inline-{workers}")),
                CampaignSpec { netlist: Some(source.clone()), ..spec("ignored", "auto") },
            )
            .expect("inline admission");

        for id in [&by_path, &inline] {
            assert!(scheduler.wait(id, Duration::from_secs(300)), "{id} timed out");
            let record = scheduler.get(id).expect("registered");
            assert_eq!(record.status(), CampaignStatus::Completed, "{id}");
            let out = record.outcome().expect("terminal").expect("no error");
            assert_eq!(
                outcome_json(&out).dump(),
                reference,
                "campaign {id} diverged from the built-in at {workers} worker(s)"
            );
        }
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn clone_survives_crash_and_resumes_to_the_builtin_outcome() {
    let reference = outcome(&spec("opamp45", "dense"), 1);

    // The journaled identity carries the deck digest, exactly as the CLI
    // and the daemon record it.
    let mut sp = spec(CLONE_BENCH, "dense");
    sp.netlist_digest =
        Some(netlist_digest(&std::fs::read_to_string(CLONE_PATH).expect("deck reads")));

    let dir = temp_dir("resume");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("clone.journal");

    // Uninterrupted journaled run: journaling must be invisible.
    let journal = Journal::create(&path, sp.to_meta(), 10).expect("journal create");
    let problem = build_problem_checked(&sp.bench, &sp.corners, sp.netlist_digest)
        .expect("clone builds")
        .with_solver(SolverChoice::Dense)
        .with_journal(journal);
    let full = outcome_json(&run_campaign(&problem, &sp, None).expect("runs")).dump();
    if let Some(handle) = problem.journal_handle() {
        handle.lock().expect("journal lock").checkpoint().expect("checkpoint");
    }
    drop(problem);
    assert_eq!(full, reference, "journaling changed the clone's outcome");

    // SIGKILL mid-write: truncate the journal, torn final line included,
    // then resume. The restored metadata re-pins bench, solver, and deck
    // digest; replay plus fresh simulation must land on the same bits.
    let bytes = std::fs::read(&path).expect("journal bytes");
    std::fs::write(&path, &bytes[..bytes.len() * 6 / 10]).expect("truncate");
    let journal = Journal::resume(&path, 10).expect("journal resumes");
    let restored = CampaignSpec::from_meta(journal.meta()).expect("meta restores");
    assert_eq!(restored.bench, CLONE_BENCH);
    assert_eq!(restored.netlist_digest, sp.netlist_digest, "digest lost in the journal");
    let problem =
        build_problem_checked(&restored.bench, &restored.corners, restored.netlist_digest)
            .expect("clone rebuilds")
            .with_solver(SolverChoice::Dense)
            .with_journal(journal);
    let resumed = outcome_json(&run_campaign(&problem, &restored, None).expect("resumes")).dump();
    assert_eq!(resumed, reference, "resumed clone diverged from the built-in");

    // An edited deck no longer hashes to the journaled digest: rebuilding
    // the campaign is a typed refusal, not a silently different search.
    let edited = dir.join("edited.sp");
    std::fs::write(
        &edited,
        std::fs::read_to_string(CLONE_PATH).expect("deck").replace("2e-12", "3e-12"),
    )
    .expect("edited copy");
    let err = build_problem_checked(
        &format!("netlist:{}", edited.display()),
        &restored.corners,
        restored.netlist_digest,
    )
    .expect_err("edited deck must be refused");
    assert!(err.contains("digest"), "untyped refusal: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}
