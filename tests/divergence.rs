//! Divergence drills: the self-healing layer must catch poisoned training
//! signals, report them through `SearchOutcome::health`, and never let a
//! counter perturb the search itself.
//!
//! Two distinct poisoning channels are exercised:
//!
//! - **Measurement space.** `FaultMode::ExtremeMeasurements` returns
//!   huge-but-finite (−1e30) measurement vectors that pass every
//!   finiteness check. The value function's normalized slack ratio keeps
//!   *values* bounded in `[floor, 0]` no matter how wild the measurement
//!   (an intrinsic guard these tests also pin down), but the surrogate
//!   regresses raw measurements, so the poison reaches its training
//!   targets and the fit sentinel must fire.
//! - **Value space.** A mis-scaled `contribution_floor` (a silent unit
//!   error) turns ordinary simulation failures into −1e6 returns, which
//!   reach the RL value nets through the reward channel and must be
//!   caught by the gradient guards.
//!
//! And three invariants frame them: clean campaigns report zero health
//! events, every campaign under fault storms stays finite with exact
//! budget accounting, and health reporting is bitwise-invariant across
//! worker-thread counts and across a journaled crash/resume.

use asdex::baselines::rl::{A2c, Ppo, Trpo};
use asdex::baselines::{CustomizedBo, RandomSearch};
use asdex::core::LocalExplorer;
use asdex::env::circuits::synthetic::Bowl;
use asdex::env::{
    EnvError, EvalEffort, Evaluator, FaultConfig, FaultInjectingEvaluator, FaultMode, Journal,
    JournalMeta, PvtCorner, SearchBudget, Searcher, SizingProblem,
};
use std::path::PathBuf;
use std::sync::Arc;

fn agents() -> Vec<Box<dyn Searcher>> {
    vec![
        Box::new(LocalExplorer::default()),
        Box::new(RandomSearch::new()),
        Box::new(CustomizedBo::new()),
        Box::new(A2c::new()),
        Box::new(Ppo::new()),
        Box::new(Trpo::new()),
    ]
}

/// A bowl whose every simulation returns the same measurement vector: a
/// perfectly flat landscape no surrogate can rank and no trust region can
/// descend.
fn flat_problem() -> SizingProblem {
    struct ConstEvaluator {
        names: Vec<String>,
    }
    impl Evaluator for ConstEvaluator {
        fn measurement_names(&self) -> &[String] {
            &self.names
        }
        fn evaluate(&self, _x: &[f64], _corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
            Ok(vec![-7.0; self.names.len()])
        }
        fn evaluate_with_effort(
            &self,
            _x: &[f64],
            _corner: &PvtCorner,
            _effort: EvalEffort,
        ) -> Result<Vec<f64>, EnvError> {
            Ok(vec![-7.0; self.names.len()])
        }
    }
    let mut p = Bowl::problem(3, 0.2).expect("bowl builds");
    let names = p.evaluator.measurement_names().to_vec();
    p.evaluator = Arc::new(ConstEvaluator { names });
    p
}

/// A bowl with a deterministic fraction of extreme-measurement faults.
fn poisoned_bowl(target: f64, rate: f64, seed: u64) -> SizingProblem {
    let mut p = Bowl::problem(3, target).expect("bowl builds");
    p.evaluator = Arc::new(FaultInjectingEvaluator::new(
        p.evaluator.clone(),
        FaultConfig::only(FaultMode::ExtremeMeasurements, rate, seed),
    ));
    p
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("asdex-divergence-{}-{tag}.journal", std::process::id()))
}

#[test]
fn clean_campaigns_report_zero_health_events() {
    // On a clean, well-conditioned problem no sentinel may fire: the
    // health counters must never punish healthy training.
    let budget = SearchBudget::new(400);
    for mut agent in agents() {
        let p = Bowl::problem(3, 0.2).expect("bowl builds");
        let out = agent.search(&p, budget, 1);
        assert_eq!(
            out.health.total(),
            0,
            "{}: clean run reported health events: {}",
            agent.name(),
            out.health
        );
    }
}

#[test]
fn fault_storms_leave_every_agent_finite() {
    // The full default fault mix (non-convergence, NaN/Inf, wrong
    // dimension) at a 30 % rate: every agent must finish with a finite
    // best value, a finite best point, and exact budget accounting.
    let max_sims = 400;
    let budget = SearchBudget::new(max_sims);
    for mut agent in agents() {
        let mut p = Bowl::problem(3, 0.2).expect("bowl builds");
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::new(0.3, 7),
        ));
        let out = agent.search(&p, budget, 1);
        let name = agent.name();
        assert!(out.best_value.is_finite(), "{name}: non-finite best value under fault storm");
        assert!(out.best_point.iter().all(|v| v.is_finite()), "{name}: non-finite best point");
        assert!(out.simulations <= max_sims, "{name}: budget overrun");
        if !out.success {
            assert_eq!(out.stats.sims, max_sims, "{name}: gave up early under faults");
        }
        assert!(out.stats.total_failures() > 0, "{name}: the storm never surfaced in telemetry");
    }
}

#[test]
fn extreme_measurements_trip_the_explorer_sentinels() {
    // −1e30 measurements reach the surrogate's training targets; on a
    // bowl tight enough that the explorer has to train for a while, the
    // fit sentinel (rollback) and the collapse tracker (re-seed) fire.
    let mut agent = LocalExplorer::default();
    let out = agent.search(&poisoned_bowl(0.05, 0.05, 17), SearchBudget::new(400), 1);
    assert!(out.best_value.is_finite(), "extreme leaked into the best value");
    assert!(
        out.health.total() > 0,
        "poisoned surrogate targets must trip a sentinel: {}",
        out.health
    );
}

#[test]
fn extreme_measurements_cannot_poison_the_value_channel() {
    // The normalized slack ratio bounds every per-spec contribution by
    // the clamp floor, so even a −1e30 measurement produces a value in
    // [failure_value, 0] — the first line of defense.
    let p = poisoned_bowl(0.2, 1.0, 3);
    let floor = p.value_fn.failure_value(&p.specs);
    let evals = p.evaluate_batch(&asdex::env::EvalRequest::fan_out(&[0.3, 0.6, 0.9], 1), 8);
    assert!(!evals.is_empty());
    for e in &evals {
        assert!(e.value.is_finite(), "value must stay finite under extremes");
        assert!(
            e.value >= floor && e.value <= 0.0,
            "value {} escaped [{floor}, 0]",
            e.value
        );
    }
}

#[test]
fn mis_scaled_value_floor_trips_the_rl_guards() {
    // A silent unit error in the value function's clamp floor turns
    // simulation failures into −1e6 returns. Those reach the RL value
    // nets through the reward channel; the gradient guards must clip or
    // reject the resulting updates and say so in the health counters.
    let budget = SearchBudget::new(400);
    let rl: Vec<Box<dyn Searcher>> =
        vec![Box::new(A2c::new()), Box::new(Ppo::new()), Box::new(Trpo::new())];
    for mut agent in rl {
        let mut p = Bowl::problem(3, 0.2).expect("bowl builds");
        p.value_fn.contribution_floor = -1e6;
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::new(0.2, 17),
        ));
        let out = agent.search(&p, budget, 1);
        let name = agent.name();
        assert!(out.best_value.is_finite(), "{name}: non-finite best value");
        assert!(
            out.health.total() > 0,
            "{name}: −1e6 returns must trip a gradient guard: {}",
            out.health
        );
    }
}

#[test]
fn degenerate_surrogate_falls_back_to_random_acquisition() {
    // A flat landscape gives the forest nothing to rank: the acquisition
    // scores are constant, and BO must fall back to its first sampled
    // candidate instead of chasing a meaningless argmax.
    let mut agent = CustomizedBo::new();
    let out = agent.search(&flat_problem(), SearchBudget::new(300), 1);
    assert!(out.best_value.is_finite());
    assert!(
        out.health.surrogate_fallbacks > 0,
        "constant predictions must be reported as surrogate fallbacks: {}",
        out.health
    );
}

#[test]
fn flat_landscape_collapse_reseeds_the_trust_region() {
    // With no step ever accepted the radius pins at its minimum; the
    // collapse tracker must re-seed the episode (Algorithm 1's restart)
    // and count every re-seed.
    let mut agent = LocalExplorer::default();
    let out = agent.search(&flat_problem(), SearchBudget::new(300), 1);
    assert!(out.best_value.is_finite());
    assert!(
        out.health.tr_reseeds > 0,
        "a pinned trust region must be re-seeded and counted: {}",
        out.health
    );
}

#[test]
fn health_reporting_is_thread_invariant_under_extremes() {
    // Recovery actions (rollback, re-seed, fallback) happen in the
    // deterministic learning loop, never in the worker pool — so the
    // whole outcome, health counters included, is bitwise-identical at
    // 1, 2, and 8 threads even while extremes are being injected.
    let budget = SearchBudget::new(300);
    let agents: Vec<Box<dyn Searcher>> =
        vec![Box::new(LocalExplorer::default()), Box::new(CustomizedBo::new())];
    for mut agent in agents {
        let reference = agent.search(&poisoned_bowl(0.05, 0.05, 17).with_threads(1), budget, 1);
        for threads in [2usize, 8] {
            let out = agent.search(&poisoned_bowl(0.05, 0.05, 17).with_threads(threads), budget, 1);
            assert_eq!(
                out,
                reference,
                "{}: health-bearing outcome diverged at {threads} threads",
                agent.name()
            );
        }
    }
}

#[test]
fn health_reporting_survives_crash_resume() {
    // A journaled campaign killed mid-write and resumed must reproduce
    // the uninterrupted outcome bit for bit — health counters included,
    // because every sentinel decision is a pure function of the replayed
    // evaluation stream.
    let budget = SearchBudget::new(300);
    let mut agent = LocalExplorer::default();
    let plain = agent.search(&poisoned_bowl(0.05, 0.05, 17), budget, 1);
    assert!(plain.health.total() > 0, "drill needs a campaign with health events");

    let path = journal_path("trm-extreme");
    let journal = Journal::create(&path, JournalMeta::new(), 5).expect("journal create");
    let _ = agent.search(&poisoned_bowl(0.05, 0.05, 17).with_journal(journal), budget, 1);

    // Keep 40 % of the bytes — the SIGKILL case, with a torn final line.
    let bytes = std::fs::read(&path).expect("journal readable");
    std::fs::write(&path, &bytes[..bytes.len() * 2 / 5]).expect("journal truncates");

    let journal = Journal::resume(&path, 5).expect("torn journal resumes");
    let resumed = agent.search(&poisoned_bowl(0.05, 0.05, 17).with_journal(journal), budget, 1);
    assert_eq!(resumed, plain, "resume after truncation changed the health-bearing outcome");
    let _ = std::fs::remove_file(&path);
}
