//! Integration tests for the sizing-as-a-service layer.
//!
//! The two contracts under test are the serving layer's versions of the
//! repo's determinism guarantees:
//!
//! 1. **Concurrency invariance** — N campaigns running concurrently on
//!    the daemon (any thread budget) produce outcomes bitwise identical
//!    to the same campaigns run serially through the library and through
//!    the CLI's `--json` mode. Compared via the shared outcome
//!    serializer, whose `*_bits` fields make JSON string equality ⇔
//!    bitwise equality (including `EvalStats`/`HealthStats`).
//! 2. **Drain/resume invariance** — a drain mid-campaign checkpoints the
//!    journal; a fresh scheduler over the same journal directory,
//!    resubmitted with the same id, resumes and finishes with an outcome
//!    bitwise identical to an uninterrupted run and with **zero
//!    duplicate simulations** (all prior work is replayed, not re-run).

use asdex::serve::json::Json;
use asdex::serve::protocol::outcome_json;
use asdex::serve::scheduler::CampaignStatus;
use asdex::serve::{
    build_problem, run_campaign, CampaignSpec, Client, DrainHandle, Scheduler, SchedulerConfig,
    Server, ServerConfig,
};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdex-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The eight fixed campaigns the concurrency tests submit: distinct
/// seeds, all three agents represented.
fn fixed_specs() -> Vec<CampaignSpec> {
    (0..8u64)
        .map(|k| CampaignSpec {
            bench: "bowl3".to_string(),
            agent: ["trm", "bo", "random"][(k % 3) as usize].to_string(),
            seed: 100 + k,
            budget: 400,
            ..CampaignSpec::default()
        })
        .collect()
}

/// Serial reference: the library path the CLI uses, no journal, no
/// threads, no scheduler. Returns the canonical outcome JSON string.
fn serial_reference(spec: &CampaignSpec) -> String {
    let problem = build_problem(&spec.bench, &spec.corners).expect("benchmark builds");
    let outcome = run_campaign(&problem, spec, None).expect("campaign runs");
    outcome_json(&outcome).dump()
}

#[test]
fn concurrent_campaigns_match_serial_runs_bitwise() {
    let specs = fixed_specs();
    let references: Vec<String> = specs.iter().map(serial_reference).collect();

    // Thread budgets 1 and 4: the fair-share division differs, the
    // outcomes must not.
    for thread_budget in [1usize, 4] {
        let dir = temp_dir(&format!("conc-t{thread_budget}"));
        let scheduler = Scheduler::start(
            SchedulerConfig {
                max_active: 8,
                thread_budget,
                journal_dir: dir.clone(),
                ..SchedulerConfig::default()
            },
            Arc::new(asdex::serve::Metrics::new()),
        )
        .expect("scheduler starts");
        let ids: Vec<String> = specs
            .iter()
            .enumerate()
            .map(|(k, spec)| {
                scheduler.submit(Some(format!("fix-{k}")), spec.clone()).expect("admitted")
            })
            .collect();
        for (k, id) in ids.iter().enumerate() {
            assert!(scheduler.wait(id, Duration::from_secs(120)), "campaign {id} timed out");
            let record = scheduler.get(id).expect("registered");
            assert_eq!(record.status(), CampaignStatus::Completed, "{id}");
            let outcome = record.outcome().expect("terminal").expect("no error");
            assert_eq!(
                outcome_json(&outcome).dump(),
                references[k],
                "campaign {id} diverged from its serial run at thread budget {thread_budget}"
            );
        }
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn daemon_http_outcomes_match_serial_and_cli_json() {
    let specs = fixed_specs();
    let dir = temp_dir("http");
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: SchedulerConfig {
            max_active: 8,
            thread_budget: 4,
            journal_dir: dir.clone(),
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    };
    let drain = DrainHandle::new();
    let server = Server::bind(cfg, drain.clone()).expect("daemon binds");
    let addr = server.local_addr().expect("bound").to_string();
    let server_thread = std::thread::spawn(move || server.run().expect("daemon runs"));

    let client = Client::new(addr);
    assert_eq!(
        client.healthz().expect("healthz").get("status").and_then(Json::as_str),
        Some("ok")
    );

    // Submit all eight concurrently, then poll each over HTTP.
    let ids: Vec<String> =
        specs.iter().map(|spec| client.submit(None, spec).expect("submitted")).collect();
    for (k, id) in ids.iter().enumerate() {
        let doc = client.wait_for(id, Duration::from_secs(120)).expect("completes");
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("completed"), "{id}");
        let served = doc.get("outcome").expect("outcome present").dump();
        assert_eq!(served, serial_reference(&specs[k]), "campaign {id} diverged over HTTP");
        assert!(
            !doc.get("progress").and_then(Json::as_arr).expect("progress").is_empty(),
            "campaign {id} streamed no progress lines"
        );
    }

    // CLI `--json` shares the same serializer: its `outcome` document
    // must equal the daemon's, string for string.
    for k in [0usize, 1] {
        let spec = &specs[k];
        let output = Command::new(env!("CARGO_BIN_EXE_asdex"))
            .args([
                "size",
                &spec.bench,
                "--agent",
                &spec.agent,
                "--seed",
                &spec.seed.to_string(),
                "--budget",
                &spec.budget.to_string(),
                "--json",
                "--quiet",
            ])
            .output()
            .expect("CLI runs");
        assert!(output.status.success(), "CLI failed: {output:?}");
        let doc = Json::parse(std::str::from_utf8(&output.stdout).expect("utf-8"))
            .expect("CLI emits JSON");
        assert_eq!(
            doc.get("outcome").expect("outcome").dump(),
            serial_reference(spec),
            "CLI --json diverged for seed {}",
            spec.seed
        );
    }

    let metrics = client.metrics().expect("metrics scrape");
    assert!(metrics.contains("asdex_campaigns_total{state=\"completed\"} 8"), "{metrics}");
    assert!(metrics.contains("asdex_request_latency_us_bucket"));

    drain.request_drain();
    server_thread.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_checkpoints_and_restart_resumes_without_duplicate_sims() {
    // Real SPICE work (opamp45) so a quick drain reliably lands
    // mid-campaign; modest budget to keep the test tight.
    let specs: Vec<CampaignSpec> = (0..2u64)
        .map(|k| CampaignSpec {
            bench: "opamp45".to_string(),
            agent: "trm".to_string(),
            seed: 7 + k,
            budget: 250,
            checkpoint_every: 5,
            ..CampaignSpec::default()
        })
        .collect();
    let references: Vec<String> = specs.iter().map(serial_reference).collect();

    let dir = temp_dir("drain-resume");
    let first = Scheduler::start(
        SchedulerConfig {
            max_active: 2,
            thread_budget: 2,
            journal_dir: dir.clone(),
            ..SchedulerConfig::default()
        },
        Arc::new(asdex::serve::Metrics::new()),
    )
    .expect("scheduler starts");
    let ids: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(k, spec)| first.submit(Some(format!("dr-{k}")), spec.clone()).expect("admitted"))
        .collect();
    // Let the campaigns get partway in, then pull the plug.
    std::thread::sleep(Duration::from_millis(300));
    first.drain();

    let mut recorded_before = Vec::new();
    let mut interrupted_before = 0u64;
    for id in &ids {
        let record = first.get(id).expect("registered");
        assert!(record.status().is_terminal(), "{id} not terminal after drain");
        interrupted_before += u64::from(record.status() == CampaignStatus::Interrupted);
        // (replayed, recorded) when the runner got far enough to open the
        // journal; campaigns drained while still queued have no journal.
        recorded_before.push(record.journal_info().map(|(_, recorded)| recorded).unwrap_or(0));
    }

    // "Daemon restart": a fresh scheduler over the same journal
    // directory. Boot-time recovery replays the manifest and re-admits
    // every interrupted campaign on its own — no client resubmission.
    let metrics = Arc::new(asdex::serve::Metrics::new());
    let second = Scheduler::start(
        SchedulerConfig {
            max_active: 2,
            thread_budget: 2,
            journal_dir: dir.clone(),
            ..SchedulerConfig::default()
        },
        Arc::clone(&metrics),
    )
    .expect("scheduler restarts");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !second.is_ready() {
        assert!(std::time::Instant::now() < deadline, "recovery must finish");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        metrics.recovered_campaigns.load(std::sync::atomic::Ordering::Relaxed),
        interrupted_before,
        "recovery re-admits exactly the campaigns the drain interrupted"
    );
    for (k, id) in ids.iter().enumerate() {
        let record = second.get(id).expect("manifest re-exposed every campaign");
        // A campaign that finished before the drain is re-exposed from
        // its manifest summary, not re-run; explicitly resubmitting it is
        // still legal (the resume path) and must replay to the same
        // outcome, which is what this test asserts below.
        if record.recovered_summary().is_some() {
            second.submit(Some(id.clone()), specs[k].clone()).expect("resubmitted");
        }
    }
    for (k, id) in ids.iter().enumerate() {
        assert!(second.wait(id, Duration::from_secs(300)), "{id} timed out after resume");
        let record = second.get(id).expect("registered");
        assert_eq!(record.status(), CampaignStatus::Completed, "{id}");
        let outcome = record.outcome().expect("terminal").expect("no error");
        assert_eq!(
            outcome_json(&outcome).dump(),
            references[k],
            "campaign {id} diverged after drain + restart"
        );
        let (replayed, recorded) = record.journal_info().expect("journal telemetry");
        assert_eq!(
            replayed, recorded_before[k],
            "{id}: every checkpointed evaluation must be replayed, not re-simulated"
        );
        assert!(
            recorded >= recorded_before[k],
            "{id}: the journal can only grow across a resume"
        );
    }
    second.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_errors_surface_as_http_statuses() {
    let dir = temp_dir("http-errors");
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
        ..ServerConfig::default()
    };
    let drain = DrainHandle::new();
    let server = Server::bind(cfg, drain.clone()).expect("daemon binds");
    let addr = server.local_addr().expect("bound").to_string();
    let server_thread = std::thread::spawn(move || server.run().expect("daemon runs"));
    let client = Client::new(addr);

    // Unknown benchmark -> 400 at admission, not a failed campaign.
    let bad = CampaignSpec { bench: "op999".to_string(), ..CampaignSpec::default() };
    match client.submit(None, &bad) {
        Err(asdex::serve::ClientError::Status { status, .. }) => assert_eq!(status, 400),
        other => panic!("expected HTTP 400, got {other:?}"),
    }
    // Unknown campaign -> 404.
    match client.get_campaign("ghost") {
        Err(asdex::serve::ClientError::Status { status, .. }) => assert_eq!(status, 404),
        other => panic!("expected HTTP 404, got {other:?}"),
    }
    // Duplicate in-flight id -> 409 (first one is still queued/running).
    let slow = CampaignSpec { bench: "bowl4".to_string(), budget: 4_000, ..CampaignSpec::default() };
    client.submit(Some("dup"), &slow).expect("first admitted");
    match client.submit(Some("dup"), &slow) {
        Err(asdex::serve::ClientError::Status { status, .. }) => assert_eq!(status, 409),
        Ok(_) => {
            // The first finished before the second arrived; resubmission
            // of a terminal id is legal (that's the resume path).
        }
        other => panic!("expected HTTP 409 or success, got {other:?}"),
    }
    client.wait_for("dup", Duration::from_secs(120)).expect("dup completes");

    drain.request_drain();
    server_thread.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}
