//! Cross-crate property tests: invariants that must hold for randomized
//! inputs, spanning the design space, value function, trust region, and
//! simulator layers. Each property is exercised over a seeded sweep so
//! failures are reproducible without a property-testing framework.

use asdex::core::{TrustRegion, TrustRegionConfig};
use asdex::env::circuits::synthetic::Bowl;
use asdex::env::{DesignSpace, Param, Spec, SpecSet, ValueFn};
use asdex::linalg::norm_inf;
use asdex::spice::units::parse_value;
use asdex_rng::rngs::StdRng;
use asdex_rng::{Rng, SeedableRng};

/// Builds a randomized design space (1–5 axes, 2–49 grid points each).
fn random_space(rng: &mut StdRng) -> DesignSpace {
    let dims = rng.gen_range(1..6usize);
    DesignSpace::new(
        (0..dims)
            .map(|i| {
                let n = rng.gen_range(2..50usize);
                Param::linear(&format!("p{i}"), 0.0, 1.0, n).expect("valid grid")
            })
            .collect(),
    )
    .expect("valid space")
}

#[test]
fn snap_is_idempotent_and_bounded() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = random_space(&mut rng);
        let u = space.sample(&mut rng);
        let s1 = space.snap(&u).expect("dims match");
        let s2 = space.snap(&s1).expect("dims match");
        assert_eq!(s1, s2, "seed {seed}");
        for v in &s1 {
            assert!((0.0..=1.0).contains(v), "seed {seed}: {v}");
        }
    }
}

#[test]
fn physical_normalized_round_trip() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = random_space(&mut rng);
        let u = space.sample(&mut rng);
        let x = space.to_physical(&u).expect("dims");
        let back = space.to_normalized(&x).expect("dims");
        assert_eq!(u, back, "seed {seed}");
    }
}

#[test]
fn sample_within_stays_inside_radius() {
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = random_space(&mut rng);
        let radius = rng.gen_range(0.01..0.5);
        let center = space.sample(&mut rng);
        let p = space.sample_within(&mut rng, &center, radius);
        let delta: Vec<f64> = p.iter().zip(&center).map(|(a, b)| a - b).collect();
        // Snapping can add at most half a grid step per axis.
        let slack = space
            .params()
            .iter()
            .map(|px| if px.len() > 1 { 0.5 / (px.len() - 1) as f64 } else { 0.0 })
            .fold(0.0, f64::max);
        assert!(
            norm_inf(&delta) <= radius + slack + 1e-12,
            "seed {seed}: |delta|={} radius={radius} slack={slack}",
            norm_inf(&delta)
        );
    }
}

#[test]
fn value_function_is_zero_iff_feasible() {
    let specs = SpecSet::new(vec![Spec::at_least(0, "a", 10.0), Spec::at_most(1, "b", 20.0)]);
    let v = ValueFn::default();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..500 {
        let m0 = rng.gen_range(-100.0..100.0);
        let m1 = rng.gen_range(-100.0..100.0);
        let val = v.value(&[m0, m1], &specs);
        let feasible = m0 >= 10.0 && m1 <= 20.0;
        assert_eq!(val == 0.0, feasible, "value {val} for ({m0}, {m1})");
        assert!(val <= 0.0);
        assert!(val >= v.failure_value(&specs));
    }
}

#[test]
fn value_monotone_in_slack() {
    let specs = SpecSet::new(vec![Spec::at_least(0, "a", 60.0)]);
    let v = ValueFn::default();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..500 {
        let base = rng.gen_range(-50.0..50.0);
        let bump = rng.gen_range(0.01..10.0);
        let lo = v.value(&[base], &specs);
        let hi = v.value(&[base + bump], &specs);
        assert!(hi >= lo, "{lo} -> {hi}");
    }
}

#[test]
fn trust_region_radius_always_in_bounds() {
    let cfg = TrustRegionConfig::default();
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tr = TrustRegion::new(cfg);
        let steps = rng.gen_range(1..50usize);
        for _ in 0..steps {
            let pred = rng.gen_range(-2.0..2.0);
            let act = rng.gen_range(-2.0..2.0);
            let step = tr.assess(pred, act);
            assert!(step.radius >= cfg.min_radius - 1e-12);
            assert!(step.radius <= cfg.max_radius + 1e-12);
            assert!(step.rho.is_finite());
        }
    }
}

#[test]
fn trust_region_shrinks_monotonically_on_bad_ratios() {
    // A stream of misleading predictions (actual never improves) must
    // never grow the region: the radius decreases monotonically until it
    // pins at the configured minimum.
    let cfg = TrustRegionConfig::default();
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tr = TrustRegion::new(cfg);
        let mut prev = tr.radius();
        for _ in 0..30 {
            let pred = rng.gen_range(0.5..2.0);
            let act = -rng.gen_range(0.0..2.0);
            let step = tr.assess(pred, act);
            assert!(!step.accepted, "seed {seed}: bad ratio accepted");
            assert!(step.radius <= prev + 1e-12, "seed {seed}: radius grew on a bad ratio");
            assert!(step.radius >= cfg.min_radius - 1e-12, "seed {seed}");
            prev = step.radius;
        }
        assert!(
            (tr.radius() - cfg.min_radius).abs() < 1e-9,
            "seed {seed}: 30 bad steps must pin the radius at the minimum"
        );
    }
}

#[test]
fn trust_region_reset_restores_seed_radius_from_any_state() {
    let cfg = TrustRegionConfig::default();
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tr = TrustRegion::new(cfg);
        for _ in 0..rng.gen_range(1..40usize) {
            let pred = rng.gen_range(-2.0..2.0);
            let act = rng.gen_range(-2.0..2.0);
            tr.assess(pred, act);
        }
        tr.reset();
        assert_eq!(tr.radius(), cfg.initial_radius, "seed {seed}");
    }
}

#[test]
fn trust_region_survives_non_finite_improvement_streams() {
    // Random NaN/Inf improvements mixed into an ordinary stream: the
    // region must stay finite, in bounds, and reject every corrupted step.
    let cfg = TrustRegionConfig::default();
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tr = TrustRegion::new(cfg);
        for _ in 0..40 {
            let pred = match rng.gen_range(0..4usize) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => rng.gen_range(-2.0..2.0),
            };
            let act = match rng.gen_range(0..4usize) {
                0 => f64::NEG_INFINITY,
                1 => f64::NAN,
                _ => rng.gen_range(-2.0..2.0),
            };
            let step = tr.assess(pred, act);
            assert!(step.rho.is_finite(), "seed {seed}: non-finite rho leaked");
            assert!(step.radius.is_finite(), "seed {seed}: non-finite radius");
            assert!(step.radius >= cfg.min_radius - 1e-12, "seed {seed}");
            assert!(step.radius <= cfg.max_radius + 1e-12, "seed {seed}");
            if !pred.is_finite() || !act.is_finite() {
                assert!(!step.accepted, "seed {seed}: corrupted step accepted");
            }
        }
    }
}

#[test]
fn parse_value_scales_compose() {
    // A `k` suffix on a plain number multiplies by exactly 1000.
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        let mantissa = rng.gen_range(0.001..999.0);
        let plain = parse_value(&format!("{mantissa}")).expect("parses");
        let kilo = parse_value(&format!("{mantissa}k")).expect("parses");
        assert!((kilo / plain - 1000.0).abs() < 1e-9);
    }
}

#[test]
fn bowl_search_is_deterministic_and_budgeted() {
    use asdex::core::LocalExplorer;
    use asdex::env::{SearchBudget, Searcher};
    let problem = Bowl::problem(3, 0.08).expect("problem");
    let mut rng = StdRng::seed_from_u64(4);
    for seed in 0..8u64 {
        let budget = rng.gen_range(50..400usize);
        let mut a = LocalExplorer::default();
        let o1 = a.search(&problem, SearchBudget::new(budget), seed);
        let o2 = a.search(&problem, SearchBudget::new(budget), seed);
        assert_eq!(o1, o2, "seed {seed}");
        assert!(o1.simulations <= budget, "seed {seed}");
    }
}
