//! Cross-crate property-based tests: invariants that must hold for any
//! input, spanning the design space, value function, trust region, and
//! simulator layers.

use asdex::core::{TrustRegion, TrustRegionConfig};
use asdex::env::circuits::synthetic::Bowl;
use asdex::env::{DesignSpace, Param, Spec, SpecSet, ValueFn};
use asdex::linalg::norm_inf;
use asdex::spice::units::parse_value;
use proptest::prelude::*;

fn arb_space() -> impl Strategy<Value = DesignSpace> {
    prop::collection::vec(2usize..50, 1..6).prop_map(|lens| {
        DesignSpace::new(
            lens.iter()
                .enumerate()
                .map(|(i, &n)| Param::linear(&format!("p{i}"), 0.0, 1.0, n).expect("valid grid"))
                .collect(),
        )
        .expect("valid space")
    })
}

proptest! {
    #[test]
    fn snap_is_idempotent_and_bounded(space in arb_space(), seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = space.sample(&mut rng);
        let s1 = space.snap(&u).expect("dims match");
        let s2 = space.snap(&s1).expect("dims match");
        prop_assert_eq!(&s1, &s2);
        for v in &s1 {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn physical_normalized_round_trip(space in arb_space(), seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = space.sample(&mut rng);
        let x = space.to_physical(&u).expect("dims");
        let back = space.to_normalized(&x).expect("dims");
        prop_assert_eq!(&u, &back);
    }

    #[test]
    fn sample_within_stays_inside_radius(space in arb_space(), seed in 0u64..200, radius in 0.01f64..0.5) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let center = space.sample(&mut rng);
        let p = space.sample_within(&mut rng, &center, radius);
        let delta: Vec<f64> = p.iter().zip(&center).map(|(a, b)| a - b).collect();
        // Snapping can add at most half a grid step per axis.
        let slack = space.params().iter().map(|px| if px.len() > 1 { 0.5 / (px.len() - 1) as f64 } else { 0.0 }).fold(0.0, f64::max);
        prop_assert!(norm_inf(&delta) <= radius + slack + 1e-12);
    }

    #[test]
    fn value_function_is_zero_iff_feasible(m0 in -100.0f64..100.0, m1 in -100.0f64..100.0) {
        let specs = SpecSet::new(vec![Spec::at_least(0, "a", 10.0), Spec::at_most(1, "b", 20.0)]);
        let v = ValueFn::default();
        let val = v.value(&[m0, m1], &specs);
        let feasible = m0 >= 10.0 && m1 <= 20.0;
        prop_assert_eq!(val == 0.0, feasible, "value {} for ({}, {})", val, m0, m1);
        prop_assert!(val <= 0.0);
        prop_assert!(val >= v.failure_value(&specs));
    }

    #[test]
    fn value_monotone_in_slack(base in -50.0f64..50.0, bump in 0.01f64..10.0) {
        let specs = SpecSet::new(vec![Spec::at_least(0, "a", 60.0)]);
        let v = ValueFn::default();
        let lo = v.value(&[base], &specs);
        let hi = v.value(&[base + bump], &specs);
        prop_assert!(hi >= lo, "{} -> {}", lo, hi);
    }

    #[test]
    fn trust_region_radius_always_in_bounds(updates in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..50)) {
        let cfg = TrustRegionConfig::default();
        let mut tr = TrustRegion::new(cfg);
        for (pred, act) in updates {
            let step = tr.assess(pred, act);
            prop_assert!(step.radius >= cfg.min_radius - 1e-12);
            prop_assert!(step.radius <= cfg.max_radius + 1e-12);
            prop_assert!(step.rho.is_finite());
        }
    }

    #[test]
    fn parse_value_scales_compose(mantissa in 0.001f64..999.0) {
        // k on top of a plain number multiplies by exactly 1000.
        let plain = parse_value(&format!("{mantissa}")).expect("parses");
        let kilo = parse_value(&format!("{mantissa}k")).expect("parses");
        prop_assert!((kilo / plain - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn bowl_search_is_deterministic_and_budgeted(seed in 0u64..30, budget in 50usize..400) {
        use asdex::core::LocalExplorer;
        use asdex::env::{SearchBudget, Searcher};
        let problem = Bowl::problem(3, 0.08).expect("problem");
        let mut a = LocalExplorer::default();
        let o1 = a.search(&problem, SearchBudget::new(budget), seed);
        let o2 = a.search(&problem, SearchBudget::new(budget), seed);
        prop_assert_eq!(&o1, &o2);
        prop_assert!(o1.simulations <= budget);
    }
}
