//! Backend cross-checks: the dense and sparse linear-solver backends are
//! interchangeable within solver tolerance, and each is individually
//! bitwise-repeatable.
//!
//! The determinism contract is *per backend*: `dense` and `sparse` each
//! reproduce themselves bit for bit at any thread count, but they reach
//! the solution through different eliminations, so across backends only
//! tolerance-level agreement is promised. These tests pin both halves:
//! tolerance agreement on the shipped decks, the MNA-backed sizing
//! benchmarks, and a generated ladder large enough that `auto` picks
//! sparse — and exact repeatability within one backend.

use asdex::env::circuits::ldo::Ldo;
use asdex::env::circuits::opamp::TwoStageOpamp;
use asdex::env::{EvalRequest, SizingProblem};
use asdex::spice::analysis::{
    ac_analysis_with_op_in, solver_report, Engine, OpOptions, SolverChoice, SolverWorkspace,
    Sweep, DENSE_MAX_DIM,
};
use asdex::spice::devices::DiodeModel;
use asdex::spice::parser::parse_netlist;
use asdex::spice::Circuit;

/// Relative agreement with an absolute floor: MNA unknowns span volts to
/// nano-amp branch currents, so pure relative comparison is too brittle
/// near zero and pure absolute too loose at supply rails.
fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= tol * scale,
            "{what}[{i}]: dense {x} vs sparse {y} (scaled err {})",
            (x - y).abs() / scale
        );
    }
}

fn op_unknowns(engine: &Engine, choice: SolverChoice) -> Vec<f64> {
    let mut ws = SolverWorkspace::with_choice(choice);
    engine
        .operating_point_with(&OpOptions::default(), None, &mut ws)
        .expect("operating point converges")
        .unknowns()
        .to_vec()
}

/// A resistive ladder with shunt diodes: `stages + 1` nodes plus one
/// source branch, sparse by construction (≤ 4 entries per row) and
/// nonlinear enough that the operating point is a real Newton loop.
fn ladder(stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.add_diode_model("dladder", DiodeModel::default());
    let top = ckt.node("n0");
    ckt.add_vsource("Vs", top, Circuit::GROUND, 3.0).unwrap();
    let mut prev = top;
    for k in 1..=stages {
        let n = ckt.node(&format!("n{k}"));
        ckt.add_resistor(&format!("Rs{k}"), prev, n, 50.0).unwrap();
        ckt.add_resistor(&format!("Rg{k}"), n, Circuit::GROUND, 2.0e3).unwrap();
        if k % 8 == 0 {
            ckt.add_diode(&format!("D{k}"), n, Circuit::GROUND, "dladder", 1.0).unwrap();
        }
        prev = n;
    }
    ckt
}

#[test]
fn shipped_decks_agree_across_backends() {
    for deck in ["decks/rc_filter.cir", "decks/two_stage_opamp.cir"] {
        let src = std::fs::read_to_string(deck).expect("deck ships with the repo");
        let ckt = parse_netlist(&src).expect("parses");
        let engine = Engine::compile(&ckt).expect("compiles");
        let dense = op_unknowns(&engine, SolverChoice::Dense);
        let sparse = op_unknowns(&engine, SolverChoice::Sparse);
        assert_close(&dense, &sparse, 1e-6, &format!("{deck} op"));

        // The AC path replays the sparse symbolic factorization across
        // every frequency point; it must track the dense sweep too.
        let sweep = Sweep::Decade { fstart: 10.0, fstop: 1e9, points_per_decade: 5 };
        let mut per_backend = Vec::new();
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let mut ws = SolverWorkspace::with_choice(choice);
            let op = engine
                .operating_point_with(&OpOptions::default(), None, &mut ws)
                .expect("op converges");
            let ac = ac_analysis_with_op_in(&engine, op, sweep, &mut ws).expect("ac runs");
            let flat: Vec<f64> = (0..ac.len())
                .flat_map(|k| {
                    let out = ckt.find_node("out").expect("out node");
                    let v = ac.voltage(k, out);
                    [v.re, v.im]
                })
                .collect();
            per_backend.push(flat);
        }
        assert_close(&per_backend[0], &per_backend[1], 1e-6, &format!("{deck} ac"));
    }
}

#[test]
fn large_ladder_agrees_and_auto_selects_sparse() {
    let ckt = ladder(240); // 241 nodes + 1 source branch: dim 242
    let engine = Engine::compile(&ckt).expect("compiles");
    let dense = op_unknowns(&engine, SolverChoice::Dense);
    let sparse = op_unknowns(&engine, SolverChoice::Sparse);
    assert!(dense.len() > 200, "ladder must exceed 200 unknowns, got {}", dense.len());
    assert_close(&dense, &sparse, 1e-6, "ladder op");

    // `auto` resolves by dimension, and the sparse factorization of a
    // chain topology carries orders of magnitude fewer entries than the
    // dense square.
    let report = solver_report(&ckt, SolverChoice::Auto).expect("report builds");
    assert_eq!(report.backend, "sparse", "a {}-dim ladder must resolve sparse", report.dim);
    assert!(
        report.lu_nnz < report.dim * report.dim / 10,
        "fill-in {} of dense {} is not sparse",
        report.lu_nnz,
        report.dim * report.dim
    );

    let small = solver_report(&ladder(4), SolverChoice::Auto).expect("report builds");
    assert!(small.dim <= DENSE_MAX_DIM && small.backend == "dense");
}

/// A deterministic spread of multi-corner requests over the unit cube
/// (same generator the thread-invariance suite uses).
fn requests(n_points: usize, n_corners: usize, dim: usize) -> Vec<EvalRequest> {
    (0..n_points)
        .flat_map(|k| {
            let u: Vec<f64> = (0..dim).map(|i| ((k * 7 + i * 3) % 11) as f64 / 10.0).collect();
            EvalRequest::fan_out(&u, n_corners)
        })
        .collect()
}

fn sizing_problems(choice: SolverChoice) -> Vec<SizingProblem> {
    vec![
        TwoStageOpamp::bsim45().problem().expect("opamp builds").with_solver(choice),
        Ldo::n6().problem().expect("ldo builds").with_solver(choice),
    ]
}

#[test]
fn sizing_benchmarks_agree_across_backends() {
    for (dense_p, sparse_p) in
        sizing_problems(SolverChoice::Dense).into_iter().zip(sizing_problems(SolverChoice::Sparse))
    {
        let reqs = requests(3, dense_p.corners.len(), dense_p.dim());
        let dense = dense_p.evaluate_batch(&reqs, usize::MAX);
        let sparse = sparse_p.evaluate_batch(&reqs, usize::MAX);
        assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(&sparse) {
            assert_eq!(d.x_norm, s.x_norm, "{}: snapped coordinates differ", dense_p.name);
            assert_eq!(d.failure, s.failure, "{}: failure typing differs", dense_p.name);
            match (&d.measurements, &s.measurements) {
                (Some(dm), Some(sm)) => {
                    assert_close(dm, sm, 1e-5, &format!("{} measurements", dense_p.name));
                }
                (None, None) => {}
                _ => panic!("{}: one backend failed where the other converged", dense_p.name),
            }
            assert_close(&[d.value], &[s.value], 1e-5, &format!("{} value", dense_p.name));
            assert_eq!(d.feasible, s.feasible, "{}: feasibility flipped", dense_p.name);
        }
    }
}

#[test]
fn each_backend_is_bitwise_repeatable() {
    for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
        let problem = TwoStageOpamp::bsim45().problem().expect("opamp builds").with_solver(choice);
        let reqs = requests(2, problem.corners.len(), problem.dim());
        let first = problem.evaluate_batch(&reqs, usize::MAX);
        // Warm pool, warm symbolic factorization, warm memo cache: the
        // second pass must be indistinguishable from the first.
        let second = problem.evaluate_batch(&reqs, usize::MAX);
        assert_eq!(first, second, "{choice:?} re-evaluation drifted");
        // And a cold problem on the same backend must reproduce it too.
        let cold = TwoStageOpamp::bsim45().problem().expect("opamp builds").with_solver(choice);
        let again = cold.evaluate_batch(&reqs, usize::MAX);
        assert_eq!(first, again, "{choice:?} cold run diverged from warm run");
    }
}
