two-stage LDO n6
* A low-dropout regulator on the n6 node: NMOS-input error amplifier
* driving a PMOS pass device, resistive divider feedback, compensated at
* the gate. The supply carries the AC stimulus, so gain_db at `out` is
* the supply injection (PSRR) — the spec asks the loop to reject it.
.process n6
.corners nominal
.sizeparam w_in 1e-6 40e-6 STEP 64
.sizeparam w_mir 1e-6 40e-6 STEP 64
.sizeparam w_tail 1e-6 40e-6 STEP 64
.sizeparam w_pass 20e-6 800e-6 STEP 100
.sizeparam cgate 1e-13 4e-12 STEP 40
.sizeparam ibias 2e-6 30e-6 STEP 25
.goal gain_db <= -95
.goal power_w <= 1e-4
.goal area_m2 <= 5e-12
.param vref=0.5*{vdd}
VDD vdd 0 DC {vdd} AC 1
VREF ref 0 DC {vref}
* Error amplifier: reference on the inverting mirror side, divider tap
* on the non-inverting side, so the loop regulates out toward 2*vref.
M1 x1 ref tail 0 nch W={w_in} L=5e-8
M2 g fb tail 0 nch W={w_in} L=5e-8
M3 x1 x1 vdd vdd pch W={w_mir} L=5e-8
M4 g x1 vdd vdd pch W={w_mir} L=5e-8
M5 tail nb 0 0 nch W={w_tail} L=5e-8
M8 nb nb 0 0 nch W={w_tail} L=5e-8
IB vdd nb {ibias}
* Pass device and gate compensation.
MP out g vdd vdd pch W={w_pass} L=5e-8
CG g 0 {cgate}
* Feedback divider and load.
R1 out fb 1e5
R2 fb 0 1e5
RL out 0 2e3
CL out 0 1e-11
.end
