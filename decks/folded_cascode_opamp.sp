folded-cascode opamp bsim22
* A single-stage folded-cascode OTA on the 22 nm node: PMOS input pair
* folded into an NMOS cascode branch with a simple PMOS mirror on top.
* Unity feedback (LFB/CFB) sets the DC operating point, the same trick
* the built-in two-stage bench uses.
.process 22
.corners nominal
.sizeparam w_in 2e-6 80e-6 STEP 64
.sizeparam w_tail 2e-6 80e-6 STEP 64
.sizeparam w_sink 1e-6 60e-6 STEP 64
.sizeparam w_cas 1e-6 60e-6 STEP 64
.sizeparam w_mir 2e-6 120e-6 STEP 64
.sizeparam ibias 2e-6 40e-6 STEP 25
.goal gain_db >= 50
.goal ugf_hz >= 2e7
.goal pm_deg >= 60
.goal power_w <= 5e-4
.goal area_m2 <= 6e-11
* PMOS input pair wants a low-ish common mode; cascode gate sits mid-rail.
.param vcm=0.4*{vdd}
.param vcb=0.45*{vdd}
VDD vdd 0 DC {vdd}
VIP inp 0 DC {vcm} AC 1
LFB out fb 1e6
CFB fb 0 1
* Bias: NMOS diode for the fold sinks, PMOS diode for tail and mirror.
IB vdd nb {ibias}
M8 nb nb 0 0 nch W={w_sink} L=1e-7
IB2 pb 0 {ibias}
M9 pb pb vdd vdd pch W={w_tail} L=1e-7
* PMOS input pair off a mirrored tail source.
MT tail pb vdd vdd pch W={w_tail} L=1e-7
M1 f1 fb tail vdd pch W={w_in} L=1e-7
M2 f2 inp tail vdd pch W={w_in} L=1e-7
* Fold-down current sinks.
M5 f1 nb 0 0 nch W={w_sink} L=1e-7
M6 f2 nb 0 0 nch W={w_sink} L=1e-7
* NMOS cascodes carry the folded signal up to the mirror.
MC1 m1 cb f1 0 nch W={w_cas} L=1e-7
MC2 out cb f2 0 nch W={w_cas} L=1e-7
VCB cb 0 DC {vcb}
* Simple PMOS mirror load on top.
M3 m1 m1 vdd vdd pch W={w_mir} L=1e-7
M4 out m1 vdd vdd pch W={w_mir} L=1e-7
CL out 0 1e-12
.end
