bandgap-style reference bsim45
* A supply-insensitive beta-multiplier reference with a mirrored output
* branch. The supply carries the AC stimulus, so gain_db at `out` is the
* supply injection (PSRR): the goal asks for at least 20 dB of rejection.
* RSTART breaks the zero-current state so DC Newton lands on the biased
* solution.
.process 45
.corners nominal
.sizeparam w_n 1e-6 50e-6 STEP 64
.sizeparam w_p 2e-6 100e-6 STEP 64
.sizeparam rsrc 5e2 5e4 STEP 64
.sizeparam rout 1e3 1e5 STEP 64
.goal gain_db <= -45
.goal power_w <= 1e-4
.goal area_m2 <= 1e-11
VDD vdd 0 DC {vdd} AC 1
* Beta multiplier core: NMOS diode + degenerated mirror under a PMOS
* mirror; the loop settles where 1/gm matches RSRC.
M1 n1 n1 0 0 nch W={w_n} L=1.8e-7
M2 n2 n1 s2 0 nch W={w_n} L=1.8e-7
RSRC s2 0 {rsrc}
M3 n1 n2 vdd vdd pch W={w_p} L=1.8e-7
M4 n2 n2 vdd vdd pch W={w_p} L=1.8e-7
RSTART vdd n1 1e7
* Output branch: mirrored current into a load resistor.
M5 out n2 vdd vdd pch W={w_p} L=1.8e-7
ROUT out 0 {rout}
CD out 0 1e-12
.end
