open-loop comparator bsim45
* A two-stage open-loop comparator: NMOS diff pair with mirror load into
* a common-source output stage. No compensation capacitor and no
* feedback — both inputs are driven at the common mode and the goals ask
* for raw gain and speed, not stability (pm is irrelevant open-loop).
.process 45
.corners nominal
.sizeparam w_in 1e-6 100e-6 STEP 100
.sizeparam w_mir 1e-6 100e-6 STEP 100
.sizeparam w_tail 1e-6 100e-6 STEP 100
.sizeparam w_cs 2e-6 200e-6 STEP 100
.sizeparam w_sink 1e-6 100e-6 STEP 100
.sizeparam ibias 2e-6 50e-6 STEP 25
.goal gain_db >= 70
.goal ugf_hz >= 1e8
.goal power_w <= 4e-4
.goal area_m2 <= 4e-11
.param vcm=0.55*{vdd}
VDD vdd 0 DC {vdd}
VIP inp 0 DC {vcm} AC 1
VIN inn 0 DC {vcm}
M1 x1 inn tail 0 nch W={w_in} L=1.8e-7
M2 x2 inp tail 0 nch W={w_in} L=1.8e-7
M3 x1 x1 vdd vdd pch W={w_mir} L=1.8e-7
M4 x2 x1 vdd vdd pch W={w_mir} L=1.8e-7
M5 tail nb 0 0 nch W={w_tail} L=1.8e-7
M8 nb nb 0 0 nch W={w_tail} L=1.8e-7
M6 out x2 vdd vdd pch W={w_cs} L=1.8e-7
M7 out nb 0 0 nch W={w_sink} L=1.8e-7
IB vdd nb {ibias}
CL out 0 5e-13
.end
