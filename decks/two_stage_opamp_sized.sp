two-stage opamp sized bsim45
* Netlist-defined clone of the built-in `opamp45` bench. Compiled by the
* netlist-bench frontend (asdex size --netlist decks/two_stage_opamp_sized.sp)
* into a SizingProblem that is bitwise-equivalent to the hard-coded
* TwoStageOpamp::bsim45() constructor: same design-space grids, same specs,
* same node/element order (first-appearance order below), and e-notation
* values throughout so every literal round-trips exactly.
.process 45
.corners nominal
.sizeparam w_in 1e-6 100e-6 STEP 100
.sizeparam w_mir 1e-6 100e-6 STEP 100
.sizeparam w_tail 1e-6 100e-6 STEP 100
.sizeparam w_cs 2e-6 200e-6 STEP 100
.sizeparam w_sink 1e-6 100e-6 STEP 100
.sizeparam cc 2e-13 8e-12 STEP 40
.sizeparam ibias 2e-6 50e-6 STEP 25
.goal gain_db >= 65
.goal ugf_hz >= 6e7
.goal pm_deg >= 60
.goal power_w <= 3e-4
.goal area_m2 <= 4e-11
* Input common mode: 0.55 * VDD (corner-scaled supply).
.param vcm=0.55*{vdd}
VDD vdd 0 {vdd}
VIP inp 0 DC {vcm} AC 1
* Unity-feedback bias: huge L closes the loop at DC, huge C grounds the
* inverting input at AC.
LFB out fb 1e6
CFB fb 0 1
M1 x1 fb tail 0 nch W={w_in} L=1.8e-7
M2 x2 inp tail 0 nch W={w_in} L=1.8e-7
M3 x1 x1 vdd vdd pch W={w_mir} L=1.8e-7
M4 x2 x1 vdd vdd pch W={w_mir} L=1.8e-7
M5 tail nb 0 0 nch W={w_tail} L=1.8e-7
M8 nb nb 0 0 nch W={w_tail} L=1.8e-7
M6 out x2 vdd vdd pch W={w_cs} L=1.8e-7
M7 out nb 0 0 nch W={w_sink} L=1.8e-7
IB vdd nb {ibias}
CC x2 out {cc}
CL out 0 2e-12
.end
