//! Bring your own circuit: sizing a user-defined common-source amplifier.
//!
//! ```sh
//! cargo run --release --example custom_circuit
//! ```
//!
//! The framework is the paper's "SPICE decorator" (§IV-F): anything that
//! maps parameters to measurements can be searched. This example defines a
//! fresh circuit — a resistively loaded common-source stage with a source
//! degeneration resistor — as an [`Evaluator`], wires up a design space
//! and specs, and lets the trust-region agent size it.

use asdex::core::{Framework, FrameworkConfig};
use asdex::env::problem::Evaluator;
use asdex::env::{DesignSpace, EnvError, Param, PvtCorner, PvtSet, SizingProblem, Spec, SpecSet};
use asdex::spice::analysis::{ac_analysis_with_op, Engine, OpOptions, Sweep};
use asdex::spice::devices::MosGeometry;
use asdex::spice::measure::frequency_response;
use asdex::spice::process::ProcessNode;
use asdex::spice::{AcSpec, Circuit};
use std::sync::Arc;

/// A degenerated common-source amplifier on the 45 nm node.
///
/// Parameters: device width `w`, load resistor `rl`, degeneration `rs`,
/// gate bias `vg`. Measurements: gain (dB), −3 dB bandwidth, supply power.
struct CommonSource {
    node: ProcessNode,
    names: Vec<String>,
}

impl CommonSource {
    fn new() -> Self {
        CommonSource {
            node: ProcessNode::bsim45(),
            names: vec!["gain_db".into(), "bw_hz".into(), "power_w".into()],
        }
    }

    fn netlist(&self, x: &[f64], corner: &PvtCorner) -> Result<Circuit, EnvError> {
        let (w, rl, rs, vg) = (x[0], x[1], x[2], x[3]);
        let (nmos, _) = self.node.models_at(corner.process, corner.temp_celsius);
        let vdd_v = self.node.vdd * corner.vdd_scale;

        let mut c = Circuit::new();
        c.temp_celsius = corner.temp_celsius;
        c.add_mos_model("nch", nmos);
        let vdd = c.node("vdd");
        let gate = c.node("g");
        let out = c.node("out");
        let src = c.node("s");
        c.add_vsource("VDD", vdd, Circuit::GROUND, vdd_v)?;
        c.add_vsource_full("VG", gate, Circuit::GROUND, vg, Some(AcSpec::unit()), None)?;
        c.add_resistor("RL", vdd, out, rl)?;
        c.add_resistor("RS", src, Circuit::GROUND, rs)?;
        c.add_mosfet("M1", out, gate, src, Circuit::GROUND, "nch", MosGeometry::new(w, 180e-9))?;
        c.add_capacitor("CL", out, Circuit::GROUND, 0.5e-12)?;
        Ok(c)
    }
}

impl Evaluator for CommonSource {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        let circuit = self.netlist(x, corner)?;
        let engine = Engine::compile(&circuit)?;
        let op = engine.operating_point(&OpOptions::default(), None)?;
        let supply = op.branch_current(engine.branch_of("VDD").expect("VDD exists")).abs();
        let ac = ac_analysis_with_op(
            &engine,
            op,
            Sweep::Decade { fstart: 1e3, fstop: 1e10, points_per_decade: 10 },
        )?;
        let out = circuit.find_node("out").expect("out exists");
        let fr = frequency_response(&ac, out);
        Ok(vec![
            fr.dc_gain_db,
            fr.bandwidth_3db.unwrap_or(0.0),
            supply * self.node.vdd * corner.vdd_scale,
        ])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::new(vec![
        Param::geometric("w", 1e-6, 80e-6, 80)?,
        Param::geometric("rl", 1e3, 100e3, 60)?,
        Param::geometric("rs", 50.0, 5e3, 40)?,
        Param::linear("vg", 0.5, 1.2, 36)?,
    ])?;
    let specs = SpecSet::new(vec![
        Spec::at_least(0, "gain", 18.0),    // ≥ 18 dB
        Spec::at_least(1, "bw", 200e6),     // ≥ 200 MHz
        Spec::at_most(2, "power", 1e-3),    // ≤ 1 mW
    ]);
    let problem = SizingProblem::new(
        "common-source",
        space,
        Arc::new(CommonSource::new()),
        specs,
        PvtSet::nominal_only(),
    )?;

    println!("custom circuit: {} (|D| = 10^{:.1})", problem.name, problem.space.size_log10());
    let mut framework = Framework::new(FrameworkConfig::default(), 7);
    let out = framework.search(&problem)?;
    println!("success: {} after {} simulations", out.success, out.simulations);
    for (name, v) in problem.space.names().iter().zip(&out.best_physical) {
        println!("  {name:>4} = {v:.4e}");
    }
    if let Some(m) = problem.evaluate_all_corners(&out.best_point)[0].measurements.as_ref() {
        println!("gain {:.1} dB, bw {:.0} MHz, power {:.0} µW", m[0], m[1] / 1e6, m[2] * 1e6);
    }
    Ok(())
}
