//! AIP reuse across process nodes (paper §V-C, Table II).
//!
//! ```sh
//! cargo run --release --example process_porting
//! ```
//!
//! Sizes the opamp on the 45 nm node, then ports the result to 22 nm three
//! ways: from scratch, reusing weights + starting point, and reusing only
//! the starting point. The paper's finding — optimal points transfer,
//! network weights do not — shows up in the step counts.

use asdex::core::{LocalExplorer, PortingStrategy, WarmStart};
use asdex::env::circuits::opamp::TwoStageOpamp;
use asdex::env::SearchBudget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = TwoStageOpamp::bsim45().problem()?;
    let target = TwoStageOpamp::bsim22().problem()?;
    let explorer = LocalExplorer::default();
    let budget = SearchBudget::new(10_000);

    println!("sizing on 45 nm…");
    let (out45, artifacts) = explorer.run(&source, 0, budget, 1, &WarmStart::default());
    println!("  45 nm solved in {} simulations", out45.simulations);

    println!("\nporting to 22 nm:");
    for strategy in PortingStrategy::ALL {
        let mut sims = Vec::new();
        for seed in 0..5 {
            let warm = strategy.warm_start(&artifacts);
            let (out, _) = explorer.run(&target, 0, budget, seed, &warm);
            sims.push(out.simulations);
        }
        let avg = sims.iter().sum::<usize>() as f64 / sims.len() as f64;
        println!("  {:<44} avg {avg:.1} steps {sims:?}", strategy.label());
    }
    Ok(())
}
