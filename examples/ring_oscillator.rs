//! Transient simulation of a five-stage CMOS ring oscillator on the MNA
//! engine — the code path behind the ICO benchmark's behavioral model.
//!
//! ```sh
//! cargo run --release --example ring_oscillator
//! ```
//!
//! The ICO experiments (Table V) use a calibrated behavioral model for
//! speed; this example shows the underlying simulator can also run the
//! real circuit: a ring of CMOS inverters, kicked by an initial-condition
//! asymmetry, oscillating in transient analysis.

use asdex::spice::analysis::{transient, TranOptions};
use asdex::spice::devices::MosGeometry;
use asdex::spice::process::{ProcessCorner, ProcessNode};
use asdex::spice::{Circuit, Waveform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = ProcessNode::bsim45();
    let (nmos, pmos) = node.models_at(ProcessCorner::Tt, 27.0);
    let stages = 5;
    let l = 4.0 * node.lmin;

    let mut ckt = Circuit::new();
    ckt.add_mos_model("nch", nmos);
    ckt.add_mos_model("pch", pmos);
    let vdd = ckt.node("vdd");
    // Ramp the supply so the ring starts from an asymmetric state.
    let ramp = Waveform::Pwl(vec![(0.0, 0.0), (0.3e-9, node.vdd)]);
    ckt.add_vsource_full("VDD", vdd, Circuit::GROUND, node.vdd, None, Some(ramp))?;

    let nodes: Vec<_> = (0..stages).map(|k| ckt.node(&format!("n{k}"))).collect();
    for k in 0..stages {
        let inp = nodes[k];
        let out = nodes[(k + 1) % stages];
        ckt.add_mosfet(
            &format!("MP{k}"),
            out,
            inp,
            vdd,
            vdd,
            "pch",
            MosGeometry::new(4e-6, l),
        )?;
        ckt.add_mosfet(
            &format!("MN{k}"),
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            "nch",
            MosGeometry::new(2e-6, l),
        )?;
        ckt.add_capacitor(&format!("C{k}"), out, Circuit::GROUND, 150e-15)?;
    }

    let mut opts = TranOptions::new(25e-12, 60e-9);
    opts.uic = true; // start from zero and let the supply ramp kick it
    let tr = transient(&ckt, &opts)?;

    // Count rising crossings of VDD/2 on one node to estimate frequency.
    let wave = tr.node_waveform(nodes[0]);
    let times = tr.times();
    let threshold = node.vdd / 2.0;
    let mut crossings = Vec::new();
    for k in 1..wave.len() {
        if wave[k - 1] < threshold && wave[k] >= threshold && times[k] > 5e-9 {
            crossings.push(times[k]);
        }
    }
    println!("simulated {} time points", tr.len());
    if crossings.len() >= 2 {
        let period = (crossings.last().expect("has crossings") - crossings[0])
            / (crossings.len() - 1) as f64;
        println!(
            "ring oscillates: {} rising edges, f ≈ {:.2} MHz",
            crossings.len(),
            1e-6 / period
        );
    } else {
        println!("ring did not oscillate — check the kick-start conditions");
    }

    // A compact ASCII scope trace of the first node.
    let cols = 60usize;
    println!("\nv(n0) trace (each column ≈ {:.1} ns):", 60.0 / cols as f64);
    for level in (0..6).rev() {
        let lo = node.vdd * level as f64 / 6.0;
        let hi = node.vdd * (level + 1) as f64 / 6.0;
        let row: String = (0..cols)
            .map(|c| {
                let k = c * (wave.len() - 1) / (cols - 1);
                if wave[k] >= lo && wave[k] < hi {
                    '*'
                } else {
                    ' '
                }
            })
            .collect();
        println!("{lo:>5.2}V |{row}");
    }
    Ok(())
}
