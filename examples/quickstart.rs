//! Quickstart: size the 45 nm two-stage opamp with the trust-region agent.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's headline workflow (§IV-F): describe the sizing
//! problem — parameters, ranges, measurements, specs — and let the
//! framework search. On the synthetic 45 nm node the agent typically needs
//! a few tens of SPICE evaluations (paper: 36 on average).

use asdex::core::{Framework, FrameworkConfig};
use asdex::env::circuits::opamp::{meas, TwoStageOpamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opamp = TwoStageOpamp::bsim45();
    let problem = opamp.problem()?;
    println!("problem: {} ({} parameters, |D| ≈ 10^{:.1})", problem.name, problem.dim(), problem.space.size_log10());
    println!("specs:");
    for s in problem.specs.specs() {
        println!("  {}", s.name);
    }

    let mut framework = Framework::new(FrameworkConfig::default(), 2026);
    let outcome = framework.search(&problem)?;

    println!("\nsuccess: {} after {} SPICE evaluations", outcome.success, outcome.simulations);
    if let Some(m) = problem.evaluate_all_corners(&outcome.best_point).first().and_then(|e| e.measurements.clone()) {
        println!("gain  = {:.1} dB", m[meas::GAIN_DB]);
        println!("ugf   = {:.1} MHz", m[meas::UGF_HZ] / 1e6);
        println!("pm    = {:.1}°", m[meas::PM_DEG]);
        println!("power = {:.1} µW", m[meas::POWER_W] * 1e6);
        println!("area  = {:.1} µm²", m[meas::AREA_M2] * 1e12);
    }
    println!("\nsized parameters:");
    for (name, value) in problem.space.names().iter().zip(&outcome.best_physical) {
        println!("  {name:>8} = {value:.3e}");
    }
    Ok(())
}
