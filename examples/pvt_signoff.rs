//! PVT sign-off with progressive corner exploration (paper §IV-E).
//!
//! ```sh
//! cargo run --release --example pvt_signoff
//! ```
//!
//! Sizes the 22 nm opamp across a five-corner sign-off set using the
//! progressive-hardest strategy, then prints where the EDA budget went —
//! the point of Fig. 3: idle corners cost almost nothing until
//! verification time.

use asdex::core::{PvtExplorer, PvtStrategy};
use asdex::env::circuits::opamp::TwoStageOpamp;
use asdex::env::{PvtSet, SearchBudget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opamp = TwoStageOpamp::bsim22();
    let corners = PvtSet::signoff5();
    let problem = opamp.problem_with(opamp.specs(), corners.clone())?;
    println!("sign-off corners:");
    for (i, c) in corners.corners().iter().enumerate() {
        println!("  [{i}] {c}");
    }

    let agent = PvtExplorer::new(PvtStrategy::ProgressiveHardest);
    let outcome = agent.run(&problem, SearchBudget::new(10_000), 7);

    println!("\nsuccess: {} after {} simulations", outcome.success, outcome.simulations);
    println!("corner activation order: {:?}", outcome.activation_order);
    for (c, corner) in corners.corners().iter().enumerate() {
        let spent = outcome.ledger.iter().filter(|l| l.corner == c).count();
        let verify = outcome.ledger.iter().filter(|l| l.corner == c && l.verification).count();
        println!("  {corner}: {spent} simulations ({verify} during verification)");
    }
    println!("\nThe progressive strategy concentrates tool licenses on the active corner");
    println!("and only fans out for verification — the paper's Fig. 3 behaviour.");
    Ok(())
}
