//! Parse-and-simulate: the SPICE-deck front end.
//!
//! ```sh
//! cargo run --release --example netlist_repl            # built-in demo deck
//! cargo run --release --example netlist_repl my.cir     # your own deck
//! ```
//!
//! Reads a SPICE netlist, runs a DC operating point, and — when the deck
//! contains an AC source — a decade sweep with gain/bandwidth extraction.
//! This is the "SPICE decorator" surface of the framework: the same decks
//! a designer already has drive the simulator directly.

use asdex::spice::analysis::{ac_analysis, dc_operating_point, OpOptions, Sweep};
use asdex::spice::measure::frequency_response;
use asdex::spice::parser::parse_netlist;
use asdex::spice::ElementKind;

const DEMO_DECK: &str = "\
demo: common-source amplifier with ideal bias
VDD vdd 0 1.8
VIN in 0 DC 0.75 AC 1
RL vdd out 20k
M1 out in 0 0 nch W=5u L=0.18u
CL out 0 1p
.model nch NMOS (VT0=0.47 KP=270u LAMBDA=0.12 GAMMA=0.35 PHI=0.8)
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO_DECK.to_string(),
    };
    let circuit = parse_netlist(&source)?;
    println!("parsed {} elements, {} nodes", circuit.elements().len(), circuit.node_count());

    let opts = OpOptions::default();
    let op = dc_operating_point(&circuit, &opts)?;
    println!("\nDC operating point ({} Newton iterations):", op.iterations);
    for node in circuit.node_ids() {
        println!("  v({}) = {:.6} V", circuit.node_name(node), op.voltage(node));
    }

    let has_ac = circuit.elements().iter().any(|e| {
        matches!(
            &e.kind,
            ElementKind::Vsource { ac: Some(_), .. } | ElementKind::Isource { ac: Some(_), .. }
        )
    });
    if has_ac {
        let sweep = Sweep::Decade { fstart: 10.0, fstop: 10e9, points_per_decade: 10 };
        let ac = ac_analysis(&circuit, sweep, &opts)?;
        let out = circuit
            .find_node("out")
            .or_else(|| circuit.node_ids().last().copied())
            .expect("circuit has nodes");
        let fr = frequency_response(&ac, out);
        println!("\nAC response at v({}):", circuit.node_name(out));
        println!("  dc gain   = {:.2} dB", fr.dc_gain_db);
        if let Some(bw) = fr.bandwidth_3db {
            println!("  bandwidth = {:.3e} Hz", bw);
        }
        if let (Some(ugf), Some(pm)) = (fr.unity_gain_freq, fr.phase_margin_deg) {
            println!("  ugf       = {:.3e} Hz", ugf);
            println!("  pm        = {:.1}°", pm);
        }
    }
    Ok(())
}
