//! The supervision tree over sandboxed evaluation workers.
//!
//! A [`WorkerPool`] owns N `asdex worker` child processes (spawned from
//! [`crate::worker`]'s protocol) and implements
//! [`asdex_env::EvalDispatcher`], so a `SizingProblem` routes every
//! retry-ladder attempt through a worker process instead of the daemon's
//! own address space. The supervision policy:
//!
//! * **Crash detection.** A reader thread per worker turns pipe EOF into
//!   an immediate death signal; no polling of `wait(2)` on the hot path.
//! * **Restart with backoff.** A dead worker's slot goes `Down` and is
//!   respawned after an exponentially growing delay
//!   (`base_backoff … max_backoff`), up to `restart_budget` restarts,
//!   after which the slot is `Retired`. With every slot retired the pool
//!   falls back to in-process evaluation — degraded isolation, never a
//!   degraded answer.
//! * **Re-dispatch.** An attempt in flight on a worker that dies is
//!   re-sent to another worker, up to `redispatch_budget` times. Attempts
//!   are pure functions of `(x, corner, attempt)`, so a re-run is
//!   bitwise-identical — an externally SIGKILLed worker is invisible in
//!   the campaign outcome.
//! * **Quarantine.** An attempt that kills workers past its re-dispatch
//!   budget is deterministically lethal; the pool memoizes it as
//!   [`FailureKind::WorkerPanic`] — exactly what the in-process path
//!   reports for a caught panic — and never sends it to a worker again.
//! * **Deadlines.** Each attempt carries a wall deadline derived from
//!   [`asdex_spice::analysis::SolveBudget::wall_allowance`] (escalating with the
//!   retry rung, like the in-process solve watchdog). A worker that
//!   overruns it is killed and the attempt reports
//!   [`FailureKind::Timeout`] — the same type an in-process hang
//!   produces — with **no** re-dispatch, because a deterministic hang
//!   would hang again.
//! * **Heartbeats.** A monitor thread pings idle workers and proactively
//!   respawns `Down` slots, so a crashed-while-idle worker is replaced
//!   before the next attempt needs it.
//!
//! Worker death is a **typed evaluation failure**, never a daemon
//! outage: the supervisor absorbs aborts, kills, hangs, and handshake
//! failures into the existing [`FailureKind`] taxonomy that the retry
//! ladder, journal, and metrics already understand.

use crate::metrics::WorkerStats;
use crate::worker::{
    read_frame, write_frame, AttemptReply, AttemptRequest, Handshake, PROTOCOL_VERSION,
};
use asdex_env::{run_attempt, EvalDispatcher, Evaluator, FailureKind, FaultMode, PvtSet};
use asdex_spice::analysis::SolveBudget;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Extra wall time granted on top of an attempt's solve deadline before
/// the supervisor declares the worker hung: covers frame I/O and
/// scheduling noise so healthy-but-slow attempts are not killed.
const DEADLINE_GRACE: Duration = Duration::from_millis(250);

/// How long an idle worker may take to answer a heartbeat ping.
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(2);

/// Supervision policy for one [`WorkerPool`].
#[derive(Debug, Clone)]
pub struct WorkerPoolConfig {
    /// Binary to spawn (normally `std::env::current_exe()`); invoked as
    /// `<program> worker --bench … --corners …`.
    pub program: PathBuf,
    /// Benchmark name, forwarded to the worker and validated against its
    /// handshake.
    pub bench: String,
    /// Corner-set name, forwarded and validated likewise.
    pub corners: String,
    /// Linear-solver backend label (`auto`, `dense`, `sparse`), forwarded
    /// as `--solver` so child workers factor with the same backend the
    /// in-process fallback evaluator would.
    pub solver: String,
    /// Expected netlist source digest for `netlist:<path>` benches,
    /// forwarded as `--netlist-digest` and validated against the worker's
    /// handshake — configuration skew on the deck is a typed spawn
    /// failure, never silent divergence.
    pub netlist_digest: Option<u64>,
    /// Worker processes in the pool.
    pub workers: usize,
    /// Restarts granted per slot before it is retired.
    pub restart_budget: u64,
    /// Times one attempt may be re-sent after killing a worker before it
    /// is quarantined as deterministically lethal.
    pub redispatch_budget: usize,
    /// First restart delay; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Ceiling on the restart delay.
    pub max_backoff: Duration,
    /// Base wall deadline for an attempt at rung 0; escalates with the
    /// rung via [`SolveBudget::wall_allowance`].
    pub attempt_deadline: Duration,
    /// How long a fresh worker may take to produce its handshake.
    pub spawn_timeout: Duration,
    /// Monitor-thread cadence for heartbeats and proactive restarts.
    pub heartbeat_interval: Duration,
    /// Deterministic fault plan forwarded to every worker
    /// (`rate, seed, mode`); workers arm process-level modes, so injected
    /// aborts/hangs/kills land on the sacrificial child.
    pub fault: Option<(f64, u64, Option<FaultMode>)>,
}

impl WorkerPoolConfig {
    /// A policy with production defaults for the given pool shape.
    pub fn new(program: PathBuf, bench: &str, corners: &str, workers: usize) -> Self {
        WorkerPoolConfig {
            program,
            bench: bench.to_string(),
            corners: corners.to_string(),
            solver: "auto".to_string(),
            netlist_digest: None,
            workers: workers.max(1),
            restart_budget: 16,
            redispatch_budget: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            attempt_deadline: Duration::from_secs(30),
            spawn_timeout: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(500),
            fault: None,
        }
    }
}

/// A live worker process: the child handle, its request pipe, and the
/// reply stream fed by a dedicated reader thread (which turns pipe EOF
/// into a recv error, giving the supervisor crash detection and reply
/// deadlines from one `recv_timeout`).
struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    frames: mpsc::Receiver<std::io::Result<String>>,
}

enum SlotState {
    /// Live worker waiting for an attempt.
    Idle(WorkerProc),
    /// Checked out by a dispatcher or the monitor.
    Busy,
    /// Dead; eligible for respawn once `retry_at` passes.
    Down { retry_at: Instant },
    /// Restart budget exhausted; never respawned.
    Retired,
}

struct Slot {
    state: SlotState,
    /// Restart attempts consumed (spawn successes and failures alike).
    restarts: u64,
    /// Next backoff delay; doubles per failure, resets on a completed
    /// attempt.
    backoff: Duration,
}

/// Attempt identity: the point's IEEE-754 bits, corner index, and retry
/// rung — the key attempts are pure in.
type AttemptKey = (Vec<u64>, usize, usize);

struct Shared {
    cfg: WorkerPoolConfig,
    slots: Mutex<Vec<Slot>>,
    available: Condvar,
    /// Deterministically lethal attempts, keyed by the exact request
    /// identity `(x bits, corner, rung)`. Memoizing the typed failure is
    /// sound because attempts are pure in that key.
    quarantine: Mutex<HashMap<AttemptKey, FailureKind>>,
    shutting_down: AtomicBool,
    stats: Arc<WorkerStats>,
    /// In-process evaluator used verbatim when every slot is retired.
    fallback: Arc<dyn Evaluator>,
    corners: PvtSet,
}

/// A supervised pool of evaluation worker processes; see the module docs
/// for the policy. Implements [`EvalDispatcher`], so attach it with
/// [`asdex_env::SizingProblem::with_dispatcher`].
pub struct WorkerPool {
    shared: Arc<Shared>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// Builds the pool, eagerly spawning its workers, and starts the
    /// monitor thread. Spawn failures are not fatal: the slot goes into
    /// backoff like any other death, and a pool that never gets a worker
    /// up serves every attempt through the in-process fallback.
    pub fn new(
        cfg: WorkerPoolConfig,
        fallback: Arc<dyn Evaluator>,
        corners: PvtSet,
        stats: Arc<WorkerStats>,
    ) -> Arc<WorkerPool> {
        let mut slots = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let state = match spawn_worker(&cfg) {
                Ok(proc) => {
                    WorkerStats::bump(&stats.spawns);
                    stats.alive.fetch_add(1, Ordering::Relaxed);
                    SlotState::Idle(proc)
                }
                Err(_) => SlotState::Down { retry_at: Instant::now() + cfg.base_backoff },
            };
            slots.push(Slot { state, restarts: 0, backoff: cfg.base_backoff });
        }
        let shared = Arc::new(Shared {
            cfg,
            slots: Mutex::new(slots),
            available: Condvar::new(),
            quarantine: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            stats,
            fallback,
            corners,
        });
        let monitor = {
            let shared = shared.clone();
            std::thread::spawn(move || shared.monitor_loop())
        };
        Arc::new(WorkerPool { shared, monitor: Mutex::new(Some(monitor)) })
    }

    /// Convenience constructor pulling the fallback evaluator and corner
    /// set from the problem the pool will serve.
    pub fn for_problem(
        cfg: WorkerPoolConfig,
        problem: &asdex_env::SizingProblem,
        stats: Arc<WorkerStats>,
    ) -> Arc<WorkerPool> {
        WorkerPool::new(cfg, problem.evaluator.clone(), problem.corners.clone(), stats)
    }

    /// Workers currently alive (the `asdex_workers_alive` gauge).
    pub fn alive(&self) -> u64 {
        self.shared.stats.alive.load(Ordering::Relaxed)
    }

    /// Operating-system process ids of the live workers — the chaos
    /// harness's kill list.
    pub fn worker_pids(&self) -> Vec<u32> {
        let slots = self.shared.slots.lock().unwrap();
        slots
            .iter()
            .filter_map(|s| match &s.state {
                SlotState::Idle(proc) => Some(proc.child.id()),
                _ => None,
            })
            .collect()
    }

    /// Drains the pool: stops the monitor, asks idle workers to exit,
    /// and kills stragglers. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.available.notify_all();
        if let Some(handle) = self.monitor.lock().unwrap().take() {
            let _ = handle.join();
        }
        let mut procs = Vec::new();
        {
            let mut slots = self.shared.slots.lock().unwrap();
            for slot in slots.iter_mut() {
                if let SlotState::Idle(mut proc) =
                    std::mem::replace(&mut slot.state, SlotState::Retired)
                {
                    // Polite first: Q lets the worker exit its loop.
                    let _ = write_frame(&mut proc.stdin, "Q");
                    procs.push(proc);
                }
            }
        }
        for mut proc in procs {
            let deadline = Instant::now() + Duration::from_millis(500);
            while proc.child.try_wait().ok().flatten().is_none() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
            let _ = proc.child.kill();
            let _ = proc.child.wait();
            self.shared.stats.alive.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl EvalDispatcher for WorkerPool {
    fn dispatch(
        &self,
        x_phys: &[f64],
        corner_idx: usize,
        attempt: usize,
    ) -> Result<Vec<f64>, FailureKind> {
        self.shared.dispatch(x_phys, corner_idx, attempt)
    }

    fn parallelism(&self) -> usize {
        self.shared.cfg.workers
    }
}

impl Shared {
    fn dispatch(
        &self,
        x_phys: &[f64],
        corner_idx: usize,
        attempt: usize,
    ) -> Result<Vec<f64>, FailureKind> {
        let key: AttemptKey =
            (x_phys.iter().map(|v| v.to_bits()).collect(), corner_idx, attempt);
        if let Some(kind) = self.quarantine.lock().unwrap().get(&key) {
            return Err(*kind);
        }
        let deadline = SolveBudget { max_wall: Some(self.cfg.attempt_deadline), ..SolveBudget::default() }
            .wall_allowance(attempt)
            .unwrap_or(self.cfg.attempt_deadline);
        let request = AttemptRequest {
            attempt,
            corner_idx,
            deadline_ms: deadline.as_millis().min(u128::from(u64::MAX)) as u64,
            x_phys: x_phys.to_vec(),
        }
        .to_frame();
        let mut deaths = 0usize;
        loop {
            let Some((idx, mut proc)) = self.checkout() else {
                // Every slot retired (or the pool is draining): degraded
                // isolation, same answer — run the attempt in-process.
                return self.run_in_process(x_phys, corner_idx, attempt);
            };
            if write_frame(&mut proc.stdin, &request).is_err() {
                // Worker died while idle; the attempt never reached it,
                // so this does not count against the re-dispatch budget.
                self.bury(idx, proc);
                continue;
            }
            match proc.frames.recv_timeout(deadline + DEADLINE_GRACE) {
                Ok(Ok(frame)) => {
                    if let Some(reply) = AttemptReply::parse(&frame) {
                        self.stats
                            .attempt_latency
                            .observe(Duration::from_micros(reply.elapsed_us));
                        self.checkin(idx, proc);
                        return reply.result;
                    }
                    // A live worker emitting garbage is as trustworthy as
                    // a dead one.
                    self.bury(idx, proc);
                    deaths += 1;
                }
                Ok(Err(_)) | Err(RecvTimeoutError::Disconnected) => {
                    self.bury(idx, proc);
                    deaths += 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Deadline overrun: kill the worker, type the attempt
                    // as the in-process watchdog would. No re-dispatch —
                    // a deterministic hang would hang again.
                    WorkerStats::bump(&self.stats.deadline_kills);
                    self.bury(idx, proc);
                    return Err(FailureKind::Timeout);
                }
            }
            if deaths > self.cfg.redispatch_budget {
                // Deterministically lethal: memoize the same typed
                // failure the in-process path reports for a caught panic.
                WorkerStats::bump(&self.stats.quarantined);
                self.quarantine.lock().unwrap().insert(key, FailureKind::WorkerPanic);
                return Err(FailureKind::WorkerPanic);
            }
            WorkerStats::bump(&self.stats.redispatches);
        }
    }

    /// The in-process escape hatch: bitwise-identical to worker execution
    /// because both sides run [`asdex_env::run_attempt`] on the same
    /// evaluator configuration.
    fn run_in_process(
        &self,
        x_phys: &[f64],
        corner_idx: usize,
        attempt: usize,
    ) -> Result<Vec<f64>, FailureKind> {
        match self.corners.corners().get(corner_idx) {
            Some(corner) => run_attempt(self.fallback.as_ref(), x_phys, corner, attempt),
            None => Err(FailureKind::InvalidInput),
        }
    }

    /// Claims a live worker: an idle one if available, else a respawn of
    /// an eligible `Down` slot, else waits. Returns `None` when every
    /// slot is retired or the pool is draining.
    fn checkout(&self) -> Option<(usize, WorkerProc)> {
        let mut slots = self.slots.lock().unwrap();
        loop {
            if self.shutting_down.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(i) = slots.iter().position(|s| matches!(s.state, SlotState::Idle(_))) {
                let SlotState::Idle(proc) = std::mem::replace(&mut slots[i].state, SlotState::Busy)
                else {
                    unreachable!("position() just matched Idle");
                };
                return Some((i, proc));
            }
            let now = Instant::now();
            let eligible = slots.iter().position(
                |s| matches!(&s.state, SlotState::Down { retry_at } if *retry_at <= now),
            );
            if let Some(i) = eligible {
                let waited = slots[i].backoff;
                slots[i].state = SlotState::Busy; // reserve while spawning unlocked
                drop(slots);
                if let Some(proc) = self.try_restart(i, waited) {
                    return Some((i, proc));
                }
                slots = self.slots.lock().unwrap();
                continue;
            }
            if slots.iter().all(|s| matches!(s.state, SlotState::Retired)) {
                return None;
            }
            // Busy workers or backoffs pending: wait for a checkin or a
            // retry_at to pass.
            let (guard, _) = self
                .available
                .wait_timeout(slots, Duration::from_millis(50))
                .unwrap();
            slots = guard;
        }
    }

    /// Respawns the (reserved-`Busy`) slot `i`. On failure the slot goes
    /// back to `Down` with a doubled backoff, or `Retired` once the
    /// restart budget is spent.
    fn try_restart(&self, i: usize, waited: Duration) -> Option<WorkerProc> {
        match spawn_worker(&self.cfg) {
            Ok(proc) => {
                WorkerStats::bump(&self.stats.spawns);
                WorkerStats::bump(&self.stats.restarts);
                self.stats.restart_delay.observe(waited);
                self.stats.alive.fetch_add(1, Ordering::Relaxed);
                let mut slots = self.slots.lock().unwrap();
                slots[i].restarts += 1;
                Some(proc)
            }
            Err(_) => {
                let mut slots = self.slots.lock().unwrap();
                let slot = &mut slots[i];
                slot.restarts += 1;
                if slot.restarts >= self.cfg.restart_budget {
                    WorkerStats::bump(&self.stats.retired);
                    slot.state = SlotState::Retired;
                } else {
                    slot.state = SlotState::Down { retry_at: Instant::now() + slot.backoff };
                    slot.backoff = (slot.backoff * 2).min(self.cfg.max_backoff);
                }
                self.available.notify_all();
                None
            }
        }
    }

    /// Returns a healthy worker to its slot and resets its failure
    /// streak.
    fn checkin(&self, i: usize, mut proc: WorkerProc) {
        let mut slots = self.slots.lock().unwrap();
        if self.shutting_down.load(Ordering::SeqCst) {
            let _ = proc.child.kill();
            let _ = proc.child.wait();
            self.stats.alive.fetch_sub(1, Ordering::Relaxed);
            slots[i].state = SlotState::Retired;
            return;
        }
        slots[i].backoff = self.cfg.base_backoff;
        slots[i].state = SlotState::Idle(proc);
        drop(slots);
        self.available.notify_all();
    }

    /// Records a worker death: reaps the child and moves the slot to
    /// `Down` (backoff doubled) or `Retired` (budget spent).
    fn bury(&self, i: usize, mut proc: WorkerProc) {
        let _ = proc.child.kill();
        let _ = proc.child.wait();
        WorkerStats::bump(&self.stats.deaths);
        self.stats.alive.fetch_sub(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().unwrap();
        let slot = &mut slots[i];
        if slot.restarts >= self.cfg.restart_budget {
            WorkerStats::bump(&self.stats.retired);
            slot.state = SlotState::Retired;
        } else {
            slot.state = SlotState::Down { retry_at: Instant::now() + slot.backoff };
            slot.backoff = (slot.backoff * 2).min(self.cfg.max_backoff);
        }
        drop(slots);
        self.available.notify_all();
    }

    /// Heartbeats idle workers and proactively respawns eligible `Down`
    /// slots until shutdown.
    fn monitor_loop(&self) {
        let mut last_heartbeat = Instant::now();
        while !self.shutting_down.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
            // Proactive restarts keep the pool warm between attempts.
            loop {
                if self.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                let reserved = {
                    let mut slots = self.slots.lock().unwrap();
                    let now = Instant::now();
                    let i = slots.iter().position(
                        |s| matches!(&s.state, SlotState::Down { retry_at } if *retry_at <= now),
                    );
                    match i {
                        Some(i) => {
                            let waited = slots[i].backoff;
                            slots[i].state = SlotState::Busy;
                            Some((i, waited))
                        }
                        None => None,
                    }
                };
                let Some((i, waited)) = reserved else { break };
                match self.try_restart(i, waited) {
                    Some(proc) => self.checkin(i, proc),
                    None => break, // backoff doubled; try next tick
                }
            }
            if last_heartbeat.elapsed() < self.cfg.heartbeat_interval {
                continue;
            }
            last_heartbeat = Instant::now();
            for i in 0..self.cfg.workers {
                if self.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                let proc = {
                    let mut slots = self.slots.lock().unwrap();
                    match slots.get_mut(i) {
                        Some(slot) if matches!(slot.state, SlotState::Idle(_)) => {
                            let SlotState::Idle(proc) =
                                std::mem::replace(&mut slot.state, SlotState::Busy)
                            else {
                                unreachable!("matches! just saw Idle");
                            };
                            proc
                        }
                        _ => continue,
                    }
                };
                let mut proc = proc;
                let healthy = write_frame(&mut proc.stdin, "P").is_ok()
                    && matches!(
                        proc.frames.recv_timeout(HEARTBEAT_TIMEOUT),
                        Ok(Ok(ref pong)) if pong == "O"
                    );
                if healthy {
                    self.checkin(i, proc);
                } else {
                    self.bury(i, proc);
                }
            }
        }
    }
}

/// Spawns one worker process and validates its handshake (protocol
/// version, benchmark, corner set). Any mismatch kills the child and
/// reports a spawn failure, so configuration skew cannot dispatch.
fn spawn_worker(cfg: &WorkerPoolConfig) -> std::io::Result<WorkerProc> {
    let mut cmd = Command::new(&cfg.program);
    cmd.arg("worker")
        .arg("--bench")
        .arg(&cfg.bench)
        .arg("--corners")
        .arg(&cfg.corners)
        .arg("--solver")
        .arg(&cfg.solver)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(digest) = cfg.netlist_digest {
        cmd.arg("--netlist-digest").arg(format!("{digest:016x}"));
    }
    if let Some((rate, seed, mode)) = &cfg.fault {
        cmd.arg("--fault-rate").arg(rate.to_string());
        cmd.arg("--fault-seed").arg(seed.to_string());
        if let Some(mode) = mode {
            cmd.arg("--fault-mode").arg(mode.label());
        }
    }
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take().expect("stdin was piped");
    let mut stdout = child.stdout.take().expect("stdout was piped");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || loop {
        match read_frame(&mut stdout) {
            Ok(frame) => {
                if tx.send(Ok(frame)).is_err() {
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    });
    let bad_handshake = |child: &mut Child, why: String| {
        let _ = child.kill();
        let _ = child.wait();
        std::io::Error::new(std::io::ErrorKind::InvalidData, why)
    };
    match rx.recv_timeout(cfg.spawn_timeout) {
        Ok(Ok(frame)) => match Handshake::parse(&frame) {
            Some(h)
                if h.proto == PROTOCOL_VERSION
                    && h.bench == cfg.bench
                    && h.corners == cfg.corners
                    && h.netlist_digest == cfg.netlist_digest =>
            {
                Ok(WorkerProc { child, stdin, frames: rx })
            }
            Some(h) => Err(bad_handshake(
                &mut child,
                format!(
                    "handshake mismatch: worker says proto={} bench={} corners={} digest={:?}",
                    h.proto, h.bench, h.corners, h.netlist_digest
                ),
            )),
            None => Err(bad_handshake(&mut child, format!("unparseable handshake {frame:?}"))),
        },
        Ok(Err(e)) => Err(bad_handshake(&mut child, format!("handshake read: {e}"))),
        Err(_) => Err(bad_handshake(&mut child, "handshake timeout".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead_pool(workers: usize, restart_budget: u64) -> Arc<WorkerPool> {
        // A program that cannot possibly exist: every spawn fails, so the
        // supervision path (backoff, retire, fallback) runs without any
        // real child processes.
        let mut cfg = WorkerPoolConfig::new(
            PathBuf::from("/nonexistent/asdex-worker-binary"),
            "bowl2",
            "nominal",
            workers,
        );
        cfg.restart_budget = restart_budget;
        cfg.base_backoff = Duration::from_millis(1);
        cfg.max_backoff = Duration::from_millis(4);
        cfg.heartbeat_interval = Duration::from_millis(20);
        let problem = crate::campaign::build_problem("bowl2", "nominal").unwrap();
        WorkerPool::for_problem(cfg, &problem, Arc::new(WorkerStats::new()))
    }

    #[test]
    fn unspawnable_pool_falls_back_to_in_process_results() {
        let problem = crate::campaign::build_problem("bowl2", "nominal").unwrap();
        let pool = dead_pool(2, 2);
        let x = problem.space.to_physical(&[0.25, 0.75]).unwrap();
        let via_pool = pool.dispatch(&x, 0, 0);
        let direct = run_attempt(problem.evaluator.as_ref(), &x, &problem.corners.corners()[0], 0);
        assert_eq!(via_pool, direct, "fallback must be bitwise in-process");
        assert_eq!(pool.alive(), 0);
        pool.shutdown();
    }

    #[test]
    fn out_of_range_corner_is_invalid_input() {
        let pool = dead_pool(1, 1);
        let problem = crate::campaign::build_problem("bowl2", "nominal").unwrap();
        let x = problem.space.to_physical(&[0.5, 0.5]).unwrap();
        assert_eq!(pool.dispatch(&x, 99, 0), Err(FailureKind::InvalidInput));
        pool.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let pool = dead_pool(1, 1);
        pool.shutdown();
        pool.shutdown();
        drop(pool); // runs shutdown() again via Drop
    }
}
