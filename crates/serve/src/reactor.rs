//! The std-only nonblocking connection reactor.
//!
//! One thread owns every connection: a readiness loop over a nonblocking
//! `TcpListener` and a set of nonblocking [`Conn`] state machines. There
//! is no thread-per-connection — a thousand idle sockets cost a thousand
//! small buffers, not a thousand stacks — and no `epoll`/`poll(2)`
//! either (the crate forbids `unsafe`): the loop drives every connection
//! as far as `WouldBlock` allows and sleeps ~1 ms only when the entire
//! set is quiescent. For this daemon's request mix (tiny control-plane
//! messages, campaign work running on scheduler threads) that trades a
//! negligible idle latency for a fully bounded front end:
//!
//! * **connection cap** — beyond [`ReactorConfig::max_conns`] open
//!   connections, new arrivals get a typed `503` + `Retry-After` and are
//!   closed (never parsed); beyond a small overflow allowance they are
//!   dropped outright, so the shed path itself is bounded.
//! * **phase deadlines** — header, body, and write deadlines per
//!   connection (see [`crate::conn`]) reap slow-loris writers, half-open
//!   peers, and stalled readers within `--conn-timeout`.
//! * **drain** — once the drain flag flips, accepting stops immediately;
//!   in-flight connections get [`ReactorConfig::drain_grace`] to finish
//!   before the loop returns.

use crate::conn::{Conn, ConnDeadlines, Drive};
use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::server::DrainHandle;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Reactor knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Open-connection cap; arrivals beyond it are shed with a 503.
    pub max_conns: usize,
    /// Per-phase connection deadline (header, body, and write each).
    pub conn_timeout: Duration,
    /// How long in-flight connections may finish after a drain request.
    pub drain_grace: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_conns: 256,
            conn_timeout: Duration::from_secs(10),
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Accepted connections allowed above the cap solely to carry a shed
/// response; beyond `max_conns + SHED_OVERFLOW` arrivals are dropped
/// without a response.
const SHED_OVERFLOW: usize = 64;

/// Accepts drained per loop iteration, so one accept flood cannot starve
/// established connections.
const ACCEPT_BURST: usize = 64;

/// Runs the reactor until `drain` is pulled and the grace period passes
/// (or every connection finishes). `handler` routes one parsed request
/// to a response; `retry_after` supplies the `Retry-After` hint for
/// connection-cap sheds.
pub fn run_reactor(
    listener: &TcpListener,
    cfg: &ReactorConfig,
    drain: &DrainHandle,
    metrics: &Metrics,
    mut handler: impl FnMut(&Request, std::net::SocketAddr) -> Response,
    retry_after: impl Fn() -> u64,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let deadlines = ConnDeadlines::uniform(cfg.conn_timeout);
    let mut conns: Vec<Conn> = Vec::new();
    let mut draining_since: Option<Instant> = None;
    loop {
        let now = Instant::now();
        let mut progressed = false;
        if draining_since.is_none() && drain.is_drain_requested() {
            draining_since = Some(now);
        }
        if draining_since.is_none() {
            progressed |= accept_burst(listener, cfg, metrics, &mut conns, now, deadlines, &retry_after);
        }
        for conn in &mut conns {
            match conn.poll(now) {
                Drive::Pending { progressed: p } => progressed |= p,
                Drive::Ready(request) => {
                    progressed = true;
                    let response = handler(&request, conn.peer());
                    conn.respond(&response, now);
                    // Push the response bytes out right away; most fit in
                    // the socket buffer, so the common case finishes in
                    // this same iteration.
                    if let Drive::Pending { progressed: p } = conn.poll(now) {
                        progressed |= p;
                    }
                }
                Drive::Expired => {
                    progressed = true;
                    metrics.connections_reaped.fetch_add(1, Ordering::Relaxed);
                }
                Drive::Closed => progressed = true,
            }
        }
        conns.retain(|c| !c.is_done());
        metrics.connections_open.store(conns.len() as u64, Ordering::Relaxed);
        if let Some(since) = draining_since {
            if conns.is_empty() || now >= since + cfg.drain_grace {
                metrics.connections_open.store(0, Ordering::Relaxed);
                return Ok(());
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Accepts up to [`ACCEPT_BURST`] pending connections, shedding above the
/// cap. Returns whether anything was accepted.
fn accept_burst(
    listener: &TcpListener,
    cfg: &ReactorConfig,
    metrics: &Metrics,
    conns: &mut Vec<Conn>,
    now: Instant,
    deadlines: ConnDeadlines,
    retry_after: &impl Fn() -> u64,
) -> bool {
    let mut progressed = false;
    for _ in 0..ACCEPT_BURST {
        match listener.accept() {
            Ok((stream, peer)) => {
                progressed = true;
                metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
                if conns.len() >= cfg.max_conns {
                    metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
                    metrics.shed_conn_cap.fetch_add(1, Ordering::Relaxed);
                    shed(stream, peer, now, deadlines, conns, cfg, retry_after());
                } else if let Ok(conn) = Conn::accept(stream, peer, now, deadlines) {
                    conns.push(conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient accept errors (aborted handshakes, fd pressure)
            // must never kill the daemon; back off one iteration.
            Err(_) => break,
        }
    }
    progressed
}

/// Queues the typed connection-cap 503 on `stream`, unless even the shed
/// overflow is exhausted — then the stream is simply dropped.
fn shed(
    stream: TcpStream,
    peer: std::net::SocketAddr,
    now: Instant,
    deadlines: ConnDeadlines,
    conns: &mut Vec<Conn>,
    cfg: &ReactorConfig,
    retry_after: u64,
) {
    if conns.len() >= cfg.max_conns + SHED_OVERFLOW {
        return; // drop: the shed path itself stays bounded
    }
    let body = Json::obj()
        .with("error", Json::Str("connection limit reached".to_string()))
        .dump();
    let response = Response::json(503, body).with_retry_after(retry_after);
    if let Ok(conn) = Conn::shed(stream, peer, now, deadlines, &response) {
        conns.push(conn);
    }
}
