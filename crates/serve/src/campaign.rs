//! Campaign construction and execution, shared by the daemon and the CLI.
//!
//! One campaign = one benchmark problem + one agent + one seed + one
//! budget, run to completion (or drain). The functions here are the
//! single source of truth for benchmark and agent names, so `asdex size`,
//! `POST /campaigns`, and journal resume all accept exactly the same
//! vocabulary.

use crate::protocol::CampaignSpec;
use asdex_baselines::{CustomizedBo, RandomSearch};
use asdex_core::{Framework, FrameworkConfig, ProgressEvent, ProgressHandle, ProgressPhase, PvtStrategy};
use asdex_env::circuits::ico::Ico;
use asdex_env::circuits::ldo::Ldo;
use asdex_env::circuits::opamp::TwoStageOpamp;
use asdex_env::circuits::synthetic::Bowl;
use asdex_env::{EvalStats, HealthStats, PvtSet, SearchBudget, Searcher, SizingProblem};

/// What a finished campaign reports, agent-agnostic. The serving layer's
/// canonical result record — serialized by
/// [`crate::protocol::outcome_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// `true` when a fully feasible point was found within budget.
    pub success: bool,
    /// Simulator invocations spent.
    pub simulations: usize,
    /// Best point found (normalized coordinates).
    pub best_point: Vec<f64>,
    /// Best point in physical parameter values.
    pub best_physical: Vec<f64>,
    /// Value of the best point (0 ⇔ feasible).
    pub best_value: f64,
    /// Evaluation telemetry.
    pub stats: EvalStats,
    /// Self-healing telemetry.
    pub health: HealthStats,
}

/// Builds a benchmark problem by name. Accepts the hardware benchmarks
/// (`opamp45`, `opamp22`, `ldo`, `ico`) plus the synthetic `bowl<dim>`
/// family (e.g. `bowl3`) whose nanosecond evaluations make service tests
/// and load generation cheap.
pub fn build_problem(bench: &str, corners: &str) -> Result<SizingProblem, String> {
    let corner_set = match corners {
        "nominal" => PvtSet::nominal_only(),
        "signoff5" => PvtSet::signoff5(),
        other => return Err(format!("unknown corner set {other:?} (nominal|signoff5)")),
    };
    if let Some(dim) = bench.strip_prefix("bowl").and_then(|d| d.parse::<usize>().ok()) {
        if !(1..=16).contains(&dim) {
            return Err(format!("bowl dimension must be 1..=16, got {dim}"));
        }
        let mut problem = Bowl::problem(dim, 0.2).map_err(|e| e.to_string())?;
        problem.corners = corner_set;
        return Ok(problem);
    }
    let problem = match bench {
        "opamp45" => {
            let amp = TwoStageOpamp::bsim45();
            amp.problem_with(amp.specs(), corner_set)
        }
        "opamp22" => {
            let amp = TwoStageOpamp::bsim22();
            amp.problem_with(amp.specs(), corner_set)
        }
        "ldo" => Ldo::n6().problem(),
        "ico" => Ico::n5().problem(),
        other => {
            return Err(format!(
                "unknown benchmark {other:?} (opamp45|opamp22|ldo|ico|bowl<dim>)"
            ))
        }
    };
    problem.map_err(|e| e.to_string())
}

/// Runs one campaign on an already-configured problem (threads, journal,
/// cancel token, and thread share are the caller's business). Progress
/// events, when a sink is supplied, are purely observational.
pub fn run_campaign(
    problem: &SizingProblem,
    spec: &CampaignSpec,
    progress: Option<ProgressHandle>,
) -> Result<CampaignOutcome, String> {
    let (success, simulations, best_point, best_value, stats, health) = match spec.agent.as_str() {
        "trm" => {
            let mut framework = Framework::new(
                FrameworkConfig {
                    budget: Some(spec.budget),
                    pvt_strategy: Some(PvtStrategy::ProgressiveHardest),
                    ..FrameworkConfig::default()
                },
                spec.seed,
            );
            if let Some(handle) = progress {
                framework = framework.with_progress(handle);
            }
            let out = framework.search(problem).map_err(|e| e.to_string())?;
            (out.success, out.simulations, out.best_point, out.best_value, out.stats, out.health)
        }
        "bo" | "random" => {
            let out = if spec.agent == "bo" {
                CustomizedBo::new().search(problem, SearchBudget::new(spec.budget), spec.seed)
            } else {
                RandomSearch::new().search(problem, SearchBudget::new(spec.budget), spec.seed)
            };
            // The baseline agents carry no progress plumbing; emit the
            // terminal event here so every campaign reports at least its
            // ending. Emission happens after the search returned — it
            // cannot perturb the outcome.
            if let Some(handle) = &progress {
                handle.emit(&ProgressEvent {
                    phase: ProgressPhase::Done,
                    simulations: out.simulations,
                    best_value: out.best_value,
                    feasible: out.success,
                    corner: None,
                });
            }
            (out.success, out.simulations, out.best_point, out.best_value, out.stats, out.health)
        }
        other => return Err(format!("unknown agent {other:?} (trm|bo|random)")),
    };
    let best_physical = problem.space.to_physical(&best_point).map_err(|e| e.to_string())?;
    // Surface journal appends that were degraded to drops. Zero on
    // healthy storage, so clean runs stay bitwise-comparable to
    // journal-less runs.
    let mut stats = stats;
    if let Some(handle) = problem.journal_handle() {
        if let Ok(journal) = handle.lock() {
            stats.journal_drops += journal.dropped();
        }
    }
    Ok(CampaignOutcome {
        success,
        simulations,
        best_point,
        best_physical,
        best_value,
        stats,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bowl_benchmarks_parse_and_run() {
        let problem = build_problem("bowl2", "nominal").unwrap();
        assert_eq!(problem.dim(), 2);
        let spec = CampaignSpec { budget: 400, ..CampaignSpec::default() };
        let outcome = run_campaign(&problem, &spec, None).unwrap();
        assert!(outcome.success, "bowl2 should be easy within 400 sims");
        assert_eq!(outcome.best_physical.len(), 2);
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        assert!(build_problem("opamp99", "nominal").is_err());
        assert!(build_problem("bowl0", "nominal").is_err());
        assert!(build_problem("bowl3", "weird").is_err());
        let problem = build_problem("bowl2", "nominal").unwrap();
        let spec =
            CampaignSpec { agent: "dqn".to_string(), budget: 10, ..CampaignSpec::default() };
        assert!(run_campaign(&problem, &spec, None).is_err());
    }

    #[test]
    fn agents_share_the_same_entry_point() {
        let problem = build_problem("bowl2", "nominal").unwrap();
        for agent in ["trm", "bo", "random"] {
            let spec = CampaignSpec {
                agent: agent.to_string(),
                budget: 150,
                ..CampaignSpec::default()
            };
            let outcome = run_campaign(&problem, &spec, None).unwrap();
            assert!(outcome.simulations <= 150 + 8, "{agent} overspent");
        }
    }
}
