//! Campaign construction and execution, shared by the daemon and the CLI.
//!
//! One campaign = one benchmark problem + one agent + one seed + one
//! budget, run to completion (or drain). The functions here are the
//! single source of truth for benchmark and agent names, so `asdex size`,
//! `POST /campaigns`, and journal resume all accept exactly the same
//! vocabulary.

use crate::protocol::CampaignSpec;
use asdex_baselines::{CustomizedBo, RandomSearch};
use asdex_core::{Framework, FrameworkConfig, ProgressEvent, ProgressHandle, ProgressPhase, PvtStrategy};
use asdex_env::circuits::ico::Ico;
use asdex_env::circuits::ldo::Ldo;
use asdex_env::circuits::opamp::TwoStageOpamp;
use asdex_env::circuits::synthetic::Bowl;
use asdex_env::{
    EvalStats, HealthStats, NetlistBench, PvtSet, SearchBudget, Searcher, SizingProblem,
};
use std::path::Path;

/// What a finished campaign reports, agent-agnostic. The serving layer's
/// canonical result record — serialized by
/// [`crate::protocol::outcome_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// `true` when a fully feasible point was found within budget.
    pub success: bool,
    /// Simulator invocations spent.
    pub simulations: usize,
    /// Best point found (normalized coordinates).
    pub best_point: Vec<f64>,
    /// Best point in physical parameter values.
    pub best_physical: Vec<f64>,
    /// Value of the best point (0 ⇔ feasible).
    pub best_value: f64,
    /// Evaluation telemetry.
    pub stats: EvalStats,
    /// Self-healing telemetry.
    pub health: HealthStats,
}

/// Builds a benchmark problem by name. Accepts the hardware benchmarks
/// (`opamp45`, `opamp22`, `ldo`, `ico`), the synthetic `bowl<dim>`
/// family (e.g. `bowl3`) whose nanosecond evaluations make service tests
/// and load generation cheap, and `netlist:<path>` — a sizing deck on
/// disk, compiled by [`asdex_env::NetlistBench`].
pub fn build_problem(bench: &str, corners: &str) -> Result<SizingProblem, String> {
    build_problem_checked(bench, corners, None)
}

/// [`build_problem`] with an expected netlist digest. For a
/// `netlist:<path>` bench the deck is re-compiled and its FNV-1a source
/// digest must match `netlist_digest` (when given) — the guard that
/// makes journal resume and worker processes refuse a deck that was
/// edited after admission. A digest on a built-in bench is a typed error.
pub fn build_problem_checked(
    bench: &str,
    corners: &str,
    netlist_digest: Option<u64>,
) -> Result<SizingProblem, String> {
    let corner_set = match corners {
        "nominal" => PvtSet::nominal_only(),
        "signoff5" => PvtSet::signoff5(),
        other => return Err(format!("unknown corner set {other:?} (nominal|signoff5)")),
    };
    if let Some(path) = bench.strip_prefix("netlist:") {
        if path.is_empty() {
            return Err("netlist bench has an empty path (use netlist:<path>)".to_string());
        }
        let deck = NetlistBench::load(Path::new(path)).map_err(|e| e.to_string())?;
        if let Some(want) = netlist_digest {
            deck.expect_digest(want).map_err(|e| e.to_string())?;
        }
        return deck.problem_with(corner_set).map_err(|e| e.to_string());
    }
    if let Some(digest) = netlist_digest {
        return Err(format!(
            "netlist digest {digest:016x} given for built-in benchmark {bench:?}"
        ));
    }
    if let Some(dim) = bench.strip_prefix("bowl").and_then(|d| d.parse::<usize>().ok()) {
        if !(1..=16).contains(&dim) {
            return Err(format!("bowl dimension must be 1..=16, got {dim}"));
        }
        let mut problem = Bowl::problem(dim, 0.2).map_err(|e| e.to_string())?;
        problem.corners = corner_set;
        return Ok(problem);
    }
    let problem = match bench {
        "opamp45" => {
            let amp = TwoStageOpamp::bsim45();
            amp.problem_with(amp.specs(), corner_set)
        }
        "opamp22" => {
            let amp = TwoStageOpamp::bsim22();
            amp.problem_with(amp.specs(), corner_set)
        }
        "ldo" => Ldo::n6().problem(),
        "ico" => Ico::n5().problem(),
        other => {
            return Err(format!(
                "unknown benchmark {other:?} (opamp45|opamp22|ldo|ico|bowl<dim>|netlist:<path>)"
            ))
        }
    };
    problem.map_err(|e| e.to_string())
}

/// Runs one campaign on an already-configured problem (threads, journal,
/// cancel token, and thread share are the caller's business). Progress
/// events, when a sink is supplied, are purely observational.
pub fn run_campaign(
    problem: &SizingProblem,
    spec: &CampaignSpec,
    progress: Option<ProgressHandle>,
) -> Result<CampaignOutcome, String> {
    let (success, simulations, best_point, best_value, stats, health) = match spec.agent.as_str() {
        "trm" => {
            let mut framework = Framework::new(
                FrameworkConfig {
                    budget: Some(spec.budget),
                    pvt_strategy: Some(PvtStrategy::ProgressiveHardest),
                    ..FrameworkConfig::default()
                },
                spec.seed,
            );
            if let Some(handle) = progress {
                framework = framework.with_progress(handle);
            }
            let out = framework.search(problem).map_err(|e| e.to_string())?;
            (out.success, out.simulations, out.best_point, out.best_value, out.stats, out.health)
        }
        "bo" | "random" => {
            let out = if spec.agent == "bo" {
                CustomizedBo::new().search(problem, SearchBudget::new(spec.budget), spec.seed)
            } else {
                RandomSearch::new().search(problem, SearchBudget::new(spec.budget), spec.seed)
            };
            // The baseline agents carry no progress plumbing; emit the
            // terminal event here so every campaign reports at least its
            // ending. Emission happens after the search returned — it
            // cannot perturb the outcome.
            if let Some(handle) = &progress {
                handle.emit(&ProgressEvent {
                    phase: ProgressPhase::Done,
                    simulations: out.simulations,
                    best_value: out.best_value,
                    feasible: out.success,
                    corner: None,
                });
            }
            (out.success, out.simulations, out.best_point, out.best_value, out.stats, out.health)
        }
        other => return Err(format!("unknown agent {other:?} (trm|bo|random)")),
    };
    let best_physical = problem.space.to_physical(&best_point).map_err(|e| e.to_string())?;
    // Surface journal appends that were degraded to drops. Zero on
    // healthy storage, so clean runs stay bitwise-comparable to
    // journal-less runs.
    let mut stats = stats;
    if let Some(handle) = problem.journal_handle() {
        if let Ok(journal) = handle.lock() {
            stats.journal_drops += journal.dropped();
        }
    }
    Ok(CampaignOutcome {
        success,
        simulations,
        best_point,
        best_physical,
        best_value,
        stats,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bowl_benchmarks_parse_and_run() {
        let problem = build_problem("bowl2", "nominal").unwrap();
        assert_eq!(problem.dim(), 2);
        let spec = CampaignSpec { budget: 400, ..CampaignSpec::default() };
        let outcome = run_campaign(&problem, &spec, None).unwrap();
        assert!(outcome.success, "bowl2 should be easy within 400 sims");
        assert_eq!(outcome.best_physical.len(), 2);
    }

    #[test]
    fn netlist_benches_build_and_digest_guard_is_typed() {
        let deck = "rc demo\n.process 45\n.sizeparam rser 1e3 1e5 STEP 8\n\
                    .goal gain_db >= -20\nVDD vdd 0 {vdd}\nVIN in 0 DC 0.5 AC 1\n\
                    RS in out {rser}\nRL vdd out 1e3\nC1 out 0 1e-9\n.end\n";
        let dir = std::env::temp_dir().join(format!("asdex-camp-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rc.sp");
        std::fs::write(&path, deck).unwrap();
        let bench = format!("netlist:{}", path.display());

        let problem = build_problem(&bench, "nominal").unwrap();
        assert_eq!(problem.dim(), 1);
        let good = asdex_env::netlist_digest(deck);
        assert!(build_problem_checked(&bench, "nominal", Some(good)).is_ok());
        // Wrong digest (edited deck), digest on a built-in bench, and a
        // missing file are all typed errors.
        let err = build_problem_checked(&bench, "nominal", Some(good ^ 1)).unwrap_err();
        assert!(err.contains("digest"), "{err}");
        assert!(build_problem_checked("bowl2", "nominal", Some(good)).is_err());
        assert!(build_problem("netlist:/nonexistent/x.sp", "nominal").is_err());
        assert!(build_problem("netlist:", "nominal").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        assert!(build_problem("opamp99", "nominal").is_err());
        assert!(build_problem("bowl0", "nominal").is_err());
        assert!(build_problem("bowl3", "weird").is_err());
        let problem = build_problem("bowl2", "nominal").unwrap();
        let spec =
            CampaignSpec { agent: "dqn".to_string(), budget: 10, ..CampaignSpec::default() };
        assert!(run_campaign(&problem, &spec, None).is_err());
    }

    #[test]
    fn agents_share_the_same_entry_point() {
        let problem = build_problem("bowl2", "nominal").unwrap();
        for agent in ["trm", "bo", "random"] {
            let spec = CampaignSpec {
                agent: agent.to_string(),
                budget: 150,
                ..CampaignSpec::default()
            };
            let outcome = run_campaign(&problem, &spec, None).unwrap();
            assert!(outcome.simulations <= 150 + 8, "{agent} overspent");
        }
    }
}
