//! The wire protocol: campaign specs in, outcomes out.
//!
//! The outcome serializer is shared by the daemon and the CLI's `--json`
//! mode, and it is **bitwise-comparable**: every float is emitted both as
//! a JSON number (for humans and dashboards) and as a 16-hex-digit
//! IEEE-754 bit pattern (`*_bits` fields). Two outcomes serialize to the
//! same string if and only if they are bitwise identical — string
//! equality on the JSON is the determinism check the serving tests and
//! the repo's thread-invariance contract rely on.

use crate::json::Json;
use asdex_env::{EvalStats, FailureKind, HealthStats, JournalMeta};

/// Identity and budget of one campaign — everything that must match
/// between the run that writes a journal and the run that resumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Benchmark name (`opamp45`, `opamp22`, `ldo`, `ico`, `bowl<dim>`).
    pub bench: String,
    /// Agent name (`trm`, `bo`, `random`).
    pub agent: String,
    /// Seed for every stochastic choice.
    pub seed: u64,
    /// Simulation budget.
    pub budget: usize,
    /// Corner-set name (`nominal`, `signoff5`).
    pub corners: String,
    /// Journal fsync cadence.
    pub checkpoint_every: usize,
    /// Linear-solver backend (`auto`, `dense`, `sparse`). Part of the
    /// campaign's identity: each backend is individually deterministic,
    /// but they agree only within solver tolerance, so a resumed campaign
    /// must re-run on the backend that wrote the journal.
    pub solver: String,
    /// Inline netlist deck source (`POST /campaigns` body field
    /// `netlist`). Mutually exclusive with `bench`; the scheduler
    /// compiles it at admission, persists it content-addressed under the
    /// journal directory, and rewrites `bench` to `netlist:<path>` — so
    /// the inline source never reaches a journal or the manifest.
    pub netlist: Option<String>,
    /// FNV-1a 64 digest of the netlist source for `netlist:<path>`
    /// benches. Part of the campaign's identity: resume and worker
    /// processes re-compile the deck and refuse to run if the file no
    /// longer hashes to this value.
    pub netlist_digest: Option<u64>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            bench: "bowl3".to_string(),
            agent: "trm".to_string(),
            seed: 1,
            budget: 10_000,
            corners: "nominal".to_string(),
            checkpoint_every: 25,
            solver: "auto".to_string(),
            netlist: None,
            netlist_digest: None,
        }
    }
}

impl CampaignSpec {
    /// Parses a submission body. Unknown fields are ignored; missing
    /// fields take their defaults. Returns the spec plus the optional
    /// client-chosen campaign id.
    pub fn from_json(body: &Json) -> Result<(Option<String>, CampaignSpec), String> {
        if !matches!(body, Json::Obj(_)) {
            return Err("request body must be a JSON object".to_string());
        }
        let mut spec = CampaignSpec::default();
        let id = match body.get("id") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .filter(|s| !s.is_empty() && s.len() <= 64 && is_safe_id(s))
                    .ok_or("`id` must be a short string of [A-Za-z0-9._-]")?
                    .to_string(),
            ),
        };
        let take_str = |key: &str, into: &mut String| -> Result<(), String> {
            if let Some(v) = body.get(key) {
                *into = v.as_str().ok_or(format!("`{key}` must be a string"))?.to_string();
            }
            Ok(())
        };
        take_str("bench", &mut spec.bench)?;
        take_str("agent", &mut spec.agent)?;
        take_str("corners", &mut spec.corners)?;
        take_str("solver", &mut spec.solver)?;
        if let Some(v) = body.get("netlist") {
            if body.get("bench").is_some() {
                return Err("`netlist` and `bench` are mutually exclusive".to_string());
            }
            let source = v.as_str().ok_or("`netlist` must be a string")?;
            if source.trim().is_empty() {
                return Err("`netlist` must be a non-empty deck".to_string());
            }
            spec.netlist = Some(source.to_string());
        }
        if asdex_spice::analysis::SolverChoice::from_label(&spec.solver).is_none() {
            return Err("`solver` must be one of auto, dense, sparse".to_string());
        }
        if let Some(v) = body.get("seed") {
            spec.seed = v.as_u64().ok_or("`seed` must be a non-negative integer")?;
        }
        if let Some(v) = body.get("budget") {
            spec.budget =
                v.as_u64().filter(|b| *b > 0).ok_or("`budget` must be a positive integer")?
                    as usize;
        }
        if let Some(v) = body.get("checkpoint_every") {
            spec.checkpoint_every = v
                .as_u64()
                .filter(|c| *c > 0)
                .ok_or("`checkpoint_every` must be a positive integer")?
                as usize;
        }
        Ok((id, spec))
    }

    /// The spec as a JSON object (echoed in status responses, posted by
    /// the client). A not-yet-admitted inline deck is emitted as
    /// `netlist` *instead of* `bench` — the two are mutually exclusive on
    /// the wire. Admitted specs always have `netlist: None` (the
    /// scheduler consumed the source), so status responses echo only the
    /// rewritten `netlist:<path>` bench plus the digest, never the deck.
    pub fn to_json(&self) -> Json {
        let mut json = match &self.netlist {
            Some(source) => Json::obj().with("netlist", Json::Str(source.clone())),
            None => Json::obj().with("bench", Json::Str(self.bench.clone())),
        };
        json = json
            .with("agent", Json::Str(self.agent.clone()))
            .with("seed", Json::Num(self.seed as f64))
            .with("budget", Json::Num(self.budget as f64))
            .with("corners", Json::Str(self.corners.clone()))
            .with("checkpoint_every", Json::Num(self.checkpoint_every as f64))
            .with("solver", Json::Str(self.solver.clone()));
        if let Some(digest) = self.netlist_digest {
            json = json.with("netlist_digest", Json::Str(format!("{digest:016x}")));
        }
        json
    }

    /// The spec as journal metadata — the same keys the CLI writes, so
    /// daemon journals and `asdex size --journal` journals are mutually
    /// resumable.
    pub fn to_meta(&self) -> JournalMeta {
        let meta = JournalMeta::new()
            .with("bench", &self.bench)
            .with("agent", &self.agent)
            .with("seed", &self.seed.to_string())
            .with("budget", &self.budget.to_string())
            .with("corners", &self.corners)
            .with("checkpoint_every", &self.checkpoint_every.to_string())
            .with("solver", &self.solver);
        match self.netlist_digest {
            Some(digest) => meta.with("netlist_digest", &format!("{digest:016x}")),
            None => meta,
        }
    }

    /// Restores a spec from journal metadata.
    pub fn from_meta(meta: &JournalMeta) -> Result<CampaignSpec, String> {
        let get = |key: &str| {
            meta.get(key)
                .map(str::to_string)
                .ok_or_else(|| format!("journal metadata is missing `{key}`"))
        };
        fn num<T: std::str::FromStr>(key: &str, v: String) -> Result<T, String> {
            v.parse().map_err(|_| format!("journal metadata `{key}={v}` is not a number"))
        }
        Ok(CampaignSpec {
            bench: get("bench")?,
            agent: get("agent")?,
            seed: num("seed", get("seed")?)?,
            budget: num("budget", get("budget")?)?,
            corners: get("corners")?,
            checkpoint_every: num("checkpoint_every", get("checkpoint_every")?).unwrap_or(25),
            // Journals written before the solver field existed ran on the
            // then-only dense-shaped auto path; auto preserves them.
            solver: meta.get("solver").unwrap_or("auto").to_string(),
            // The inline source never reaches a journal; only the
            // admission-rewritten `netlist:<path>` bench + digest do.
            netlist: None,
            netlist_digest: match meta.get("netlist_digest") {
                None => None,
                Some(hex) => Some(u64::from_str_radix(hex, 16).map_err(|_| {
                    format!("journal metadata `netlist_digest={hex}` is not a 16-hex digest")
                })?),
            },
        })
    }
}

fn is_safe_id(s: &str) -> bool {
    s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// 16-hex-digit IEEE-754 bit pattern of a float; the exactness carrier of
/// the protocol.
pub fn f64_bits_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Serializes evaluation telemetry. Field order is fixed.
pub fn stats_json(stats: &EvalStats) -> Json {
    let mut failures = Json::obj();
    for kind in FailureKind::ALL {
        failures = failures.with(kind.label(), Json::Num(stats.failures_of(kind) as f64));
    }
    Json::obj()
        .with("sims", Json::Num(stats.sims as f64))
        .with("retries", Json::Num(stats.retries as f64))
        .with("recoveries", Json::Num(stats.recoveries as f64))
        .with("snap_fallbacks", Json::Num(stats.snap_fallbacks as f64))
        .with("journal_drops", Json::Num(stats.journal_drops as f64))
        .with("total_failures", Json::Num(stats.total_failures() as f64))
        .with("failures", failures)
}

/// Serializes self-healing telemetry. Field order is fixed.
pub fn health_json(health: &HealthStats) -> Json {
    Json::obj()
        .with("rollbacks", Json::Num(health.rollbacks as f64))
        .with("clipped_updates", Json::Num(health.clipped_updates as f64))
        .with("nonfinite_updates", Json::Num(health.nonfinite_updates as f64))
        .with("tr_reseeds", Json::Num(health.tr_reseeds as f64))
        .with("surrogate_fallbacks", Json::Num(health.surrogate_fallbacks as f64))
        .with("total", Json::Num(health.total() as f64))
}

/// Serializes one finished campaign. Includes every float twice — as a
/// number and as hex bits — so JSON string equality ⇔ bitwise outcome
/// equality.
pub fn outcome_json(outcome: &crate::campaign::CampaignOutcome) -> Json {
    Json::obj()
        .with("success", Json::Bool(outcome.success))
        .with("simulations", Json::Num(outcome.simulations as f64))
        .with("best_value", Json::Num(outcome.best_value))
        .with("best_value_bits", Json::Str(f64_bits_hex(outcome.best_value)))
        .with("best_point", Json::Arr(outcome.best_point.iter().map(|&x| Json::Num(x)).collect()))
        .with(
            "best_point_bits",
            Json::Arr(outcome.best_point.iter().map(|&x| Json::Str(f64_bits_hex(x))).collect()),
        )
        .with(
            "best_physical",
            Json::Arr(outcome.best_physical.iter().map(|&x| Json::Num(x)).collect()),
        )
        .with(
            "best_physical_bits",
            Json::Arr(outcome.best_physical.iter().map(|&x| Json::Str(f64_bits_hex(x))).collect()),
        )
        .with("stats", stats_json(&outcome.stats))
        .with("health", health_json(&outcome.health))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignOutcome;

    #[test]
    fn spec_round_trips_through_json_and_meta() {
        let body = Json::parse(
            r#"{"id":"c-7","bench":"opamp45","agent":"bo","seed":9,"budget":500,"corners":"signoff5","checkpoint_every":10}"#,
        )
        .unwrap();
        let (id, spec) = CampaignSpec::from_json(&body).unwrap();
        assert_eq!(id.as_deref(), Some("c-7"));
        assert_eq!(spec.bench, "opamp45");
        assert_eq!(spec.agent, "bo");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.budget, 500);
        let restored = CampaignSpec::from_meta(&spec.to_meta()).unwrap();
        assert_eq!(restored, spec);
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let (id, spec) = CampaignSpec::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert!(id.is_none());
        assert_eq!(spec, CampaignSpec::default());
    }

    #[test]
    fn solver_field_is_validated_and_round_trips() {
        let (_, spec) =
            CampaignSpec::from_json(&Json::parse(r#"{"solver":"sparse"}"#).unwrap()).unwrap();
        assert_eq!(spec.solver, "sparse");
        assert_eq!(CampaignSpec::from_meta(&spec.to_meta()).unwrap().solver, "sparse");
        let bad = Json::obj().with("solver", Json::Str("qr".to_string()));
        assert!(CampaignSpec::from_json(&bad).is_err(), "unknown solver accepted");
        // Journals written before the field existed resume as auto.
        let legacy = JournalMeta::new()
            .with("bench", "bowl3")
            .with("agent", "trm")
            .with("seed", "1")
            .with("budget", "100")
            .with("corners", "nominal")
            .with("checkpoint_every", "25");
        assert_eq!(CampaignSpec::from_meta(&legacy).unwrap().solver, "auto");
    }

    #[test]
    fn netlist_fields_parse_and_round_trip_through_meta() {
        // Inline source is accepted alone, rejected next to `bench`.
        let (_, spec) = CampaignSpec::from_json(
            &Json::obj().with("netlist", Json::Str("title\n.end\n".to_string())),
        )
        .unwrap();
        assert_eq!(spec.netlist.as_deref(), Some("title\n.end\n"));
        let both = Json::obj()
            .with("netlist", Json::Str("title\n.end\n".to_string()))
            .with("bench", Json::Str("bowl2".to_string()));
        assert!(CampaignSpec::from_json(&both).is_err(), "bench+netlist accepted");
        let empty = Json::obj().with("netlist", Json::Str("  \n".to_string()));
        assert!(CampaignSpec::from_json(&empty).is_err(), "blank netlist accepted");

        // The digest round-trips through journal metadata as 16-hex; the
        // inline source never does.
        let spec = CampaignSpec {
            bench: "netlist:decks/x.sp".to_string(),
            netlist: Some("never journaled".to_string()),
            netlist_digest: Some(0xaf63dc4c8601ec8c),
            ..CampaignSpec::default()
        };
        let restored = CampaignSpec::from_meta(&spec.to_meta()).unwrap();
        assert_eq!(restored.netlist_digest, Some(0xaf63dc4c8601ec8c));
        assert_eq!(restored.netlist, None);
        assert_eq!(restored.bench, "netlist:decks/x.sp");
        assert!(spec.to_json().dump().contains("af63dc4c8601ec8c"));
        // An unsubmitted inline spec posts `netlist` in place of `bench`
        // (they are mutually exclusive on the wire), so a client-side
        // to_json round-trips through the server's from_json.
        let body = spec.to_json();
        assert!(body.get("bench").is_none());
        let (_, reparsed) = CampaignSpec::from_json(&body).unwrap();
        assert_eq!(reparsed.netlist.as_deref(), Some("never journaled"));
        // A mangled digest in the metadata is a typed error.
        let bad = spec.to_meta().with("netlist_digest", "xyz");
        assert!(CampaignSpec::from_meta(&bad).is_err());
    }

    #[test]
    fn hostile_ids_are_rejected() {
        for bad in ["../etc/passwd", "a/b", "", "x y"] {
            let body = Json::obj().with("id", Json::Str(bad.to_string()));
            assert!(CampaignSpec::from_json(&body).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn outcome_json_is_bitwise_faithful() {
        let outcome = CampaignOutcome {
            success: true,
            simulations: 123,
            best_point: vec![0.1, 1.0 / 3.0],
            best_physical: vec![1e-6, 2.5e-6],
            best_value: -0.0,
            stats: EvalStats::new(),
            health: HealthStats::new(),
        };
        let a = outcome_json(&outcome).dump();
        let b = outcome_json(&outcome.clone()).dump();
        assert_eq!(a, b);
        assert!(a.contains(&f64_bits_hex(1.0 / 3.0)));
        assert!(a.contains(&f64_bits_hex(-0.0)));

        let mut tweaked = outcome;
        tweaked.best_value = 0.0; // same ==, different bits than -0.0
        assert_ne!(outcome_json(&tweaked).dump(), a, "bit difference must show in the string");
    }
}
