//! Write-ahead campaign manifest: the daemon's durable admission record.
//!
//! The eval journal (PR 3) makes one *campaign* crash-safe; the manifest
//! makes the *daemon* crash-safe. Every admission and every lifecycle
//! transition is appended to `manifest.log` in the journal directory and
//! fsync'd **before** the transition takes effect (write-ahead), so a
//! SIGKILLed daemon forgets nothing: on boot the scheduler replays the
//! manifest, re-exposes terminal campaigns to `GET /campaigns/{id}`, and
//! re-admits every incomplete campaign, which then resumes from its eval
//! journal to a bitwise-identical outcome.
//!
//! # File format (version 1)
//!
//! Plain text, one record per line, the same conventions as the eval
//! journal (whitespace-free `key=value` tokens, floats as 16-hex-digit
//! IEEE-754 bits, torn-tail truncation on open):
//!
//! ```text
//! asdex-manifest v1
//! A id=c0001 bench=bowl3 agent=trm seed=7 budget=400 corners=nominal checkpoint_every=25 solver=auto
//! R id=c0001
//! T id=c0001 status=completed ok=1 sims=412 v=bfe0000000000000 digest=90b7582fdc2c593f
//! ```
//!
//! * `A` — the campaign was admitted, with its full [`CampaignSpec`]
//!   (enough to rebuild the run with zero other inputs).
//! * `R` — its runner thread picked it up.
//! * `T` — it reached a terminal state. `completed` records carry the
//!   outcome's headline numbers plus an FNV-1a digest of the full
//!   bitwise outcome JSON; `failed` records carry the sanitized error.
//!
//! The *latest* record per id wins on replay. A `completed`/`failed`
//! campaign is finished — re-exposed, not re-run. An `A`/`R`/
//! `interrupted` campaign is incomplete — the daemon died (or drained)
//! while it was queued or running — and is re-admitted on boot.
//!
//! A torn final line (SIGKILL mid-append) is truncated away exactly like
//! the eval journal's; interior corruption is a typed error, never a
//! silent repair.

use crate::protocol::CampaignSpec;
use asdex_env::journal::{path_salt, DiskFault, DiskFaultKind};
use asdex_env::JournalMeta;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Version header on the first line of every manifest file.
const VERSION_HEADER: &str = "asdex-manifest v1";

/// File name of the manifest inside a journal directory.
pub const MANIFEST_FILE_NAME: &str = "manifest.log";

/// Why a manifest could not be opened or appended to.
#[derive(Debug)]
pub enum ManifestError {
    /// The underlying file operation failed during open/replay.
    Io(std::io::Error),
    /// The file's version header is missing or from an unknown version.
    Version {
        /// What the first line actually contained.
        found: String,
    },
    /// An interior line (i.e. not a torn tail) did not parse.
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A write or fsync on the open manifest failed — the typed surface
    /// for storage trouble at a state transition.
    Storage {
        /// The operation that failed (`append`, `fsync`).
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest I/O error: {e}"),
            ManifestError::Version { found } => {
                write!(f, "not an asdex manifest (expected `{VERSION_HEADER}`, found `{found}`)")
            }
            ManifestError::Format { line, reason } => {
                write!(f, "corrupt manifest at line {line}: {reason}")
            }
            ManifestError::Storage { op, source } => {
                write!(f, "manifest storage error during {op}: {source}")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e)
    }
}

/// The terminal line of one campaign's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminalRecord {
    /// Terminal status label: `completed`, `interrupted`, or `failed`.
    pub status: String,
    /// Whether a fully feasible point was found (completed runs).
    pub success: bool,
    /// Simulator invocations spent.
    pub simulations: usize,
    /// Best value found (completed runs; 0.0 otherwise).
    pub best_value: f64,
    /// FNV-1a 64 digest of the bitwise outcome JSON (completed runs).
    pub digest: u64,
    /// The error message (failed runs), whitespace-sanitized on disk.
    pub error: Option<String>,
}

impl TerminalRecord {
    /// A terminal record for a failed campaign.
    pub fn failed(error: &str) -> TerminalRecord {
        TerminalRecord {
            status: "failed".to_string(),
            success: false,
            simulations: 0,
            best_value: 0.0,
            digest: 0,
            error: Some(error.to_string()),
        }
    }

    /// A terminal record for an interrupted (drained) campaign.
    pub fn interrupted(simulations: usize) -> TerminalRecord {
        TerminalRecord {
            status: "interrupted".to_string(),
            success: false,
            simulations,
            best_value: 0.0,
            digest: 0,
            error: None,
        }
    }

    /// A terminal record for a completed campaign: headline numbers plus
    /// the digest of its bitwise outcome JSON.
    pub fn completed(
        success: bool,
        simulations: usize,
        best_value: f64,
        outcome_json: &str,
    ) -> TerminalRecord {
        TerminalRecord {
            status: "completed".to_string(),
            success,
            simulations,
            best_value,
            digest: fnv1a(outcome_json),
            error: None,
        }
    }

    /// Whether this terminal state finishes the campaign for good.
    /// `interrupted` does not: the work is unfinished, so boot-time
    /// recovery re-admits it.
    pub fn is_final(&self) -> bool {
        self.status != "interrupted"
    }
}

/// Lifecycle phase of one campaign as replayed from the manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestPhase {
    /// Admitted but never picked up by a runner.
    Admitted,
    /// A runner had started it when the daemon died.
    Running,
    /// It reached a terminal state.
    Terminal(TerminalRecord),
}

/// One campaign's replayed manifest state.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestCampaign {
    /// The campaign id.
    pub id: String,
    /// Its full spec from the admission record.
    pub spec: CampaignSpec,
    /// The latest lifecycle phase on record.
    pub phase: ManifestPhase,
}

impl ManifestCampaign {
    /// Whether boot-time recovery should re-admit this campaign:
    /// anything that is not durably finished (`completed`/`failed`).
    pub fn needs_recovery(&self) -> bool {
        match &self.phase {
            ManifestPhase::Admitted | ManifestPhase::Running => true,
            ManifestPhase::Terminal(t) => !t.is_final(),
        }
    }
}

/// FNV-1a 64 over a string — the outcome digest hash.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_whitespace() || c == '=' { '_' } else { c }).collect()
}

/// An open, append-only campaign manifest (see the module docs).
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    file: File,
    disk_fault: Option<DiskFault>,
    salt: u64,
    write_ops: u64,
    sync_ops: u64,
}

impl Manifest {
    /// Opens (or creates) the manifest at `path` and replays it: parses
    /// every record, truncates a torn final line, and returns the open
    /// manifest plus the per-campaign states in first-admission order.
    ///
    /// # Errors
    ///
    /// * [`ManifestError::Io`] when the file cannot be read or created.
    /// * [`ManifestError::Version`] when the header is unknown.
    /// * [`ManifestError::Format`] when an interior line is corrupt
    ///   (torn tails are repaired, interior corruption is not).
    pub fn open(path: &Path) -> Result<(Manifest, Vec<ManifestCampaign>), ManifestError> {
        if !path.exists() {
            let mut file =
                OpenOptions::new().write(true).create_new(true).open(path)?;
            file.write_all(format!("{VERSION_HEADER}\n").as_bytes())?;
            file.sync_data()?;
            let manifest = Manifest {
                path: path.to_path_buf(),
                file,
                disk_fault: None,
                salt: path_salt(path),
                write_ops: 0,
                sync_ops: 0,
            };
            return Ok((manifest, Vec::new()));
        }

        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        // Ordered by first admission; BTreeMap<usize,..> keyed by arrival
        // index keeps replay order stable without a second pass.
        let mut order: BTreeMap<String, usize> = BTreeMap::new();
        let mut campaigns: Vec<ManifestCampaign> = Vec::new();
        let mut valid_end = 0usize;
        let mut offset = 0usize;
        let mut line_no = 0usize;
        for raw in text.split_inclusive('\n') {
            offset += raw.len();
            line_no += 1;
            let complete = raw.ends_with('\n');
            let body = raw.trim_end_matches(['\n', '\r']);
            let last = offset == text.len();
            let ok = if line_no == 1 {
                body == VERSION_HEADER
            } else {
                match parse_record(body) {
                    Some(record) => {
                        // Like the journal: a record only counts once its
                        // newline proves the write finished.
                        if complete {
                            apply_record(&mut order, &mut campaigns, record, line_no)?;
                        }
                        true
                    }
                    None => false,
                }
            };
            if ok && complete {
                valid_end = offset;
            } else if !complete && last {
                // Torn tail from a crash mid-append: drop it.
                break;
            } else if line_no == 1 {
                return Err(ManifestError::Version { found: body.to_string() });
            } else {
                return Err(ManifestError::Format {
                    line: line_no,
                    reason: format!("unparseable record `{body}`"),
                });
            }
        }
        if valid_end == 0 {
            // Even the header line was torn: the daemon died during
            // manifest creation, before any admission could have been
            // acknowledged. Start over.
            return create_fresh(path);
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_end as u64)?;
        let file = OpenOptions::new().append(true).open(path)?;
        let manifest = Manifest {
            path: path.to_path_buf(),
            file,
            disk_fault: None,
            salt: path_salt(path),
            write_ops: 0,
            sync_ops: 0,
        };
        Ok((manifest, campaigns))
    }

    /// Attaches a seeded [`DiskFault`] injector to the append/fsync path
    /// (chaos testing).
    #[must_use]
    pub fn with_disk_fault(mut self, fault: DiskFault) -> Manifest {
        self.disk_fault = Some(fault);
        self
    }

    /// Where the manifest lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends the admission record for `id` (write-ahead: call *before*
    /// acknowledging the admission).
    ///
    /// # Errors
    ///
    /// [`ManifestError::Storage`] when the append or fsync fails.
    pub fn append_admitted(&mut self, id: &str, spec: &CampaignSpec) -> Result<(), ManifestError> {
        let mut line = format!(
            "A id={} bench={} agent={} seed={} budget={} corners={} checkpoint_every={} solver={}",
            sanitize(id),
            sanitize(&spec.bench),
            sanitize(&spec.agent),
            spec.seed,
            spec.budget,
            sanitize(&spec.corners),
            spec.checkpoint_every,
            sanitize(&spec.solver),
        );
        // The netlist digest is part of the campaign identity: recovery
        // re-admits from this record alone, and the re-run must refuse a
        // deck edited since admission.
        if let Some(digest) = spec.netlist_digest {
            line.push_str(&format!(" netlist_digest={digest:016x}"));
        }
        line.push('\n');
        self.append(&line)
    }

    /// Appends the running transition for `id`.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Storage`] when the append or fsync fails.
    pub fn append_running(&mut self, id: &str) -> Result<(), ManifestError> {
        self.append(&format!("R id={}\n", sanitize(id)))
    }

    /// Appends the terminal transition for `id`.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Storage`] when the append or fsync fails.
    pub fn append_terminal(
        &mut self,
        id: &str,
        terminal: &TerminalRecord,
    ) -> Result<(), ManifestError> {
        debug_assert!(
            matches!(terminal.status.as_str(), "completed" | "interrupted" | "failed"),
            "not a terminal status: {}",
            terminal.status
        );
        let mut line = format!(
            "T id={} status={} ok={} sims={} v={:016x} digest={:016x}",
            sanitize(id),
            sanitize(&terminal.status),
            u8::from(terminal.success),
            terminal.simulations,
            terminal.best_value.to_bits(),
            terminal.digest,
        );
        if let Some(err) = &terminal.error {
            line.push_str(" err=");
            line.push_str(&sanitize(err));
        }
        line.push('\n');
        self.append(&line)
    }

    /// One fsync'd append: every manifest record is durable before the
    /// state transition it describes takes effect.
    fn append(&mut self, line: &str) -> Result<(), ManifestError> {
        let bytes = line.as_bytes();
        let write_op = self.write_ops;
        self.write_ops += 1;
        if let Some(fault) = self.disk_fault {
            if fault.fires(self.salt, write_op) {
                match fault.kind {
                    DiskFaultKind::WriteError => {
                        return Err(ManifestError::Storage {
                            op: "append",
                            source: injected(fault.kind),
                        });
                    }
                    DiskFaultKind::ShortWrite => {
                        let cut = bytes.len() / 2;
                        self.file
                            .write_all(&bytes[..cut])
                            .map_err(|e| ManifestError::Storage { op: "append", source: e })?;
                        return Err(ManifestError::Storage {
                            op: "append",
                            source: injected(fault.kind),
                        });
                    }
                    DiskFaultKind::FsyncError => {}
                }
            }
        }
        self.file
            .write_all(bytes)
            .map_err(|e| ManifestError::Storage { op: "append", source: e })?;
        let sync_op = self.sync_ops;
        self.sync_ops += 1;
        if let Some(fault) = self.disk_fault {
            if fault.kind == DiskFaultKind::FsyncError && fault.fires(self.salt, sync_op) {
                return Err(ManifestError::Storage { op: "fsync", source: injected(fault.kind) });
            }
        }
        self.file
            .sync_data()
            .map_err(|e| ManifestError::Storage { op: "fsync", source: e })
    }
}

fn injected(kind: DiskFaultKind) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::StorageFull,
        format!("injected disk fault ({})", kind.label()),
    )
}

fn create_fresh(path: &Path) -> Result<(Manifest, Vec<ManifestCampaign>), ManifestError> {
    let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
    file.write_all(format!("{VERSION_HEADER}\n").as_bytes())?;
    file.sync_data()?;
    let manifest = Manifest {
        path: path.to_path_buf(),
        file,
        disk_fault: None,
        salt: path_salt(path),
        write_ops: 0,
        sync_ops: 0,
    };
    Ok((manifest, Vec::new()))
}

/// One parsed manifest line.
enum Record {
    Admitted { id: String, spec: CampaignSpec },
    Running { id: String },
    Terminal { id: String, terminal: TerminalRecord },
}

fn parse_record(line: &str) -> Option<Record> {
    let mut parts = line.split_whitespace();
    let tag = parts.next()?;
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    for tok in parts {
        let (k, v) = tok.split_once('=')?;
        // No legitimate record repeats a key; a duplicate is the
        // signature of two records fused by a lost newline.
        if pairs.iter().any(|(seen, _)| *seen == k) {
            return None;
        }
        pairs.push((k, v));
    }
    let get = |key: &str| pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let id = get("id")?.to_string();
    match tag {
        "A" => {
            // Reuse the journal-meta round trip so manifest specs and
            // journal specs can never drift apart.
            let mut meta = JournalMeta::new();
            for (k, v) in &pairs {
                if *k != "id" {
                    meta.set(k, v);
                }
            }
            let spec = CampaignSpec::from_meta(&meta).ok()?;
            asdex_spice::analysis::SolverChoice::from_label(&spec.solver)?;
            Some(Record::Admitted { id, spec })
        }
        "R" => Some(Record::Running { id }),
        "T" => {
            let status = get("status")?.to_string();
            if !matches!(status.as_str(), "completed" | "interrupted" | "failed") {
                return None;
            }
            let terminal = TerminalRecord {
                status,
                success: match get("ok")? {
                    "0" => false,
                    "1" => true,
                    _ => return None,
                },
                simulations: get("sims")?.parse().ok()?,
                best_value: f64::from_bits(u64::from_str_radix(get("v")?, 16).ok()?),
                digest: u64::from_str_radix(get("digest")?, 16).ok()?,
                error: get("err").map(str::to_string),
            };
            Some(Record::Terminal { id, terminal })
        }
        _ => None,
    }
}

fn apply_record(
    order: &mut BTreeMap<String, usize>,
    campaigns: &mut Vec<ManifestCampaign>,
    record: Record,
    line_no: usize,
) -> Result<(), ManifestError> {
    match record {
        Record::Admitted { id, spec } => {
            match order.get(&id) {
                // Re-admission (a resumed terminal id): reset the phase.
                Some(&idx) => {
                    campaigns[idx].spec = spec;
                    campaigns[idx].phase = ManifestPhase::Admitted;
                }
                None => {
                    order.insert(id.clone(), campaigns.len());
                    campaigns.push(ManifestCampaign {
                        id,
                        spec,
                        phase: ManifestPhase::Admitted,
                    });
                }
            }
            Ok(())
        }
        Record::Running { id } => match order.get(&id) {
            Some(&idx) => {
                campaigns[idx].phase = ManifestPhase::Running;
                Ok(())
            }
            // `A` is fsync'd before `R` can exist; an orphan `R` is
            // interior corruption, not a torn write.
            None => Err(ManifestError::Format {
                line: line_no,
                reason: format!("running record for unadmitted campaign `{id}`"),
            }),
        },
        Record::Terminal { id, terminal } => match order.get(&id) {
            Some(&idx) => {
                campaigns[idx].phase = ManifestPhase::Terminal(terminal);
                Ok(())
            }
            None => Err(ManifestError::Format {
                line: line_no,
                reason: format!("terminal record for unadmitted campaign `{id}`"),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("asdex-manifest-test-{}-{name}.log", std::process::id()))
    }

    fn spec(seed: u64) -> CampaignSpec {
        CampaignSpec { seed, budget: 400, ..CampaignSpec::default() }
    }

    #[test]
    fn lifecycle_round_trips_through_replay() {
        let path = tmp_path("lifecycle");
        std::fs::remove_file(&path).ok();
        let (mut m, replayed) = Manifest::open(&path).unwrap();
        assert!(replayed.is_empty());
        m.append_admitted("c1", &spec(1)).unwrap();
        m.append_admitted("c2", &spec(2)).unwrap();
        m.append_running("c1").unwrap();
        let t = TerminalRecord::completed(true, 412, -0.0, r#"{"success":true}"#);
        m.append_terminal("c1", &t).unwrap();
        drop(m);

        let (_, replayed) = Manifest::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].id, "c1");
        assert_eq!(replayed[0].spec, spec(1));
        match &replayed[0].phase {
            ManifestPhase::Terminal(got) => {
                assert_eq!(*got, t);
                assert_eq!(got.best_value.to_bits(), (-0.0f64).to_bits(), "bitwise value");
            }
            other => panic!("expected terminal, got {other:?}"),
        }
        assert!(!replayed[0].needs_recovery());
        assert_eq!(replayed[1].id, "c2");
        assert_eq!(replayed[1].phase, ManifestPhase::Admitted);
        assert!(replayed[1].needs_recovery());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_and_running_campaigns_need_recovery() {
        let path = tmp_path("recovery-phases");
        std::fs::remove_file(&path).ok();
        let (mut m, _) = Manifest::open(&path).unwrap();
        m.append_admitted("run", &spec(1)).unwrap();
        m.append_running("run").unwrap();
        m.append_admitted("int", &spec(2)).unwrap();
        m.append_running("int").unwrap();
        m.append_terminal("int", &TerminalRecord::interrupted(99)).unwrap();
        m.append_admitted("fail", &spec(3)).unwrap();
        m.append_running("fail").unwrap();
        m.append_terminal("fail", &TerminalRecord::failed("unknown agent `dqn`")).unwrap();
        drop(m);

        let (_, replayed) = Manifest::open(&path).unwrap();
        let by_id = |id: &str| replayed.iter().find(|c| c.id == id).unwrap();
        assert!(by_id("run").needs_recovery(), "running when the daemon died");
        assert!(by_id("int").needs_recovery(), "interrupted work is unfinished");
        assert!(!by_id("fail").needs_recovery(), "failed is final");
        match &by_id("fail").phase {
            ManifestPhase::Terminal(t) => {
                assert_eq!(t.error.as_deref(), Some("unknown_agent_`dqn`"), "sanitized");
            }
            other => panic!("expected terminal, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn netlist_digest_survives_the_admission_round_trip() {
        let path = tmp_path("netlist-digest");
        std::fs::remove_file(&path).ok();
        let with_digest = CampaignSpec {
            bench: "netlist:decks/x.sp".to_string(),
            netlist_digest: Some(0xcbf29ce484222325),
            ..spec(4)
        };
        let (mut m, _) = Manifest::open(&path).unwrap();
        m.append_admitted("net", &with_digest).unwrap();
        m.append_admitted("plain", &spec(5)).unwrap();
        drop(m);
        let (_, replayed) = Manifest::open(&path).unwrap();
        assert_eq!(replayed[0].spec, with_digest);
        assert_eq!(replayed[0].spec.netlist_digest, Some(0xcbf29ce484222325));
        assert_eq!(replayed[1].spec.netlist_digest, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn readmission_resets_a_terminal_phase() {
        let path = tmp_path("readmit");
        std::fs::remove_file(&path).ok();
        let (mut m, _) = Manifest::open(&path).unwrap();
        m.append_admitted("c1", &spec(1)).unwrap();
        m.append_terminal("c1", &TerminalRecord::completed(true, 10, 0.0, "{}")).unwrap();
        m.append_admitted("c1", &spec(1)).unwrap();
        drop(m);
        let (_, replayed) = Manifest::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].phase, ManifestPhase::Admitted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_byte_tear_of_the_final_record_drops_exactly_that_record() {
        let path = tmp_path("tear");
        std::fs::remove_file(&path).ok();
        let (mut m, _) = Manifest::open(&path).unwrap();
        m.append_admitted("c1", &spec(1)).unwrap();
        m.append_running("c1").unwrap();
        m.append_terminal(
            "c1",
            &TerminalRecord::completed(true, 412, -0.125, r#"{"x":1}"#),
        )
        .unwrap();
        drop(m);
        let text = std::fs::read_to_string(&path).unwrap();
        let bytes = text.as_bytes();
        let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;

        // Mirror tests/resume.rs: cut the file at EVERY byte inside the
        // final record. Each cut must replay to exactly the first two
        // records — phase Running — and truncate the torn tail.
        for cut in last_line_start..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (m, replayed) = Manifest::open(&path)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            assert_eq!(replayed.len(), 1, "cut at byte {cut}");
            assert_eq!(
                replayed[0].phase,
                ManifestPhase::Running,
                "cut at byte {cut}: torn terminal must not count"
            );
            drop(m);
            let repaired = std::fs::read_to_string(&path).unwrap();
            assert_eq!(
                repaired.as_bytes(),
                &bytes[..last_line_start],
                "cut at byte {cut}: file must be truncated to the last intact record"
            );
            // And the repaired file keeps working: append the terminal
            // again, replay sees it.
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (mut m, _) = Manifest::open(&path).unwrap();
            m.append_terminal("c1", &TerminalRecord::interrupted(7)).unwrap();
            drop(m);
            let (_, replayed) = Manifest::open(&path).unwrap();
            assert_eq!(
                replayed[0].phase,
                ManifestPhase::Terminal(TerminalRecord::interrupted(7)),
                "cut at byte {cut}: appending after repair must work"
            );
            // Restore for the next iteration.
            std::fs::write(&path, bytes).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_a_typed_error_not_a_silent_repair() {
        let path = tmp_path("interior");
        std::fs::remove_file(&path).ok();
        let (mut m, _) = Manifest::open(&path).unwrap();
        m.append_admitted("c1", &spec(1)).unwrap();
        m.append_running("c1").unwrap();
        drop(m);
        let clean = std::fs::read_to_string(&path).unwrap();

        // Garbage line in the interior.
        let mut text = clean.clone();
        text.insert_str(text.find("R ").unwrap(), "garbage line\n");
        std::fs::write(&path, &text).unwrap();
        match Manifest::open(&path) {
            Err(ManifestError::Format { line: 3, .. }) => {}
            other => panic!("expected Format at line 3, got {other:?}"),
        }

        // A half-cut interior line (fused with its successor).
        let r_at = clean.find("R ").unwrap();
        let fused = format!("{}{}", &clean[..r_at - 1], &clean[r_at..]);
        std::fs::write(&path, &fused).unwrap();
        assert!(
            matches!(Manifest::open(&path), Err(ManifestError::Format { .. })),
            "fused lines must be typed corruption"
        );

        // A lifecycle record for a campaign that was never admitted.
        let orphan = format!("{VERSION_HEADER}\nR id=ghost\n");
        std::fs::write(&path, &orphan).unwrap();
        match Manifest::open(&path) {
            Err(ManifestError::Format { line: 2, reason }) => {
                assert!(reason.contains("ghost"), "{reason}");
            }
            other => panic!("expected Format at line 2, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = tmp_path("version");
        std::fs::write(&path, "asdex-manifest v99\n").unwrap();
        assert!(matches!(Manifest::open(&path), Err(ManifestError::Version { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_header_restarts_the_manifest() {
        let path = tmp_path("torn-header");
        // The daemon died mid-creation: no admission can have been
        // acknowledged, so an unterminated header restarts cleanly.
        std::fs::write(&path, "asdex-mani").unwrap();
        let (mut m, replayed) = Manifest::open(&path).unwrap();
        assert!(replayed.is_empty());
        m.append_admitted("c1", &spec(1)).unwrap();
        drop(m);
        let (_, replayed) = Manifest::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_faults_are_typed_storage_errors() {
        let path = tmp_path("fault");
        std::fs::remove_file(&path).ok();
        let (m, _) = Manifest::open(&path).unwrap();
        let mut m = m.with_disk_fault(DiskFault::new(DiskFaultKind::WriteError, 1.0, 9));
        let err = m.append_admitted("c1", &spec(1)).unwrap_err();
        assert!(matches!(err, ManifestError::Storage { op: "append", .. }), "got {err}");
        drop(m);
        // Nothing landed: replay sees an empty manifest.
        let (m, replayed) = Manifest::open(&path).unwrap();
        assert!(replayed.is_empty());
        let mut m = m.with_disk_fault(DiskFault::new(DiskFaultKind::FsyncError, 1.0, 9));
        let err = m.append_admitted("c1", &spec(1)).unwrap_err();
        assert!(matches!(err, ManifestError::Storage { op: "fsync", .. }), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_fault_tears_the_file_and_open_repairs_it() {
        let path = tmp_path("fault-short");
        std::fs::remove_file(&path).ok();
        let (mut m, _) = Manifest::open(&path).unwrap();
        m.append_admitted("c1", &spec(1)).unwrap();
        let mut m = m.with_disk_fault(DiskFault::new(DiskFaultKind::ShortWrite, 1.0, 9));
        let err = m.append_running("c1").unwrap_err();
        assert!(matches!(err, ManifestError::Storage { op: "append", .. }), "got {err}");
        drop(m);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.ends_with('\n'), "the short write must actually tear the file");
        let (_, replayed) = Manifest::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].phase, ManifestPhase::Admitted, "torn R dropped");
        std::fs::remove_file(&path).ok();
    }
}
