//! The HTTP front end: routing, drain coordination, request accounting.
//!
//! Connections are served by the nonblocking [`crate::reactor`]: one
//! thread drives every connection as a polled state machine with bounded
//! buffers and per-phase deadlines — requests are single-shot
//! (`Connection: close`), so the per-connection work is one parse, one
//! route, one response. Campaign execution never happens on the reactor
//! thread; `POST /campaigns` only enqueues.
//!
//! Under overload the daemon sheds typed, never hangs: beyond the
//! connection cap arrivals get `503` + `Retry-After`; a full admission
//! queue answers `429` + `Retry-After`; per-client token buckets answer
//! `429 rate limited`; slow or half-open clients are reaped by deadline.
//!
//! ## Routes
//!
//! | Route                 | Meaning                                          |
//! |-----------------------|--------------------------------------------------|
//! | `POST /campaigns`     | submit (or resume) a campaign → `202 {"id":...}` |
//! | `GET /campaigns/{id}` | status + progress lines + outcome                |
//! | `GET /healthz`        | liveness + drain state                           |
//! | `GET /metrics`        | Prometheus-style text exposition                 |
//! | `POST /drain`         | initiate graceful shutdown                       |

use crate::http::{Request, Response};
use crate::json::Json;
use crate::logging;
use crate::metrics::Metrics;
use crate::protocol::{outcome_json, CampaignSpec};
use crate::reactor::{run_reactor, ReactorConfig};
use crate::scheduler::{Scheduler, SchedulerConfig, SubmitError};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8650`. Port 0 picks a free port.
    pub addr: String,
    /// Per-phase connection deadline (request head, body, and response
    /// write each): slow-loris and half-open clients are reaped when it
    /// lands (`--conn-timeout`).
    pub conn_timeout: Duration,
    /// Open-connection cap; arrivals beyond it are shed with a typed
    /// `503` + `Retry-After` (`--max-conns`).
    pub max_conns: usize,
    /// Scheduler knobs.
    pub scheduler: SchedulerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8650".to_string(),
            conn_timeout: Duration::from_secs(10),
            max_conns: 256,
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// A shared flag that asks the server to drain. Clone freely; the CLI's
/// SIGINT watcher holds one, `POST /drain` flips the same one.
#[derive(Debug, Clone, Default)]
pub struct DrainHandle {
    flag: Arc<AtomicBool>,
}

impl DrainHandle {
    /// A fresh, un-pulled handle.
    pub fn new() -> Self {
        DrainHandle::default()
    }

    /// Requests a drain.
    pub fn request_drain(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_drain_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The running daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    metrics: Arc<Metrics>,
    drain: DrainHandle,
    conn_timeout: Duration,
    max_conns: usize,
}

impl Server {
    /// Binds the listener and starts the scheduler (runner threads spawn
    /// here; the accept loop does not run until [`Server::run`]). Boot-time
    /// recovery replays on its own thread — `/readyz` answers 503 until it
    /// finishes.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and scheduler-start failures (a held
    /// journal-directory lock, a corrupt manifest); the typed
    /// [`crate::scheduler::StartError`] rides inside the I/O error.
    pub fn bind(cfg: ServerConfig, drain: DrainHandle) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(cfg.scheduler, Arc::clone(&metrics))
            .map_err(std::io::Error::other)?;
        Ok(Server {
            listener,
            scheduler,
            metrics,
            drain,
            conn_timeout: cfg.conn_timeout,
            max_conns: cfg.max_conns,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The scheduler, for in-process inspection (tests, CLI wiring).
    pub fn scheduler(&self) -> Arc<Scheduler> {
        Arc::clone(&self.scheduler)
    }

    /// Serves until a drain is requested, then drains the scheduler
    /// (checkpointing every journal) and returns. The reactor gives
    /// in-flight connections a short grace period after the drain flag
    /// flips; campaign work drains through the scheduler's own protocol.
    pub fn run(&self) -> std::io::Result<()> {
        logging::info(format!("serving on http://{}", self.local_addr()?));
        let reactor_cfg = ReactorConfig {
            max_conns: self.max_conns,
            conn_timeout: self.conn_timeout,
            drain_grace: Duration::from_secs(5),
        };
        let scheduler = Arc::clone(&self.scheduler);
        let metrics = Arc::clone(&self.metrics);
        let drain = self.drain.clone();
        let result = run_reactor(
            &self.listener,
            &reactor_cfg,
            &self.drain,
            &self.metrics,
            |request, peer| {
                let started = Instant::now();
                let (endpoint, response) = route(request, Some(peer), &scheduler, &metrics, &drain);
                match endpoint {
                    Some(idx) => metrics.observe_request(idx, started.elapsed()),
                    None => {
                        metrics.unmatched_requests.fetch_add(1, Ordering::Relaxed);
                    }
                }
                logging::debug(format!(
                    "http: {} {} {} -> {}",
                    peer, request.method, request.path, response.status
                ));
                response
            },
            || scheduler.retry_after_secs(),
        );
        logging::info("drain requested: admission stopped");
        self.scheduler.drain();
        result
    }
}

fn error_body(message: &str) -> String {
    Json::obj().with("error", Json::Str(message.to_string())).dump()
}

fn route(
    request: &Request,
    peer: Option<SocketAddr>,
    scheduler: &Scheduler,
    metrics: &Metrics,
    drain: &DrainHandle,
) -> (Option<usize>, Response) {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("POST", "/campaigns") => {
            // Rate limits are per client *address*: one greedy submitter
            // cannot starve the admission queue for everyone else.
            let client = peer.map(|p| p.ip().to_string());
            (Metrics::endpoint_index("/campaigns"), post_campaign(request, client, scheduler))
        }
        ("GET", "/healthz") => {
            let body = Json::obj()
                .with("status", Json::Str("ok".to_string()))
                .with("draining", Json::Bool(scheduler.is_draining() || drain.is_drain_requested()))
                .dump();
            (Metrics::endpoint_index("/healthz"), Response::json(200, body))
        }
        ("GET", "/readyz") => {
            // Distinct from `/healthz`: the process is *live* the moment
            // it binds, but not *ready* until boot-time recovery has
            // replayed the manifest.
            let ready = scheduler.is_ready();
            let body = Json::obj()
                .with(
                    "status",
                    Json::Str(if ready { "ready" } else { "recovering" }.to_string()),
                )
                .with(
                    "recovered",
                    Json::Num(metrics.recovered_campaigns.load(Ordering::Relaxed) as f64),
                )
                .dump();
            let status = if ready { 200 } else { 503 };
            (Metrics::endpoint_index("/readyz"), Response::json(status, body))
        }
        ("GET", "/metrics") => {
            let text = metrics.render(&scheduler.gauges());
            (Metrics::endpoint_index("/metrics"), Response::text(200, text))
        }
        ("POST", "/drain") => {
            drain.request_drain();
            let body = Json::obj().with("draining", Json::Bool(true)).dump();
            (Metrics::endpoint_index("/healthz"), Response::json(202, body))
        }
        ("GET", p) if p.starts_with("/campaigns/") => {
            let id = &p["/campaigns/".len()..];
            (Metrics::endpoint_index("/campaigns/{id}"), get_campaign(id, scheduler))
        }
        (_, "/campaigns" | "/healthz" | "/readyz" | "/metrics" | "/drain") => {
            (None, Response::json(405, error_body("method not allowed")))
        }
        _ => (None, Response::json(404, error_body("no such route"))),
    }
}

fn post_campaign(request: &Request, client: Option<String>, scheduler: &Scheduler) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return Response::json(400, error_body("body is not UTF-8")),
    };
    let body = if text.trim().is_empty() { Json::obj() } else {
        match Json::parse(text) {
            Ok(v) => v,
            Err(e) => return Response::json(400, error_body(&e.to_string())),
        }
    };
    let (id, spec) = match CampaignSpec::from_json(&body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::json(400, error_body(&e)),
    };
    match scheduler.submit_from(client.as_deref(), id, spec) {
        Ok(id) => {
            let body = Json::obj()
                .with("id", Json::Str(id))
                .with("status", Json::Str("queued".to_string()))
                .dump();
            Response::json(202, body)
        }
        // Retryable sheds carry an explicit `Retry-After` so well-behaved
        // clients back off in step with actual queue pressure instead of
        // hammering blind.
        Err(SubmitError::QueueFull) => Response::json(429, error_body("admission queue is full"))
            .with_retry_after(scheduler.retry_after_secs()),
        Err(SubmitError::RateLimited { retry_after }) => {
            Response::json(429, error_body("rate limited")).with_retry_after(retry_after)
        }
        Err(SubmitError::Draining) => Response::json(503, error_body("daemon is draining")),
        Err(SubmitError::Recovering) => {
            Response::json(503, error_body("daemon is recovering; retry shortly"))
                .with_retry_after(1)
        }
        Err(SubmitError::Conflict(id)) => {
            Response::json(409, error_body(&format!("campaign {id:?} is already in flight")))
        }
        Err(SubmitError::Invalid(msg)) => Response::json(400, error_body(&msg)),
        Err(SubmitError::Storage(msg)) => {
            Response::json(500, error_body(&format!("admission not durable: {msg}")))
        }
    }
}

fn get_campaign(id: &str, scheduler: &Scheduler) -> Response {
    let record = match scheduler.get(id) {
        Some(record) => record,
        None => return Response::json(404, error_body("no such campaign")),
    };
    let status = record.status();
    let mut body = Json::obj()
        .with("id", Json::Str(record.id.clone()))
        .with("status", Json::Str(status.label().to_string()))
        .with("spec", record.spec().to_json())
        .with(
            "progress",
            Json::Arr(record.progress_lines().into_iter().map(Json::Str).collect()),
        );
    if let Some((replayed, recorded)) = record.journal_info() {
        body = body.with(
            "journal",
            Json::obj()
                .with("replayed", Json::Num(replayed as f64))
                .with("recorded", Json::Num(recorded as f64)),
        );
    }
    body = match record.outcome() {
        Some(Ok(outcome)) => body.with("outcome", outcome_json(&outcome)),
        Some(Err(message)) => body.with("error", Json::Str(message)),
        None => body,
    };
    // A campaign that finished under a previous daemon: the full outcome
    // object died with that process, but the manifest's terminal summary
    // (headline numbers + bitwise digest) is durable. Served distinctly —
    // never dressed up as a fresh outcome.
    if let Some(summary) = record.recovered_summary() {
        body = body.with(
            "recovered",
            Json::obj()
                .with("status", Json::Str(summary.status.clone()))
                .with("success", Json::Bool(summary.success))
                .with("simulations", Json::Num(summary.simulations as f64))
                .with(
                    "best_value_bits",
                    Json::Str(format!("{:016x}", summary.best_value.to_bits())),
                )
                .with("outcome_digest", Json::Str(format!("{:016x}", summary.digest))),
        );
    }
    Response::json(200, body.dump())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server(tag: &str) -> (Server, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("asdex-srv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            ..ServerConfig::default()
        };
        (Server::bind(cfg, DrainHandle::new()).unwrap(), dir)
    }

    #[test]
    fn routes_respond_without_sockets() {
        let (server, dir) = test_server("routes");
        let scheduler = server.scheduler();
        let drain = DrainHandle::new();
        let metrics = Arc::new(Metrics::new());

        let health = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            headers: vec![],
            body: vec![],
        };
        let (_, resp) = route(&health, None, &scheduler, &metrics, &drain);
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"status\":\"ok\""));

        let submit = Request {
            method: "POST".into(),
            path: "/campaigns".into(),
            headers: vec![],
            body: br#"{"bench":"bowl2","budget":200,"seed":3}"#.to_vec(),
        };
        let (_, resp) = route(&submit, None, &scheduler, &metrics, &drain);
        assert_eq!(resp.status, 202);
        let body = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let id = body.get("id").unwrap().as_str().unwrap().to_string();
        assert!(scheduler.wait(&id, Duration::from_secs(60)));

        let get = Request {
            method: "GET".into(),
            path: format!("/campaigns/{id}"),
            headers: vec![],
            body: vec![],
        };
        let (_, resp) = route(&get, None, &scheduler, &metrics, &drain);
        assert_eq!(resp.status, 200);
        let body = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(body.get("status").unwrap().as_str(), Some("completed"));
        assert!(body.get("outcome").is_some());

        let missing = Request {
            method: "GET".into(),
            path: "/campaigns/ghost".into(),
            headers: vec![],
            body: vec![],
        };
        let (_, resp) = route(&missing, None, &scheduler, &metrics, &drain);
        assert_eq!(resp.status, 404);

        let bad = Request {
            method: "POST".into(),
            path: "/campaigns".into(),
            headers: vec![],
            body: b"not json".to_vec(),
        };
        let (_, resp) = route(&bad, None, &scheduler, &metrics, &drain);
        assert_eq!(resp.status, 400);

        let wrong_method = Request {
            method: "DELETE".into(),
            path: "/campaigns".into(),
            headers: vec![],
            body: vec![],
        };
        let (endpoint, resp) = route(&wrong_method, None, &scheduler, &metrics, &drain);
        assert!(endpoint.is_none());
        assert_eq!(resp.status, 405);

        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
