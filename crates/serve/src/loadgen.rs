//! The load harness: concurrent campaign submissions against a daemon,
//! with throughput and latency recorded to CSV.
//!
//! Spawns `concurrency` worker threads that round-robin `campaigns`
//! submissions (distinct seeds, so each campaign is real work), poll each
//! to completion, and log per-campaign rows plus a summary row with
//! latency percentiles to `out` — the same shape the repo's other bench
//! CSVs use, so `bench_results/serve_throughput.csv` plots alongside
//! them.

use crate::client::{Client, ClientError};
use crate::json::Json;
use crate::protocol::CampaignSpec;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Total campaigns to submit.
    pub campaigns: usize,
    /// Concurrent submitter threads.
    pub concurrency: usize,
    /// Benchmark for every campaign.
    pub bench: String,
    /// Agent for every campaign.
    pub agent: String,
    /// Simulation budget per campaign.
    pub budget: usize,
    /// Corner set for every campaign.
    pub corners: String,
    /// Per-campaign completion deadline.
    pub timeout: Duration,
    /// Client retry budget for `429`/`503` backpressure responses.
    pub retries: u32,
    /// Idle TCP connections opened before the run and held half-open for
    /// its duration — an overload storm that forces the daemon's
    /// connection cap and deadline reaper to earn their keep while real
    /// requests ride alongside.
    pub idle_conns: usize,
    /// Submit every campaign with the *same* spec (one seed) instead of
    /// distinct seeds, exercising the cross-campaign evaluation dedup
    /// store.
    pub duplicate: bool,
    /// Inline netlist deck source. When set, every campaign is submitted
    /// with a `netlist` body field instead of `bench`, exercising the
    /// daemon's compile-at-admission path under load.
    pub netlist: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8650".to_string(),
            campaigns: 16,
            concurrency: 8,
            bench: "bowl3".to_string(),
            agent: "trm".to_string(),
            budget: 400,
            corners: "nominal".to_string(),
            timeout: Duration::from_secs(300),
            retries: 4,
            idle_conns: 0,
            duplicate: false,
            netlist: None,
        }
    }
}

/// One campaign's measurements.
#[derive(Debug, Clone)]
pub struct CampaignSample {
    /// The id the daemon assigned.
    pub id: String,
    /// `POST /campaigns` round-trip time.
    pub submit_latency: Duration,
    /// Submission until terminal status observed.
    pub completion_latency: Duration,
    /// Terminal status label.
    pub status: String,
    /// Simulations reported by the outcome (0 if unavailable).
    pub simulations: usize,
}

/// Aggregated results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-campaign samples, in completion order.
    pub samples: Vec<CampaignSample>,
    /// Campaigns that errored at the client level (connect/timeout).
    pub client_errors: usize,
    /// Wall-clock of the whole run.
    pub wall: Duration,
    /// Retries after `429` responses (queue full / rate limited).
    pub retries_429: u64,
    /// Retries after `503` responses (connection cap / draining).
    pub retries_503: u64,
    /// Retries whose delay honored a server `Retry-After` hint.
    pub retry_after_honored: u64,
    /// Retries after connection-level resets (shed without a response).
    pub retries_conn: u64,
}

impl LoadReport {
    /// Campaigns completed per second over the run.
    pub fn throughput(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.samples.len() as f64 / self.wall.as_secs_f64()
    }

    /// A completion-latency percentile (0.0 ..= 1.0) in milliseconds.
    pub fn completion_percentile_ms(&self, q: f64) -> f64 {
        percentile_ms(self.samples.iter().map(|s| s.completion_latency), q)
    }

    /// A submit-latency percentile (0.0 ..= 1.0) in milliseconds.
    pub fn submit_percentile_ms(&self, q: f64) -> f64 {
        percentile_ms(self.samples.iter().map(|s| s.submit_latency), q)
    }

    /// Writes the CSV: one row per campaign, then summary rows.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        writeln!(file, "kind,id,status,submit_ms,completion_ms,simulations")?;
        for s in &self.samples {
            writeln!(
                file,
                "campaign,{},{},{:.3},{:.3},{}",
                s.id,
                s.status,
                s.submit_latency.as_secs_f64() * 1e3,
                s.completion_latency.as_secs_f64() * 1e3,
                s.simulations
            )?;
        }
        writeln!(
            file,
            "summary,throughput_cps,{:.4},wall_ms,{:.3},errors,{}",
            self.throughput(),
            self.wall.as_secs_f64() * 1e3,
            self.client_errors
        )?;
        writeln!(
            file,
            "summary,retries_429,{},retries_503,{},retry_after_honored,{},retries_conn,{}",
            self.retries_429, self.retries_503, self.retry_after_honored, self.retries_conn
        )?;
        for q in [0.50, 0.90, 0.99] {
            writeln!(
                file,
                "summary,p{:02.0}_submit_ms,{:.3},p{:02.0}_completion_ms,{:.3},",
                q * 100.0,
                self.submit_percentile_ms(q),
                q * 100.0,
                self.completion_percentile_ms(q)
            )?;
        }
        Ok(())
    }
}

fn percentile_ms(samples: impl Iterator<Item = Duration>, q: f64) -> f64 {
    let mut ms: Vec<f64> = samples.map(|d| d.as_secs_f64() * 1e3).collect();
    if ms.is_empty() {
        return 0.0;
    }
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((ms.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    ms[rank]
}

/// Runs the load: submits, polls, aggregates. Client-level failures are
/// counted, not fatal, so a partial run still reports.
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    let started = Instant::now();
    let next = Arc::new(AtomicUsize::new(0));
    let samples = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(AtomicUsize::new(0));

    // The overload storm: hold idle connections open for the whole run.
    // The daemon sheds or reaps them; real submissions below must keep
    // flowing regardless. Failures to connect are fine — a storm against
    // a full accept queue is the very overload being staged.
    let storm: Vec<std::net::TcpStream> = (0..cfg.idle_conns)
        .filter_map(|_| std::net::TcpStream::connect(&cfg.addr).ok())
        .collect();
    if cfg.idle_conns > 0 {
        crate::logging::info(format!(
            "loadgen: storm holding {} idle connection(s)",
            storm.len()
        ));
    }

    // One shared client: clones share the shed/retry counters, so the
    // report can surface them. A loaded daemon answers 429 when its
    // queue is full; the bounded retry ladder absorbs that backpressure
    // instead of counting it as a campaign failure.
    let client =
        Client::new(cfg.addr.clone()).with_retries(cfg.retries, Duration::from_millis(100));

    std::thread::scope(|scope| {
        for _ in 0..cfg.concurrency.max(1) {
            let next = Arc::clone(&next);
            let samples = Arc::clone(&samples);
            let errors = Arc::clone(&errors);
            let client = client.clone();
            scope.spawn(move || loop {
                let k = next.fetch_add(1, Ordering::SeqCst);
                if k >= cfg.campaigns {
                    return;
                }
                match run_one(&client, cfg, k) {
                    Ok(sample) => samples.lock().unwrap().push(sample),
                    Err(e) => {
                        errors.fetch_add(1, Ordering::SeqCst);
                        crate::logging::info(format!("loadgen: campaign {k} failed: {e}"));
                    }
                }
            });
        }
    });

    drop(storm);
    let (retries_429, retries_503, retry_after_honored) = client.stats().snapshot();
    LoadReport {
        samples: Arc::try_unwrap(samples).expect("workers joined").into_inner().unwrap(),
        client_errors: errors.load(Ordering::SeqCst),
        wall: started.elapsed(),
        retries_429,
        retries_503,
        retry_after_honored,
        retries_conn: client.stats().retries_conn.load(Ordering::Relaxed),
    }
}

fn run_one(
    client: &Client,
    cfg: &LoadgenConfig,
    k: usize,
) -> Result<CampaignSample, ClientError> {
    let spec = CampaignSpec {
        bench: cfg.bench.clone(),
        agent: cfg.agent.clone(),
        // Duplicate mode: every campaign is the same work, so the
        // daemon's dedup store should compute each point once.
        seed: if cfg.duplicate { 1 } else { k as u64 + 1 },
        budget: cfg.budget,
        corners: cfg.corners.clone(),
        // With an inline deck, to_json posts `netlist` instead of
        // `bench`; the daemon compiles and content-addresses it once,
        // then every later campaign reuses the persisted copy.
        netlist: cfg.netlist.clone(),
        ..CampaignSpec::default()
    };
    let submit_started = Instant::now();
    let id = client.submit(None, &spec)?;
    let submit_latency = submit_started.elapsed();
    let doc = client.wait_for(&id, cfg.timeout)?;
    let completion_latency = submit_started.elapsed();
    let status = doc
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let simulations = doc
        .get("outcome")
        .and_then(|o| o.get("simulations"))
        .and_then(Json::as_u64)
        .unwrap_or(0) as usize;
    Ok(CampaignSample { id, submit_latency, completion_latency, status, simulations })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_csv_shape() {
        let report = LoadReport {
            samples: (0..10)
                .map(|i| CampaignSample {
                    id: format!("c{i}"),
                    submit_latency: Duration::from_millis(i + 1),
                    completion_latency: Duration::from_millis(10 * (i + 1)),
                    status: "completed".to_string(),
                    simulations: 100,
                })
                .collect(),
            client_errors: 0,
            wall: Duration::from_secs(1),
            retries_429: 3,
            retries_503: 1,
            retry_after_honored: 2,
            retries_conn: 4,
        };
        assert_eq!(report.throughput(), 10.0);
        assert!((report.completion_percentile_ms(0.5) - 50.0).abs() < 11.0);
        let path = std::env::temp_dir()
            .join(format!("asdex-loadgen-{}.csv", std::process::id()));
        report.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("kind,id,status,submit_ms,completion_ms,simulations"));
        assert_eq!(text.lines().filter(|l| l.starts_with("campaign,")).count(), 10);
        assert!(text.contains("summary,throughput_cps,"));
        assert!(text
            .contains("summary,retries_429,3,retries_503,1,retry_after_honored,2,retries_conn,4"));
        assert!(text.contains("p99_completion_ms"));
        let _ = std::fs::remove_file(&path);
    }
}
