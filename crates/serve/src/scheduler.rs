//! The multi-campaign scheduler: bounded admission, fair-share threads,
//! crash-safe journals, graceful drain.
//!
//! Submissions enter a bounded FIFO queue; `max_active` runner threads
//! pop campaigns and run them to completion. The global evaluation-thread
//! budget is divided fairly across whatever is active *right now* — each
//! campaign holds an `Arc<AtomicUsize>` share that
//! `SizingProblem::resolved_threads` re-reads at every batch, and the
//! scheduler rewrites all shares whenever the active set changes. Thread
//! count never changes results (the repo's bitwise invariance contract),
//! so rebalancing mid-campaign is always safe.
//!
//! Every campaign journals to `<journal_dir>/<id>.journal`. Submitting an
//! id whose journal already exists *resumes* it: recorded evaluations are
//! replayed without simulating and the campaign continues to the same
//! outcome an uninterrupted run produces — this is both the crash story
//! and the restart story. [`Scheduler::drain`] stops admission, pulls
//! every active campaign's [`CancelToken`], waits for the runners to wind
//! down through their normal budget accounting, and checkpoints journals,
//! so a drained daemon restarts with zero duplicate simulations.

use crate::campaign::{build_problem_checked, run_campaign, CampaignOutcome};
use crate::lockdir::{DirLock, LockError};
use crate::logging;
use crate::manifest::{
    Manifest, ManifestCampaign, ManifestError, ManifestPhase, TerminalRecord, MANIFEST_FILE_NAME,
};
use crate::metrics::{Metrics, SchedulerGauges};
use crate::pool::{WorkerPool, WorkerPoolConfig};
use crate::protocol::{outcome_json, CampaignSpec};
use asdex_core::{ProgressEvent, ProgressHandle};
use asdex_env::journal::DiskFault;
use asdex_env::{
    CancelToken, EvalStats, EvalStore, EvalStoreStats, HealthStats, Journal, JournalError,
    NetlistBench,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Admission-queue capacity; submissions beyond it are rejected with
    /// a retryable error rather than queued unboundedly.
    pub queue_capacity: usize,
    /// Campaigns run concurrently (runner threads).
    pub max_active: usize,
    /// Global evaluation-thread budget shared by active campaigns.
    pub thread_budget: usize,
    /// Directory of per-campaign journals.
    pub journal_dir: PathBuf,
    /// Evaluation worker processes per campaign; `0` evaluates in the
    /// daemon's own process (the pre-isolation behaviour). Worker count
    /// never changes results — the repo's bitwise invariance contract
    /// extends to process-isolated execution.
    pub workers: usize,
    /// Binary spawned as `<program> worker …`; `None` uses
    /// `std::env::current_exe()` (the daemon re-executing itself).
    pub worker_program: Option<PathBuf>,
    /// Whether boot-time recovery replays the manifest: re-exposing
    /// terminal campaigns and re-admitting incomplete ones. `false`
    /// ignores the manifest's history (the `--no-recover` escape hatch).
    pub recover: bool,
    /// Seeded fault injector applied to every journal and manifest write
    /// path (chaos testing). `None` in production.
    pub disk_fault: Option<DiskFault>,
    /// Admission deadline: a campaign still *queued* after this long is
    /// shed (typed `failed`, message prefixed `shed:`) instead of run —
    /// under sustained overload the queue serves fresh work, not a
    /// graveyard of submissions whose clients gave up long ago. `None`
    /// disables shedding (queued work waits indefinitely).
    pub admission_timeout: Option<Duration>,
    /// Per-client admission rate limit (token bucket), keyed by client
    /// address via [`Scheduler::submit_from`]. `None` disables.
    pub rate_limit: Option<RateLimit>,
    /// Whether concurrent campaigns share a cross-campaign evaluation
    /// dedup store (one store per `(bench, corners, solver)` identity):
    /// identical points are simulated once and the result is handed to
    /// every waiting campaign. Never changes results — only who computes
    /// them.
    pub dedup: bool,
}

/// Token-bucket admission rate limit, applied per client.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Sustained admissions per second per client.
    pub per_sec: f64,
    /// Burst allowance (bucket capacity).
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `per_sec` sustained submissions with a burst of twice
    /// that (at least 1).
    pub fn per_sec(per_sec: f64) -> RateLimit {
        let per_sec = per_sec.max(f64::MIN_POSITIVE);
        RateLimit { per_sec, burst: (per_sec * 2.0).max(1.0) }
    }
}

/// One client's token bucket.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_capacity: 64,
            max_active: 4,
            thread_budget: 1,
            journal_dir: PathBuf::from("journals"),
            workers: 0,
            worker_program: None,
            recover: true,
            disk_fault: None,
            admission_timeout: None,
            rate_limit: None,
            dedup: true,
        }
    }
}

/// Why the scheduler could not start.
#[derive(Debug)]
pub enum StartError {
    /// Another live process owns the journal directory.
    Lock(LockError),
    /// The campaign manifest could not be opened or replayed.
    Manifest(ManifestError),
    /// The journal directory could not be created.
    Io(std::io::Error),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Lock(e) => write!(f, "{e}"),
            StartError::Manifest(e) => write!(f, "{e}"),
            StartError::Io(e) => write!(f, "journal directory error: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl From<std::io::Error> for StartError {
    fn from(e: std::io::Error) -> Self {
        StartError::Io(e)
    }
}

/// Lifecycle of one campaign inside the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Waiting for a runner.
    Queued,
    /// A runner is executing it.
    Running,
    /// Finished; the outcome is available.
    Completed,
    /// Stopped by a drain; the journal is checkpointed and resumable.
    Interrupted,
    /// Could not run (bad spec, journal error, runtime error).
    Failed,
}

impl CampaignStatus {
    /// Stable lowercase label for the wire protocol.
    pub fn label(self) -> &'static str {
        match self {
            CampaignStatus::Queued => "queued",
            CampaignStatus::Running => "running",
            CampaignStatus::Completed => "completed",
            CampaignStatus::Interrupted => "interrupted",
            CampaignStatus::Failed => "failed",
        }
    }

    /// Whether the campaign will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            CampaignStatus::Completed | CampaignStatus::Interrupted | CampaignStatus::Failed
        )
    }
}

/// Progress lines kept per campaign; older lines are dropped.
const MAX_PROGRESS_LINES: usize = 10_000;

/// Shared state of one campaign, visible to runners and status queries.
#[derive(Debug)]
pub struct CampaignRecord {
    /// Campaign id (also the journal file stem).
    pub id: String,
    spec: Mutex<CampaignSpec>,
    status: Mutex<CampaignStatus>,
    progress: Mutex<VecDeque<String>>,
    outcome: Mutex<Option<Result<CampaignOutcome, String>>>,
    /// `(replayed, recorded)` journal telemetry after the run.
    journal_info: Mutex<Option<(usize, usize)>>,
    /// Terminal summary replayed from the manifest for a campaign that
    /// finished under a *previous* daemon. The full outcome object died
    /// with that process; the durable headline numbers did not.
    recovered: Mutex<Option<TerminalRecord>>,
    cancel: CancelToken,
    share: Arc<AtomicUsize>,
    /// When the record entered the queue; the admission-deadline shed
    /// clock.
    admitted: Instant,
}

impl CampaignRecord {
    fn new(id: String, spec: CampaignSpec) -> Arc<CampaignRecord> {
        Arc::new(CampaignRecord {
            id,
            spec: Mutex::new(spec),
            status: Mutex::new(CampaignStatus::Queued),
            progress: Mutex::new(VecDeque::new()),
            outcome: Mutex::new(None),
            journal_info: Mutex::new(None),
            recovered: Mutex::new(None),
            cancel: CancelToken::new(),
            share: Arc::new(AtomicUsize::new(0)),
            admitted: Instant::now(),
        })
    }

    /// Current status.
    pub fn status(&self) -> CampaignStatus {
        *self.status.lock().unwrap()
    }

    /// The effective spec (journal metadata wins over the submission on
    /// resume).
    pub fn spec(&self) -> CampaignSpec {
        self.spec.lock().unwrap().clone()
    }

    /// A snapshot of the retained progress lines.
    pub fn progress_lines(&self) -> Vec<String> {
        self.progress.lock().unwrap().iter().cloned().collect()
    }

    /// The outcome, once terminal.
    pub fn outcome(&self) -> Option<Result<CampaignOutcome, String>> {
        self.outcome.lock().unwrap().clone()
    }

    /// `(replayed, recorded)` journal telemetry, once the journal has
    /// been checkpointed.
    pub fn journal_info(&self) -> Option<(usize, usize)> {
        *self.journal_info.lock().unwrap()
    }

    /// The manifest's terminal summary, for a campaign that finished
    /// under a previous daemon and was re-exposed by boot-time recovery.
    pub fn recovered_summary(&self) -> Option<TerminalRecord> {
        self.recovered.lock().unwrap().clone()
    }

    fn set_status(&self, status: CampaignStatus) {
        *self.status.lock().unwrap() = status;
    }

    fn push_progress(&self, line: String) {
        let mut lines = self.progress.lock().unwrap();
        if lines.len() == MAX_PROGRESS_LINES {
            lines.pop_front();
        }
        lines.push_back(line);
    }
}

#[derive(Debug, Default)]
struct Inner {
    queue: VecDeque<Arc<CampaignRecord>>,
    active: Vec<Arc<CampaignRecord>>,
    registry: BTreeMap<String, Arc<CampaignRecord>>,
    draining: bool,
    next_id: usize,
    finished_eval: EvalStats,
    finished_health: HealthStats,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full; retry later.
    QueueFull,
    /// The daemon is draining and accepts no new work.
    Draining,
    /// A campaign with this id is already queued or running.
    Conflict(String),
    /// The spec failed validation.
    Invalid(String),
    /// Boot-time recovery is still replaying the manifest; retry later.
    Recovering,
    /// The admission could not be made durable (manifest write failed);
    /// nothing was admitted.
    Storage(String),
    /// The client exceeded its admission rate limit; retry after the
    /// given number of seconds.
    RateLimited {
        /// Seconds until the client's token bucket refills one token.
        retry_after: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue is full"),
            SubmitError::Draining => write!(f, "daemon is draining"),
            SubmitError::Conflict(id) => write!(f, "campaign {id:?} is already in flight"),
            SubmitError::Invalid(msg) => write!(f, "{msg}"),
            SubmitError::Recovering => write!(f, "daemon is recovering; retry shortly"),
            SubmitError::Storage(msg) => write!(f, "admission not durable: {msg}"),
            SubmitError::RateLimited { retry_after } => {
                write!(f, "rate limited; retry in {retry_after}s")
            }
        }
    }
}

/// The multi-campaign scheduler. Create with [`Scheduler::start`]; shut
/// down with [`Scheduler::drain`].
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
    inner: Mutex<Inner>,
    work_cv: Condvar,
    done_cv: Condvar,
    metrics: Arc<Metrics>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Exclusive fence on the journal directory; released on drain so a
    /// successor daemon can take over immediately.
    lock: Mutex<Option<DirLock>>,
    /// The write-ahead campaign manifest (`manifest.log`).
    manifest: Mutex<Manifest>,
    /// `false` until boot-time recovery has replayed the manifest;
    /// `/readyz` and admission key off this.
    ready: AtomicBool,
    /// Per-client admission token buckets ([`Scheduler::submit_from`]).
    buckets: Mutex<HashMap<String, Bucket>>,
    /// Cross-campaign evaluation dedup stores, one per
    /// `(bench, corners, solver)` identity. The store key inside is
    /// `(point bits, corner index, attempt cap)` — a pure function of the
    /// evaluation — so sharing is only ever between campaigns whose
    /// evaluations are bitwise interchangeable.
    stores: Mutex<HashMap<(String, String, String), Arc<EvalStore>>>,
}

impl Scheduler {
    /// Fences the journal directory, opens and replays the campaign
    /// manifest, spawns `max_active` runner threads, and kicks off
    /// boot-time recovery (on its own thread, so the HTTP front end can
    /// answer `/readyz` 503 while the replay runs).
    ///
    /// # Errors
    ///
    /// * [`StartError::Lock`] when another live process owns the
    ///   directory.
    /// * [`StartError::Manifest`] when the manifest is corrupt.
    /// * [`StartError::Io`] when the directory cannot be created.
    pub fn start(
        cfg: SchedulerConfig,
        metrics: Arc<Metrics>,
    ) -> Result<Arc<Scheduler>, StartError> {
        std::fs::create_dir_all(&cfg.journal_dir)?;
        let lock = DirLock::acquire(&cfg.journal_dir).map_err(StartError::Lock)?;
        let manifest_path = cfg.journal_dir.join(MANIFEST_FILE_NAME);
        let (mut manifest, replayed) =
            Manifest::open(&manifest_path).map_err(StartError::Manifest)?;
        if let Some(fault) = cfg.disk_fault {
            manifest = manifest.with_disk_fault(fault);
        }
        let scheduler = Arc::new(Scheduler {
            cfg: cfg.clone(),
            inner: Mutex::new(Inner::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            metrics,
            workers: Mutex::new(Vec::new()),
            lock: Mutex::new(Some(lock)),
            manifest: Mutex::new(manifest),
            ready: AtomicBool::new(false),
            buckets: Mutex::new(HashMap::new()),
            stores: Mutex::new(HashMap::new()),
        });
        let mut workers = scheduler.workers.lock().unwrap();
        for i in 0..cfg.max_active.max(1) {
            let me = Arc::clone(&scheduler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("asdex-runner-{i}"))
                    .spawn(move || me.runner_loop())
                    .expect("spawn runner thread"),
            );
        }
        let entries = if cfg.recover { replayed } else { Vec::new() };
        if entries.is_empty() {
            // Nothing to replay: ready immediately, no recovery thread
            // (keeps fresh-directory startups race-free for callers that
            // submit right away).
            scheduler.ready.store(true, Ordering::SeqCst);
        } else {
            let me = Arc::clone(&scheduler);
            workers.push(
                std::thread::Builder::new()
                    .name("asdex-recovery".to_string())
                    .spawn(move || me.recover(entries))
                    .expect("spawn recovery thread"),
            );
        }
        drop(workers);
        Ok(scheduler)
    }

    /// Boot-time recovery: replay the manifest's campaigns — re-expose
    /// the durably finished ones, re-admit everything else — then flip
    /// the readiness flag.
    fn recover(self: Arc<Self>, entries: Vec<ManifestCampaign>) {
        let started = Instant::now();
        let total = entries.len();
        let mut readmitted = 0usize;
        for entry in entries {
            let record = CampaignRecord::new(entry.id.clone(), entry.spec);
            let mut inner = self.inner.lock().unwrap();
            // Keep generated ids (`c%04d`) from colliding with recovered
            // ones.
            if let Some(n) = entry
                .id
                .strip_prefix('c')
                .filter(|d| d.len() == 4)
                .and_then(|d| d.parse::<usize>().ok())
            {
                inner.next_id = inner.next_id.max(n);
            }
            match entry.phase {
                ManifestPhase::Terminal(t) if t.is_final() => {
                    if t.status == "failed" {
                        let msg =
                            t.error.clone().unwrap_or_else(|| "failed (no recorded error)".into());
                        *record.outcome.lock().unwrap() = Some(Err(msg));
                        record.set_status(CampaignStatus::Failed);
                    } else {
                        record.set_status(CampaignStatus::Completed);
                    }
                    *record.recovered.lock().unwrap() = Some(t);
                    inner.registry.insert(entry.id, record);
                }
                _ if inner.draining => {
                    // Drained before recovery finished: the manifest keeps
                    // these incomplete; the *next* boot re-admits them.
                    record.set_status(CampaignStatus::Interrupted);
                    self.metrics.campaigns_interrupted.fetch_add(1, Ordering::Relaxed);
                    inner.registry.insert(entry.id, record);
                }
                _ => {
                    readmitted += 1;
                    logging::info(format!(
                        "recovery: re-admitting incomplete campaign {}",
                        entry.id
                    ));
                    inner.registry.insert(entry.id, Arc::clone(&record));
                    inner.queue.push_back(record);
                    self.metrics.campaigns_submitted.fetch_add(1, Ordering::Relaxed);
                    drop(inner);
                    self.work_cv.notify_one();
                }
            }
        }
        self.metrics.recovered_campaigns.fetch_add(readmitted as u64, Ordering::Relaxed);
        self.metrics
            .recovery_us
            .store(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        self.ready.store(true, Ordering::SeqCst);
        logging::info(format!(
            "recovery: replayed {total} campaign(s), re-admitted {readmitted}, ready in {:?}",
            started.elapsed()
        ));
    }

    /// Whether boot-time recovery has finished (`/readyz` truth source).
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst)
    }

    /// Netlist admission. An inline deck (`spec.netlist`) is compiled —
    /// failure is typed [`SubmitError::Invalid`] — then persisted
    /// content-addressed at `<journal_dir>/netlists/<digest>.sp`, and the
    /// spec is rewritten to `bench = netlist:<that path>` with the digest
    /// pinned, so journals, the manifest, boot recovery, and worker
    /// processes all re-compile the identical source. A path-addressed
    /// `netlist:<path>` bench submitted without a digest gets its digest
    /// pinned here for the same reason.
    fn admit_netlist(&self, spec: &mut CampaignSpec) -> Result<(), SubmitError> {
        if let Some(source) = spec.netlist.take() {
            let deck = NetlistBench::compile(&source)
                .map_err(|e| SubmitError::Invalid(e.to_string()))?;
            let digest = deck.digest();
            let dir = self.cfg.journal_dir.join("netlists");
            std::fs::create_dir_all(&dir).map_err(|e| SubmitError::Storage(e.to_string()))?;
            let path = dir.join(format!("{digest:016x}.sp"));
            if !path.exists() {
                // Temp-file + rename: a crash mid-write can never leave a
                // half deck at the content-addressed name.
                let tmp = dir.join(format!("{digest:016x}.sp.tmp.{}", std::process::id()));
                std::fs::write(&tmp, &source)
                    .and_then(|()| std::fs::rename(&tmp, &path))
                    .map_err(|e| SubmitError::Storage(e.to_string()))?;
            }
            spec.bench = format!("netlist:{}", path.display());
            spec.netlist_digest = Some(digest);
        } else if let Some(path) = spec.bench.strip_prefix("netlist:") {
            if spec.netlist_digest.is_none() && !path.is_empty() {
                let deck = NetlistBench::load(std::path::Path::new(path))
                    .map_err(|e| SubmitError::Invalid(e.to_string()))?;
                spec.netlist_digest = Some(deck.digest());
            }
        }
        if let Some(path) = spec.bench.strip_prefix("netlist:") {
            // Journal metadata and manifest records are whitespace-free
            // `key=value` tokens; a path these would mangle cannot be made
            // durable, so reject it typed at admission.
            if path.contains(char::is_whitespace) || path.contains('=') {
                return Err(SubmitError::Invalid(format!(
                    "netlist path {path:?} contains whitespace or '=' and cannot be journaled"
                )));
            }
        }
        Ok(())
    }

    /// Admits a campaign. With an explicit id whose journal file already
    /// exists, the campaign *resumes* from that journal. Returns the
    /// (possibly generated) campaign id.
    pub fn submit(
        &self,
        id: Option<String>,
        mut spec: CampaignSpec,
    ) -> Result<String, SubmitError> {
        // Inline netlists are compiled and persisted before anything else:
        // a deck that does not compile is a typed Invalid (HTTP 400), and
        // an admitted one is rewritten to a durable `netlist:<path>` bench
        // plus its source digest.
        self.admit_netlist(&mut spec)?;
        // Validate the vocabulary up front so the queue only holds
        // runnable work. For netlist benches this re-compiles the
        // persisted deck against the pinned digest.
        build_problem_checked(&spec.bench, &spec.corners, spec.netlist_digest)
            .map_err(SubmitError::Invalid)?;
        if !matches!(spec.agent.as_str(), "trm" | "bo" | "random") {
            return Err(SubmitError::Invalid(format!(
                "unknown agent {:?} (trm|bo|random)",
                spec.agent
            )));
        }

        // Admission is one critical section: the drain flag, the
        // queue-capacity check, the duplicate-id check, and the
        // registry/queue insertion all happen under a single `inner`
        // lock, and runners publish terminal statuses under that same
        // lock — so two racing clients can never both pass the capacity
        // check for one slot, and a resubmitted id is admitted only once
        // its previous run has fully left the active set.
        let mut inner = self.inner.lock().unwrap();
        if !self.ready.load(Ordering::SeqCst) {
            // Recovery replay has exclusive admission rights: a client
            // submission racing with the re-admission of the same id
            // could otherwise put two writers on one journal.
            self.metrics.shed_unavailable.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Recovering);
        }
        if inner.draining {
            self.metrics.shed_unavailable.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.cfg.queue_capacity {
            self.metrics.campaigns_rejected.fetch_add(1, Ordering::Relaxed);
            self.metrics.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull);
        }
        let id = match id {
            Some(id) => {
                if inner.registry.get(&id).is_some_and(|r| !r.status().is_terminal()) {
                    return Err(SubmitError::Conflict(id));
                }
                id
            }
            None => loop {
                inner.next_id += 1;
                let candidate = format!("c{:04}", inner.next_id);
                if !inner.registry.contains_key(&candidate) {
                    break candidate;
                }
            },
        };
        // Write-ahead: the admission record is fsync'd to the manifest
        // BEFORE the registry/queue insertion, so an admission the client
        // saw acknowledged can never be forgotten by a crash. If the
        // record cannot land, nothing is admitted.
        if let Err(e) = self.manifest.lock().unwrap().append_admitted(&id, &spec) {
            self.metrics.storage_errors.fetch_add(1, Ordering::Relaxed);
            logging::info(format!("scheduler: admission of {id} not durable: {e}"));
            return Err(SubmitError::Storage(e.to_string()));
        }
        let record = CampaignRecord::new(id.clone(), spec);
        inner.registry.insert(id.clone(), Arc::clone(&record));
        inner.queue.push_back(record);
        self.metrics.campaigns_submitted.fetch_add(1, Ordering::Relaxed);
        logging::debug(format!("scheduler: queued campaign {id}"));
        drop(inner);
        self.work_cv.notify_one();
        Ok(id)
    }

    /// [`Scheduler::submit`] on behalf of a named client, applying the
    /// per-client admission rate limit first. `None` (no client identity,
    /// e.g. in-process submission) bypasses the limiter.
    pub fn submit_from(
        &self,
        client: Option<&str>,
        id: Option<String>,
        spec: CampaignSpec,
    ) -> Result<String, SubmitError> {
        if let (Some(limit), Some(client)) = (self.cfg.rate_limit, client) {
            if let Err(retry_after) = self.take_token(client, limit) {
                self.metrics.shed_rate_limit.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::RateLimited { retry_after });
            }
        }
        self.submit(id, spec)
    }

    /// Takes one token from `client`'s bucket, refilling by elapsed time
    /// first. On an empty bucket, returns the whole seconds until one
    /// token accrues.
    fn take_token(&self, client: &str, limit: RateLimit) -> Result<(), u64> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        // The map is bounded: under address-spoofing-scale client churn,
        // drop buckets that have refilled to full (forgetting one loses
        // nothing — a full bucket is the initial state).
        if buckets.len() >= 4096 {
            buckets.retain(|_, b| {
                b.tokens + now.duration_since(b.refilled).as_secs_f64() * limit.per_sec
                    < limit.burst
            });
        }
        let bucket = buckets
            .entry(client.to_string())
            .or_insert(Bucket { tokens: limit.burst, refilled: now });
        let elapsed = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * limit.per_sec).min(limit.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(((1.0 - bucket.tokens) / limit.per_sec).ceil().max(1.0) as u64)
        }
    }

    /// The `Retry-After` hint for shed responses: scales with queue
    /// pressure (roughly the queue's depth in units of the active-slot
    /// count), clamped to `[1, 30]` seconds.
    pub fn retry_after_secs(&self) -> u64 {
        let queued = self.inner.lock().unwrap().queue.len();
        (1 + queued / self.cfg.max_active.max(1)).clamp(1, 30) as u64
    }

    /// Merged statistics of every cross-campaign dedup store.
    pub fn dedup_stats(&self) -> EvalStoreStats {
        let mut total = EvalStoreStats::default();
        for store in self.stores.lock().unwrap().values() {
            let s = store.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.aborts += s.aborts;
            total.bypasses += s.bypasses;
            total.entries += s.entries;
        }
        total
    }

    /// The dedup store for a campaign's evaluation identity. The
    /// corner-set name is part of the key: the store is indexed by corner
    /// *index*, which only means the same thing within one named corner
    /// list.
    fn store_for(&self, spec: &CampaignSpec) -> Arc<EvalStore> {
        let key = (spec.bench.clone(), spec.corners.clone(), spec.solver.clone());
        Arc::clone(self.stores.lock().unwrap().entry(key).or_insert_with(EvalStore::shared))
    }

    /// Looks up a campaign by id.
    pub fn get(&self, id: &str) -> Option<Arc<CampaignRecord>> {
        self.inner.lock().unwrap().registry.get(id).cloned()
    }

    /// Blocks until the campaign reaches a terminal status or the timeout
    /// expires. Returns `true` if it finished.
    pub fn wait(&self, id: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.registry.get(id) {
                Some(r) if r.status().is_terminal() => return true,
                Some(_) => {}
                None => return false,
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.done_cv.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Point-in-time gauges for `/metrics`.
    pub fn gauges(&self) -> SchedulerGauges {
        let dedup = self.dedup_stats();
        let inner = self.inner.lock().unwrap();
        SchedulerGauges {
            queue_depth: inner.queue.len(),
            active_campaigns: inner.active.len(),
            thread_budget: self.cfg.thread_budget,
            eval: inner.finished_eval.clone(),
            health: inner.finished_health,
            dedup,
        }
    }

    /// Whether a drain has been initiated.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().unwrap().draining
    }

    /// Graceful shutdown: stop admission, mark queued campaigns
    /// interrupted, pull every active campaign's cancel token, and join
    /// the runners (each checkpoints its journal on the way out).
    /// Idempotent; later calls return immediately.
    pub fn drain(&self) {
        {
            let mut inner = self.inner.lock().unwrap();
            if inner.draining {
                drop(inner);
                self.join_workers();
                self.release_lock();
                return;
            }
            inner.draining = true;
            while let Some(job) = inner.queue.pop_front() {
                job.set_status(CampaignStatus::Interrupted);
                self.metrics.campaigns_interrupted.fetch_add(1, Ordering::Relaxed);
                // Best-effort: the standing `A` record already marks the
                // campaign incomplete, so a failed append changes nothing
                // about the next boot's recovery decision.
                if let Err(e) = self
                    .manifest
                    .lock()
                    .unwrap()
                    .append_terminal(&job.id, &TerminalRecord::interrupted(0))
                {
                    self.metrics.storage_errors.fetch_add(1, Ordering::Relaxed);
                    logging::info(format!(
                        "campaign {}: interrupted record not durable: {e}",
                        job.id
                    ));
                }
            }
            for job in &inner.active {
                job.cancel.cancel();
            }
            logging::info(format!(
                "scheduler: draining ({} active campaign(s) cancelled)",
                inner.active.len()
            ));
        }
        self.work_cv.notify_all();
        self.done_cv.notify_all();
        self.join_workers();
        self.release_lock();
        logging::info("scheduler: drained");
    }

    /// Releases the journal-directory fence so a successor (next daemon,
    /// CLI resume) can take over without waiting for this process to
    /// exit.
    fn release_lock(&self) {
        *self.lock.lock().unwrap() = None;
    }

    fn join_workers(&self) {
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Splits the thread budget across the active set: every campaign
    /// gets at least one thread; the remainder goes to the
    /// earliest-started campaigns. Shares are plain atomics that each
    /// campaign's `evaluate_batch` re-reads, so this takes effect at the
    /// next batch boundary.
    fn rebalance(inner: &Inner, thread_budget: usize) {
        let n = inner.active.len();
        if n == 0 {
            return;
        }
        let base = (thread_budget / n).max(1);
        let extra = if thread_budget >= n { thread_budget % n } else { 0 };
        for (i, job) in inner.active.iter().enumerate() {
            job.share.store(base + usize::from(i < extra), Ordering::SeqCst);
        }
    }

    /// Sheds a queued campaign whose admission deadline passed: typed
    /// terminal `failed` with a `shed:` message, durably recorded, never
    /// run. Called with the `inner` lock held so the terminal status
    /// publishes under the same critical section admission reads.
    fn shed_queued(
        &self,
        _inner: &mut Inner,
        job: &Arc<CampaignRecord>,
        waited: Duration,
        limit: Duration,
    ) {
        let msg = format!(
            "shed: admission deadline exceeded (queued {waited:.1?} > limit {limit:.1?})"
        );
        if let Err(e) = self.manifest.lock().unwrap().append_terminal(&job.id, &TerminalRecord::failed(&msg))
        {
            self.metrics.storage_errors.fetch_add(1, Ordering::Relaxed);
            logging::info(format!("campaign {}: shed record not durable: {e}", job.id));
        }
        *job.outcome.lock().unwrap() = Some(Err(msg.clone()));
        job.set_status(CampaignStatus::Failed);
        self.metrics.campaigns_failed.fetch_add(1, Ordering::Relaxed);
        self.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
        logging::info(format!("campaign {}: {msg}", job.id));
    }

    fn runner_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(job) = inner.queue.pop_front() {
                        // Deadline propagation: work whose admission
                        // deadline already passed is shed typed, not run —
                        // its client has long since timed out, and running
                        // it would only delay work that can still matter.
                        if let Some(limit) = self.cfg.admission_timeout {
                            let waited = job.admitted.elapsed();
                            if waited > limit {
                                self.shed_queued(&mut inner, &job, waited, limit);
                                self.done_cv.notify_all();
                                continue;
                            }
                        }
                        inner.active.push(Arc::clone(&job));
                        Scheduler::rebalance(&inner, self.cfg.thread_budget);
                        break job;
                    }
                    if inner.draining {
                        return;
                    }
                    inner = self.work_cv.wait(inner).unwrap();
                }
            };

            let (result, status) = self.run_one(&job);

            // The terminal manifest record is written *before* the status
            // is published: once a client can observe "completed", the
            // observation survives any crash. An append failure is logged
            // and counted, never fatal — the in-memory outcome stays
            // served, and the next boot simply re-runs the campaign from
            // its journal (zero duplicate simulations, same outcome).
            let terminal = match (&result, status) {
                (Ok(outcome), CampaignStatus::Completed) => TerminalRecord::completed(
                    outcome.success,
                    outcome.simulations,
                    outcome.best_value,
                    &outcome_json(outcome).dump(),
                ),
                (Ok(outcome), _) => TerminalRecord::interrupted(outcome.simulations),
                (Err(msg), _) => TerminalRecord::failed(msg),
            };

            {
                // Publish the terminal status and leave the active set in
                // ONE `inner` critical section. Admission reads both under
                // the same lock, so there is no window where a racing
                // `submit` of the same id sees a terminal status (and
                // admits a resume) while this record still occupies an
                // active slot — the check-then-act race that could put two
                // writers on one journal.
                let mut inner = self.inner.lock().unwrap();
                if let Err(e) = self.manifest.lock().unwrap().append_terminal(&job.id, &terminal)
                {
                    self.metrics.storage_errors.fetch_add(1, Ordering::Relaxed);
                    logging::info(format!(
                        "campaign {}: terminal record not durable ({e}); \
                         the next boot re-runs it from the journal",
                        job.id
                    ));
                }
                if let Ok(outcome) = &result {
                    inner.finished_eval.merge(&outcome.stats);
                    inner.finished_health.merge(&outcome.health);
                }
                *job.outcome.lock().unwrap() = Some(result);
                job.set_status(status);
                inner.active.retain(|j| !Arc::ptr_eq(j, &job));
                Scheduler::rebalance(&inner, self.cfg.thread_budget);
            }
            self.done_cv.notify_all();
        }
    }

    /// Runs one campaign end to end: open-or-resume the journal, build
    /// the problem, search, checkpoint, classify the ending. The caller
    /// (the runner loop) publishes the returned outcome and status
    /// atomically with the active-set removal.
    fn run_one(
        &self,
        job: &Arc<CampaignRecord>,
    ) -> (Result<CampaignOutcome, String>, CampaignStatus) {
        job.set_status(CampaignStatus::Running);
        // Write-ahead for the running transition too; a campaign whose
        // lifecycle cannot be recorded fails typed instead of running
        // off the books.
        let durable = self.manifest.lock().unwrap().append_running(&job.id);
        let result = match durable {
            Ok(()) => self.run_inner(job),
            Err(e) => {
                self.metrics.storage_errors.fetch_add(1, Ordering::Relaxed);
                Err(format!("running transition not durable: {e}"))
            }
        };
        if let Ok(outcome) = &result {
            // Evaluations that storage faults kept out of the journal:
            // survived (the run kept going) but counted.
            let drops = outcome.stats.journal_drops as u64;
            if drops > 0 {
                self.metrics.storage_errors.fetch_add(drops, Ordering::Relaxed);
            }
        }
        let cancelled = job.cancel.is_cancelled();
        let status = match &result {
            Ok(_) if cancelled => CampaignStatus::Interrupted,
            Ok(_) => CampaignStatus::Completed,
            Err(_) => CampaignStatus::Failed,
        };
        match status {
            CampaignStatus::Completed => {
                self.metrics.campaigns_completed.fetch_add(1, Ordering::Relaxed);
            }
            CampaignStatus::Interrupted => {
                self.metrics.campaigns_interrupted.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.metrics.campaigns_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Err(msg) = &result {
            logging::info(format!("campaign {}: failed: {msg}", job.id));
        } else {
            logging::info(format!("campaign {}: {}", job.id, status.label()));
        }
        (result, status)
    }

    fn run_inner(&self, job: &Arc<CampaignRecord>) -> Result<CampaignOutcome, String> {
        let journal_path = self.cfg.journal_dir.join(format!("{}.journal", job.id));
        let submitted = job.spec();
        let journal = if journal_path.exists() {
            let journal = Journal::resume(&journal_path, submitted.checkpoint_every)
                .map_err(|e| e.to_string())?;
            let restored = CampaignSpec::from_meta(journal.meta())?;
            logging::info(format!(
                "campaign {}: resuming journal {} ({} recorded evaluations to replay)",
                job.id,
                journal_path.display(),
                journal.recorded()
            ));
            *job.spec.lock().unwrap() = restored;
            journal
        } else {
            Journal::create(&journal_path, submitted.to_meta(), submitted.checkpoint_every)
                .map_err(|e| e.to_string())?
        };
        let journal = match self.cfg.disk_fault {
            Some(fault) => journal.with_disk_fault(fault),
            None => journal,
        };

        let spec = job.spec();
        // The solver choice is part of the campaign identity (pinned by
        // the journal on resume): apply it before any evaluation runs.
        let solver = asdex_spice::analysis::SolverChoice::from_label(&spec.solver)
            .ok_or_else(|| format!("campaign spec has unknown solver {:?}", spec.solver))?;
        // For `netlist:` benches the digest pinned at admission (and
        // restored from the journal on resume) must still match the deck
        // on disk — an edited netlist is a typed failure, never a silent
        // different campaign.
        let mut problem = build_problem_checked(&spec.bench, &spec.corners, spec.netlist_digest)?
            .with_solver(solver)
            .with_journal(journal)
            .with_cancel_token(job.cancel.clone())
            .with_thread_share(Arc::clone(&job.share));

        // Cross-campaign dedup: concurrent campaigns with the same
        // evaluation identity share results through a single-flight
        // store. Journal replay still has precedence (a replayed point
        // never reaches the store), and waiters fold shared results
        // through the same finalize path as locally computed ones, so
        // outcomes stay bitwise identical to a store-less run.
        if self.cfg.dedup {
            problem = problem.with_eval_store(self.store_for(&spec));
        }

        // Process isolation: route every evaluation attempt through a
        // supervised pool of `asdex worker` children. The pool's fallback
        // evaluator is the problem's own, so even a pool that loses every
        // worker degrades to in-process execution with an identical
        // outcome.
        let pool = if self.cfg.workers > 0 {
            let program = match &self.cfg.worker_program {
                Some(program) => program.clone(),
                None => std::env::current_exe()
                    .map_err(|e| format!("cannot locate the worker binary: {e}"))?,
            };
            let mut pool_cfg =
                WorkerPoolConfig::new(program, &spec.bench, &spec.corners, self.cfg.workers);
            pool_cfg.solver = spec.solver.clone();
            pool_cfg.netlist_digest = spec.netlist_digest;
            let pool =
                WorkerPool::for_problem(pool_cfg, &problem, Arc::clone(&self.metrics.workers));
            problem = problem.with_dispatcher(pool.clone());
            Some(pool)
        } else {
            None
        };

        let sink_job = Arc::clone(job);
        let progress = ProgressHandle::new(Arc::new(move |event: &ProgressEvent| {
            sink_job.push_progress(event.to_string());
        }));

        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_campaign(&problem, &spec, Some(progress))
        }));

        if let Some(pool) = pool {
            pool.shutdown();
        }

        // Checkpoint whatever the journal holds — on success, on error,
        // and especially on drain — before classifying the result.
        if let Some(handle) = problem.journal_handle() {
            if let Ok(mut j) = handle.lock() {
                j.checkpoint().map_err(|e| {
                    if matches!(e, JournalError::Storage { .. }) {
                        self.metrics.storage_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    format!("journal checkpoint failed: {e}")
                })?;
                *job.journal_info.lock().unwrap() = Some((j.replayed(), j.recorded()));
                logging::debug(format!(
                    "campaign {}: journal {} ({} replayed, {} recorded)",
                    job.id,
                    j.path().display(),
                    j.replayed(),
                    j.recorded()
                ));
            }
        }

        match run {
            Ok(result) => result,
            Err(_) => Err("campaign runner panicked".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("asdex-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_spec(seed: u64) -> CampaignSpec {
        CampaignSpec { bench: "bowl2".into(), seed, budget: 300, ..CampaignSpec::default() }
    }

    #[test]
    fn runs_campaigns_to_completion() {
        let dir = temp_dir("basic");
        let scheduler = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let id = scheduler.submit(None, quick_spec(7)).unwrap();
        assert!(scheduler.wait(&id, Duration::from_secs(60)));
        let record = scheduler.get(&id).unwrap();
        assert_eq!(record.status(), CampaignStatus::Completed);
        let outcome = record.outcome().unwrap().unwrap();
        assert!(outcome.success);
        assert!(!record.progress_lines().is_empty());
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_specs_are_rejected_at_admission() {
        let dir = temp_dir("invalid");
        let scheduler = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let bad_bench = CampaignSpec { bench: "nope".into(), ..CampaignSpec::default() };
        assert!(matches!(scheduler.submit(None, bad_bench), Err(SubmitError::Invalid(_))));
        let bad_agent = CampaignSpec { agent: "dqn".into(), ..quick_spec(1) };
        assert!(matches!(scheduler.submit(None, bad_agent), Err(SubmitError::Invalid(_))));
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inline_netlists_compile_at_admission_and_run() {
        let deck = "rc sizing demo\n.process 45\n.sizeparam rser 1e3 1e5 STEP 8\n\
                    .goal gain_db >= -60\nVDD vdd 0 {vdd}\nVIN in 0 DC 0.5 AC 1\n\
                    RS in out {rser}\nRL vdd out 1e3\nC1 out 0 1e-9\n.end\n";
        let dir = temp_dir("netlist");
        let scheduler = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();

        // A deck that does not compile is rejected typed at admission.
        let bad = CampaignSpec {
            netlist: Some("broken deck\n.sizeparam\n.end\n".to_string()),
            ..CampaignSpec::default()
        };
        assert!(matches!(scheduler.submit(None, bad), Err(SubmitError::Invalid(_))));

        // A good inline deck is persisted content-addressed and runs.
        let spec = CampaignSpec {
            netlist: Some(deck.to_string()),
            agent: "random".to_string(),
            budget: 25,
            ..CampaignSpec::default()
        };
        let id = scheduler.submit(None, spec).unwrap();
        assert!(scheduler.wait(&id, Duration::from_secs(120)));
        let record = scheduler.get(&id).unwrap();
        assert_eq!(record.status(), CampaignStatus::Completed);
        let stored = record.spec();
        let digest = asdex_env::netlist_digest(deck);
        assert_eq!(stored.netlist_digest, Some(digest));
        assert!(stored.netlist.is_none(), "inline source must not be retained");
        let path = stored.bench.strip_prefix("netlist:").expect("rewritten bench").to_string();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), deck, "persisted source");

        // An edited deck no longer matches the pinned digest: typed
        // rejection, not a silently different campaign.
        std::fs::write(&path, deck.replace("1e3", "2e3")).unwrap();
        let resubmit = CampaignSpec {
            bench: stored.bench.clone(),
            netlist_digest: Some(digest),
            agent: "random".to_string(),
            budget: 25,
            ..CampaignSpec::default()
        };
        match scheduler.submit(Some(id.clone()), resubmit) {
            Err(SubmitError::Invalid(msg)) => assert!(msg.contains("digest"), "{msg}"),
            other => panic!("edited netlist must be rejected, got {other:?}"),
        }
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_capacity_bounds_admission() {
        let dir = temp_dir("capacity");
        // Single slow runner, capacity 1: with the runner busy, one spec
        // queues and the next is rejected.
        let scheduler = Scheduler::start(
            SchedulerConfig {
                queue_capacity: 1,
                max_active: 1,
                journal_dir: dir.clone(),
                ..SchedulerConfig::default()
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let mut rejected = false;
        let mut ids = Vec::new();
        for seed in 0..8 {
            match scheduler.submit(None, quick_spec(seed)) {
                Ok(id) => ids.push(id),
                Err(SubmitError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected, "a bounded queue must reject eventually");
        for id in &ids {
            assert!(scheduler.wait(id, Duration::from_secs(60)));
        }
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_inflight_ids_conflict() {
        let dir = temp_dir("conflict");
        let scheduler = Scheduler::start(
            SchedulerConfig { max_active: 1, journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        scheduler.submit(Some("dup".into()), quick_spec(1)).unwrap();
        let second = scheduler.submit(Some("dup".into()), quick_spec(1));
        assert!(matches!(second, Err(SubmitError::Conflict(_))));
        assert!(scheduler.wait("dup", Duration::from_secs(60)));
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_interrupts_queued_work_and_rejects_new() {
        let dir = temp_dir("drain");
        let scheduler = Scheduler::start(
            SchedulerConfig {
                max_active: 1,
                journal_dir: dir.clone(),
                ..SchedulerConfig::default()
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let ids: Vec<String> =
            (0..4).map(|s| scheduler.submit(None, quick_spec(s)).unwrap()).collect();
        scheduler.drain();
        assert!(matches!(scheduler.submit(None, quick_spec(9)), Err(SubmitError::Draining)));
        for id in &ids {
            let status = scheduler.get(id).unwrap().status();
            assert!(status.is_terminal(), "{id} left non-terminal after drain: {status:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_resubmits_of_one_id_conserve_campaigns() {
        let dir = temp_dir("race");
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(
            SchedulerConfig {
                max_active: 2,
                queue_capacity: 4,
                journal_dir: dir.clone(),
                ..SchedulerConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        // Four clients hammer the same id. Each accepted submission is a
        // resume of the previous run's journal; the scheduler must
        // serialize them (Conflict while in flight) and never lose or
        // double-count one.
        let mut accepted = 0usize;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let scheduler = &scheduler;
                handles.push(s.spawn(move || {
                    let mut ok = 0usize;
                    for _ in 0..12 {
                        match scheduler.submit(Some("hot".into()), quick_spec(3)) {
                            Ok(id) => {
                                ok += 1;
                                assert!(scheduler.wait(&id, Duration::from_secs(60)));
                            }
                            Err(SubmitError::Conflict(_)) | Err(SubmitError::QueueFull) => {
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                    ok
                }));
            }
            for handle in handles {
                accepted += handle.join().unwrap();
            }
        });
        assert!(accepted >= 1, "at least one submission must win");
        // Conservation law at quiescence: every accepted campaign reached
        // exactly one terminal state. A double-admitted id (the old
        // check-then-act race) breaks this by running two records for one
        // submission window.
        let submitted = metrics.campaigns_submitted.load(Ordering::Relaxed) as usize;
        let terminal = (metrics.campaigns_completed.load(Ordering::Relaxed)
            + metrics.campaigns_interrupted.load(Ordering::Relaxed)
            + metrics.campaigns_failed.load(Ordering::Relaxed)) as usize;
        assert_eq!(submitted, accepted);
        assert_eq!(terminal, accepted, "every accepted campaign ends exactly once");
        assert_eq!(scheduler.get("hot").unwrap().status(), CampaignStatus::Completed);
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_scheduler_on_a_live_directory_is_rejected_typed() {
        let dir = temp_dir("fence");
        let first = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let second = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        );
        match second {
            Err(StartError::Lock(LockError::Held { pid, .. })) => {
                assert_eq!(pid, std::process::id());
            }
            Ok(_) => panic!("two schedulers must not share a journal directory"),
            Err(other) => panic!("expected a Held lock error, got {other}"),
        }
        first.drain();
        // Drain released the fence: a successor starts immediately.
        let third = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        third.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_recovery_reexposes_terminal_and_readmits_incomplete() {
        let dir = temp_dir("recover");
        let first = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let done = first.submit(Some("done".into()), quick_spec(5)).unwrap();
        assert!(first.wait(&done, Duration::from_secs(60)));
        first.drain();
        drop(first);

        // Forge the crash window: an admission the daemon acknowledged
        // but never ran. (A real SIGKILL test lives in tests/recovery.rs;
        // this exercises the replay logic deterministically in-process.)
        let (mut m, _) =
            Manifest::open(&dir.join(MANIFEST_FILE_NAME)).unwrap();
        m.append_admitted("pend", &quick_spec(6)).unwrap();
        drop(m);

        let metrics = Arc::new(Metrics::new());
        let second = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::clone(&metrics),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while !second.is_ready() {
            assert!(Instant::now() < deadline, "recovery must finish");
            std::thread::sleep(Duration::from_millis(2));
        }
        // The incomplete campaign was re-admitted without any client
        // resubmission and runs to completion.
        assert!(second.wait("pend", Duration::from_secs(60)));
        assert_eq!(second.get("pend").unwrap().status(), CampaignStatus::Completed);
        assert_eq!(metrics.recovered_campaigns.load(Ordering::Relaxed), 1);
        // The finished campaign is re-exposed from its manifest summary,
        // not re-run.
        let record = second.get("done").unwrap();
        assert_eq!(record.status(), CampaignStatus::Completed);
        let summary = record.recovered_summary().expect("manifest summary");
        assert_eq!(summary.status, "completed");
        assert!(record.outcome().is_none(), "no fake outcome object");
        second.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queued_campaigns_past_the_admission_deadline_are_shed_typed() {
        let dir = temp_dir("shed");
        let metrics = Arc::new(Metrics::new());
        // A zero admission deadline: by the time any runner pops a job,
        // its deadline has passed — every submission is shed, none run.
        let scheduler = Scheduler::start(
            SchedulerConfig {
                max_active: 1,
                journal_dir: dir.clone(),
                admission_timeout: Some(Duration::ZERO),
                ..SchedulerConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let ids: Vec<String> =
            (0..3).map(|s| scheduler.submit(None, quick_spec(s)).unwrap()).collect();
        for id in &ids {
            assert!(scheduler.wait(id, Duration::from_secs(30)));
            let record = scheduler.get(id).unwrap();
            assert_eq!(record.status(), CampaignStatus::Failed);
            let err = record.outcome().unwrap().unwrap_err();
            assert!(err.starts_with("shed:"), "typed shed message, got {err:?}");
        }
        assert_eq!(metrics.shed_deadline.load(Ordering::Relaxed), 3);
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_client_token_buckets_rate_limit_admission() {
        let dir = temp_dir("rate");
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(
            SchedulerConfig {
                journal_dir: dir.clone(),
                // Tiny refill rate, burst 2: the third rapid submission
                // from one client must be limited; other clients and
                // anonymous submitters are unaffected.
                rate_limit: Some(RateLimit { per_sec: 0.001, burst: 2.0 }),
                ..SchedulerConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let a1 = scheduler.submit_from(Some("10.0.0.1"), None, quick_spec(1));
        let a2 = scheduler.submit_from(Some("10.0.0.1"), None, quick_spec(2));
        let a3 = scheduler.submit_from(Some("10.0.0.1"), None, quick_spec(3));
        assert!(a1.is_ok() && a2.is_ok());
        match a3 {
            Err(SubmitError::RateLimited { retry_after }) => assert!(retry_after >= 1),
            other => panic!("expected RateLimited, got {other:?}"),
        }
        assert!(scheduler.submit_from(Some("10.0.0.2"), None, quick_spec(4)).is_ok());
        assert!(scheduler.submit_from(None, None, quick_spec(5)).is_ok());
        assert_eq!(metrics.shed_rate_limit.load(Ordering::Relaxed), 1);
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_identical_campaigns_dedup_and_stay_bitwise_identical() {
        use crate::protocol::outcome_json;

        // Serial reference: dedup off.
        let dir = temp_dir("dedup-ref");
        let scheduler = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), dedup: false, ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let id = scheduler.submit(None, quick_spec(11)).unwrap();
        assert!(scheduler.wait(&id, Duration::from_secs(60)));
        let reference = outcome_json(&scheduler.get(&id).unwrap().outcome().unwrap().unwrap()).dump();
        assert_eq!(scheduler.dedup_stats(), asdex_env::EvalStoreStats::default());
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);

        // Two campaigns with identical specs sharing one dedup store:
        // every simulated point is computed once, handed to the other
        // campaign as a hit, and both outcomes match the store-less
        // serial reference string-for-string (i.e. bitwise).
        let dir = temp_dir("dedup");
        let scheduler = Scheduler::start(
            SchedulerConfig { max_active: 2, journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let first = scheduler.submit(None, quick_spec(11)).unwrap();
        let second = scheduler.submit(None, quick_spec(11)).unwrap();
        assert!(scheduler.wait(&first, Duration::from_secs(60)));
        assert!(scheduler.wait(&second, Duration::from_secs(60)));
        for id in [&first, &second] {
            let outcome = scheduler.get(id).unwrap().outcome().unwrap().unwrap();
            assert_eq!(outcome_json(&outcome).dump(), reference, "campaign {id} diverged");
        }
        let stats = scheduler.dedup_stats();
        assert!(stats.hits > 0, "identical campaigns must share evaluations: {stats:?}");
        assert!(
            stats.hits >= stats.misses,
            "the twin campaign's evaluations must all be hits: {stats:?}"
        );
        assert_eq!(stats.aborts, 0, "no owner died mid-flight: {stats:?}");
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fair_share_splits_the_thread_budget() {
        let inner = Inner {
            active: vec![
                CampaignRecord::new("a".into(), quick_spec(1)),
                CampaignRecord::new("b".into(), quick_spec(2)),
                CampaignRecord::new("c".into(), quick_spec(3)),
            ],
            ..Inner::default()
        };
        Scheduler::rebalance(&inner, 8);
        let shares: Vec<usize> =
            inner.active.iter().map(|j| j.share.load(Ordering::SeqCst)).collect();
        assert_eq!(shares.iter().sum::<usize>(), 8);
        assert_eq!(shares, vec![3, 3, 2]);
        // Over-subscribed: everyone still gets at least one thread.
        Scheduler::rebalance(&inner, 2);
        let shares: Vec<usize> =
            inner.active.iter().map(|j| j.share.load(Ordering::SeqCst)).collect();
        assert_eq!(shares, vec![1, 1, 1]);
    }
}
