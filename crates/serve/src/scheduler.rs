//! The multi-campaign scheduler: bounded admission, fair-share threads,
//! crash-safe journals, graceful drain.
//!
//! Submissions enter a bounded FIFO queue; `max_active` runner threads
//! pop campaigns and run them to completion. The global evaluation-thread
//! budget is divided fairly across whatever is active *right now* — each
//! campaign holds an `Arc<AtomicUsize>` share that
//! `SizingProblem::resolved_threads` re-reads at every batch, and the
//! scheduler rewrites all shares whenever the active set changes. Thread
//! count never changes results (the repo's bitwise invariance contract),
//! so rebalancing mid-campaign is always safe.
//!
//! Every campaign journals to `<journal_dir>/<id>.journal`. Submitting an
//! id whose journal already exists *resumes* it: recorded evaluations are
//! replayed without simulating and the campaign continues to the same
//! outcome an uninterrupted run produces — this is both the crash story
//! and the restart story. [`Scheduler::drain`] stops admission, pulls
//! every active campaign's [`CancelToken`], waits for the runners to wind
//! down through their normal budget accounting, and checkpoints journals,
//! so a drained daemon restarts with zero duplicate simulations.

use crate::campaign::{build_problem, run_campaign, CampaignOutcome};
use crate::logging;
use crate::metrics::{Metrics, SchedulerGauges};
use crate::pool::{WorkerPool, WorkerPoolConfig};
use crate::protocol::CampaignSpec;
use asdex_core::{ProgressEvent, ProgressHandle};
use asdex_env::{CancelToken, EvalStats, HealthStats, Journal};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Admission-queue capacity; submissions beyond it are rejected with
    /// a retryable error rather than queued unboundedly.
    pub queue_capacity: usize,
    /// Campaigns run concurrently (runner threads).
    pub max_active: usize,
    /// Global evaluation-thread budget shared by active campaigns.
    pub thread_budget: usize,
    /// Directory of per-campaign journals.
    pub journal_dir: PathBuf,
    /// Evaluation worker processes per campaign; `0` evaluates in the
    /// daemon's own process (the pre-isolation behaviour). Worker count
    /// never changes results — the repo's bitwise invariance contract
    /// extends to process-isolated execution.
    pub workers: usize,
    /// Binary spawned as `<program> worker …`; `None` uses
    /// `std::env::current_exe()` (the daemon re-executing itself).
    pub worker_program: Option<PathBuf>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_capacity: 64,
            max_active: 4,
            thread_budget: 1,
            journal_dir: PathBuf::from("journals"),
            workers: 0,
            worker_program: None,
        }
    }
}

/// Lifecycle of one campaign inside the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Waiting for a runner.
    Queued,
    /// A runner is executing it.
    Running,
    /// Finished; the outcome is available.
    Completed,
    /// Stopped by a drain; the journal is checkpointed and resumable.
    Interrupted,
    /// Could not run (bad spec, journal error, runtime error).
    Failed,
}

impl CampaignStatus {
    /// Stable lowercase label for the wire protocol.
    pub fn label(self) -> &'static str {
        match self {
            CampaignStatus::Queued => "queued",
            CampaignStatus::Running => "running",
            CampaignStatus::Completed => "completed",
            CampaignStatus::Interrupted => "interrupted",
            CampaignStatus::Failed => "failed",
        }
    }

    /// Whether the campaign will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            CampaignStatus::Completed | CampaignStatus::Interrupted | CampaignStatus::Failed
        )
    }
}

/// Progress lines kept per campaign; older lines are dropped.
const MAX_PROGRESS_LINES: usize = 10_000;

/// Shared state of one campaign, visible to runners and status queries.
#[derive(Debug)]
pub struct CampaignRecord {
    /// Campaign id (also the journal file stem).
    pub id: String,
    spec: Mutex<CampaignSpec>,
    status: Mutex<CampaignStatus>,
    progress: Mutex<VecDeque<String>>,
    outcome: Mutex<Option<Result<CampaignOutcome, String>>>,
    /// `(replayed, recorded)` journal telemetry after the run.
    journal_info: Mutex<Option<(usize, usize)>>,
    cancel: CancelToken,
    share: Arc<AtomicUsize>,
}

impl CampaignRecord {
    fn new(id: String, spec: CampaignSpec) -> Arc<CampaignRecord> {
        Arc::new(CampaignRecord {
            id,
            spec: Mutex::new(spec),
            status: Mutex::new(CampaignStatus::Queued),
            progress: Mutex::new(VecDeque::new()),
            outcome: Mutex::new(None),
            journal_info: Mutex::new(None),
            cancel: CancelToken::new(),
            share: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Current status.
    pub fn status(&self) -> CampaignStatus {
        *self.status.lock().unwrap()
    }

    /// The effective spec (journal metadata wins over the submission on
    /// resume).
    pub fn spec(&self) -> CampaignSpec {
        self.spec.lock().unwrap().clone()
    }

    /// A snapshot of the retained progress lines.
    pub fn progress_lines(&self) -> Vec<String> {
        self.progress.lock().unwrap().iter().cloned().collect()
    }

    /// The outcome, once terminal.
    pub fn outcome(&self) -> Option<Result<CampaignOutcome, String>> {
        self.outcome.lock().unwrap().clone()
    }

    /// `(replayed, recorded)` journal telemetry, once the journal has
    /// been checkpointed.
    pub fn journal_info(&self) -> Option<(usize, usize)> {
        *self.journal_info.lock().unwrap()
    }

    fn set_status(&self, status: CampaignStatus) {
        *self.status.lock().unwrap() = status;
    }

    fn push_progress(&self, line: String) {
        let mut lines = self.progress.lock().unwrap();
        if lines.len() == MAX_PROGRESS_LINES {
            lines.pop_front();
        }
        lines.push_back(line);
    }
}

#[derive(Debug, Default)]
struct Inner {
    queue: VecDeque<Arc<CampaignRecord>>,
    active: Vec<Arc<CampaignRecord>>,
    registry: BTreeMap<String, Arc<CampaignRecord>>,
    draining: bool,
    next_id: usize,
    finished_eval: EvalStats,
    finished_health: HealthStats,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full; retry later.
    QueueFull,
    /// The daemon is draining and accepts no new work.
    Draining,
    /// A campaign with this id is already queued or running.
    Conflict(String),
    /// The spec failed validation.
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue is full"),
            SubmitError::Draining => write!(f, "daemon is draining"),
            SubmitError::Conflict(id) => write!(f, "campaign {id:?} is already in flight"),
            SubmitError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

/// The multi-campaign scheduler. Create with [`Scheduler::start`]; shut
/// down with [`Scheduler::drain`].
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
    inner: Mutex<Inner>,
    work_cv: Condvar,
    done_cv: Condvar,
    metrics: Arc<Metrics>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Creates the journal directory, spawns `max_active` runner threads,
    /// and returns the scheduler handle.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the journal directory cannot be created.
    pub fn start(
        cfg: SchedulerConfig,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<Arc<Scheduler>> {
        std::fs::create_dir_all(&cfg.journal_dir)?;
        let scheduler = Arc::new(Scheduler {
            cfg: cfg.clone(),
            inner: Mutex::new(Inner::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            metrics,
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = scheduler.workers.lock().unwrap();
        for i in 0..cfg.max_active.max(1) {
            let me = Arc::clone(&scheduler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("asdex-runner-{i}"))
                    .spawn(move || me.runner_loop())
                    .expect("spawn runner thread"),
            );
        }
        drop(workers);
        Ok(scheduler)
    }

    /// Admits a campaign. With an explicit id whose journal file already
    /// exists, the campaign *resumes* from that journal. Returns the
    /// (possibly generated) campaign id.
    pub fn submit(
        &self,
        id: Option<String>,
        spec: CampaignSpec,
    ) -> Result<String, SubmitError> {
        // Validate the vocabulary up front so the queue only holds
        // runnable work.
        build_problem(&spec.bench, &spec.corners).map_err(SubmitError::Invalid)?;
        if !matches!(spec.agent.as_str(), "trm" | "bo" | "random") {
            return Err(SubmitError::Invalid(format!(
                "unknown agent {:?} (trm|bo|random)",
                spec.agent
            )));
        }

        // Admission is one critical section: the drain flag, the
        // queue-capacity check, the duplicate-id check, and the
        // registry/queue insertion all happen under a single `inner`
        // lock, and runners publish terminal statuses under that same
        // lock — so two racing clients can never both pass the capacity
        // check for one slot, and a resubmitted id is admitted only once
        // its previous run has fully left the active set.
        let mut inner = self.inner.lock().unwrap();
        if inner.draining {
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.cfg.queue_capacity {
            self.metrics.campaigns_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull);
        }
        let id = match id {
            Some(id) => {
                if inner.registry.get(&id).is_some_and(|r| !r.status().is_terminal()) {
                    return Err(SubmitError::Conflict(id));
                }
                id
            }
            None => loop {
                inner.next_id += 1;
                let candidate = format!("c{:04}", inner.next_id);
                if !inner.registry.contains_key(&candidate) {
                    break candidate;
                }
            },
        };
        let record = CampaignRecord::new(id.clone(), spec);
        inner.registry.insert(id.clone(), Arc::clone(&record));
        inner.queue.push_back(record);
        self.metrics.campaigns_submitted.fetch_add(1, Ordering::Relaxed);
        logging::debug(format!("scheduler: queued campaign {id}"));
        drop(inner);
        self.work_cv.notify_one();
        Ok(id)
    }

    /// Looks up a campaign by id.
    pub fn get(&self, id: &str) -> Option<Arc<CampaignRecord>> {
        self.inner.lock().unwrap().registry.get(id).cloned()
    }

    /// Blocks until the campaign reaches a terminal status or the timeout
    /// expires. Returns `true` if it finished.
    pub fn wait(&self, id: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.registry.get(id) {
                Some(r) if r.status().is_terminal() => return true,
                Some(_) => {}
                None => return false,
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.done_cv.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Point-in-time gauges for `/metrics`.
    pub fn gauges(&self) -> SchedulerGauges {
        let inner = self.inner.lock().unwrap();
        SchedulerGauges {
            queue_depth: inner.queue.len(),
            active_campaigns: inner.active.len(),
            thread_budget: self.cfg.thread_budget,
            eval: inner.finished_eval.clone(),
            health: inner.finished_health,
        }
    }

    /// Whether a drain has been initiated.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().unwrap().draining
    }

    /// Graceful shutdown: stop admission, mark queued campaigns
    /// interrupted, pull every active campaign's cancel token, and join
    /// the runners (each checkpoints its journal on the way out).
    /// Idempotent; later calls return immediately.
    pub fn drain(&self) {
        {
            let mut inner = self.inner.lock().unwrap();
            if inner.draining {
                drop(inner);
                self.join_workers();
                return;
            }
            inner.draining = true;
            while let Some(job) = inner.queue.pop_front() {
                job.set_status(CampaignStatus::Interrupted);
                self.metrics.campaigns_interrupted.fetch_add(1, Ordering::Relaxed);
            }
            for job in &inner.active {
                job.cancel.cancel();
            }
            logging::info(format!(
                "scheduler: draining ({} active campaign(s) cancelled)",
                inner.active.len()
            ));
        }
        self.work_cv.notify_all();
        self.done_cv.notify_all();
        self.join_workers();
        logging::info("scheduler: drained");
    }

    fn join_workers(&self) {
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Splits the thread budget across the active set: every campaign
    /// gets at least one thread; the remainder goes to the
    /// earliest-started campaigns. Shares are plain atomics that each
    /// campaign's `evaluate_batch` re-reads, so this takes effect at the
    /// next batch boundary.
    fn rebalance(inner: &Inner, thread_budget: usize) {
        let n = inner.active.len();
        if n == 0 {
            return;
        }
        let base = (thread_budget / n).max(1);
        let extra = if thread_budget >= n { thread_budget % n } else { 0 };
        for (i, job) in inner.active.iter().enumerate() {
            job.share.store(base + usize::from(i < extra), Ordering::SeqCst);
        }
    }

    fn runner_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(job) = inner.queue.pop_front() {
                        inner.active.push(Arc::clone(&job));
                        Scheduler::rebalance(&inner, self.cfg.thread_budget);
                        break job;
                    }
                    if inner.draining {
                        return;
                    }
                    inner = self.work_cv.wait(inner).unwrap();
                }
            };

            let (result, status) = self.run_one(&job);

            {
                // Publish the terminal status and leave the active set in
                // ONE `inner` critical section. Admission reads both under
                // the same lock, so there is no window where a racing
                // `submit` of the same id sees a terminal status (and
                // admits a resume) while this record still occupies an
                // active slot — the check-then-act race that could put two
                // writers on one journal.
                let mut inner = self.inner.lock().unwrap();
                if let Ok(outcome) = &result {
                    inner.finished_eval.merge(&outcome.stats);
                    inner.finished_health.merge(&outcome.health);
                }
                *job.outcome.lock().unwrap() = Some(result);
                job.set_status(status);
                inner.active.retain(|j| !Arc::ptr_eq(j, &job));
                Scheduler::rebalance(&inner, self.cfg.thread_budget);
            }
            self.done_cv.notify_all();
        }
    }

    /// Runs one campaign end to end: open-or-resume the journal, build
    /// the problem, search, checkpoint, classify the ending. The caller
    /// (the runner loop) publishes the returned outcome and status
    /// atomically with the active-set removal.
    fn run_one(
        &self,
        job: &Arc<CampaignRecord>,
    ) -> (Result<CampaignOutcome, String>, CampaignStatus) {
        job.set_status(CampaignStatus::Running);
        let result = self.run_inner(job);
        let cancelled = job.cancel.is_cancelled();
        let status = match &result {
            Ok(_) if cancelled => CampaignStatus::Interrupted,
            Ok(_) => CampaignStatus::Completed,
            Err(_) => CampaignStatus::Failed,
        };
        match status {
            CampaignStatus::Completed => {
                self.metrics.campaigns_completed.fetch_add(1, Ordering::Relaxed);
            }
            CampaignStatus::Interrupted => {
                self.metrics.campaigns_interrupted.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.metrics.campaigns_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Err(msg) = &result {
            logging::info(format!("campaign {}: failed: {msg}", job.id));
        } else {
            logging::info(format!("campaign {}: {}", job.id, status.label()));
        }
        (result, status)
    }

    fn run_inner(&self, job: &Arc<CampaignRecord>) -> Result<CampaignOutcome, String> {
        let journal_path = self.cfg.journal_dir.join(format!("{}.journal", job.id));
        let submitted = job.spec();
        let journal = if journal_path.exists() {
            let journal = Journal::resume(&journal_path, submitted.checkpoint_every)
                .map_err(|e| e.to_string())?;
            let restored = CampaignSpec::from_meta(journal.meta())?;
            logging::info(format!(
                "campaign {}: resuming journal {} ({} recorded evaluations to replay)",
                job.id,
                journal_path.display(),
                journal.recorded()
            ));
            *job.spec.lock().unwrap() = restored;
            journal
        } else {
            Journal::create(&journal_path, submitted.to_meta(), submitted.checkpoint_every)
                .map_err(|e| e.to_string())?
        };

        let spec = job.spec();
        // The solver choice is part of the campaign identity (pinned by
        // the journal on resume): apply it before any evaluation runs.
        let solver = asdex_spice::analysis::SolverChoice::from_label(&spec.solver)
            .ok_or_else(|| format!("campaign spec has unknown solver {:?}", spec.solver))?;
        let mut problem = build_problem(&spec.bench, &spec.corners)?
            .with_solver(solver)
            .with_journal(journal)
            .with_cancel_token(job.cancel.clone())
            .with_thread_share(Arc::clone(&job.share));

        // Process isolation: route every evaluation attempt through a
        // supervised pool of `asdex worker` children. The pool's fallback
        // evaluator is the problem's own, so even a pool that loses every
        // worker degrades to in-process execution with an identical
        // outcome.
        let pool = if self.cfg.workers > 0 {
            let program = match &self.cfg.worker_program {
                Some(program) => program.clone(),
                None => std::env::current_exe()
                    .map_err(|e| format!("cannot locate the worker binary: {e}"))?,
            };
            let mut pool_cfg =
                WorkerPoolConfig::new(program, &spec.bench, &spec.corners, self.cfg.workers);
            pool_cfg.solver = spec.solver.clone();
            let pool =
                WorkerPool::for_problem(pool_cfg, &problem, Arc::clone(&self.metrics.workers));
            problem = problem.with_dispatcher(pool.clone());
            Some(pool)
        } else {
            None
        };

        let sink_job = Arc::clone(job);
        let progress = ProgressHandle::new(Arc::new(move |event: &ProgressEvent| {
            sink_job.push_progress(event.to_string());
        }));

        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_campaign(&problem, &spec, Some(progress))
        }));

        if let Some(pool) = pool {
            pool.shutdown();
        }

        // Checkpoint whatever the journal holds — on success, on error,
        // and especially on drain — before classifying the result.
        if let Some(handle) = problem.journal_handle() {
            if let Ok(mut j) = handle.lock() {
                j.checkpoint().map_err(|e| format!("journal checkpoint failed: {e}"))?;
                *job.journal_info.lock().unwrap() = Some((j.replayed(), j.recorded()));
                logging::debug(format!(
                    "campaign {}: journal {} ({} replayed, {} recorded)",
                    job.id,
                    j.path().display(),
                    j.replayed(),
                    j.recorded()
                ));
            }
        }

        match run {
            Ok(result) => result,
            Err(_) => Err("campaign runner panicked".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("asdex-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_spec(seed: u64) -> CampaignSpec {
        CampaignSpec { bench: "bowl2".into(), seed, budget: 300, ..CampaignSpec::default() }
    }

    #[test]
    fn runs_campaigns_to_completion() {
        let dir = temp_dir("basic");
        let scheduler = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let id = scheduler.submit(None, quick_spec(7)).unwrap();
        assert!(scheduler.wait(&id, Duration::from_secs(60)));
        let record = scheduler.get(&id).unwrap();
        assert_eq!(record.status(), CampaignStatus::Completed);
        let outcome = record.outcome().unwrap().unwrap();
        assert!(outcome.success);
        assert!(!record.progress_lines().is_empty());
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_specs_are_rejected_at_admission() {
        let dir = temp_dir("invalid");
        let scheduler = Scheduler::start(
            SchedulerConfig { journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let bad_bench = CampaignSpec { bench: "nope".into(), ..CampaignSpec::default() };
        assert!(matches!(scheduler.submit(None, bad_bench), Err(SubmitError::Invalid(_))));
        let bad_agent = CampaignSpec { agent: "dqn".into(), ..quick_spec(1) };
        assert!(matches!(scheduler.submit(None, bad_agent), Err(SubmitError::Invalid(_))));
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_capacity_bounds_admission() {
        let dir = temp_dir("capacity");
        // Single slow runner, capacity 1: with the runner busy, one spec
        // queues and the next is rejected.
        let scheduler = Scheduler::start(
            SchedulerConfig {
                queue_capacity: 1,
                max_active: 1,
                journal_dir: dir.clone(),
                ..SchedulerConfig::default()
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let mut rejected = false;
        let mut ids = Vec::new();
        for seed in 0..8 {
            match scheduler.submit(None, quick_spec(seed)) {
                Ok(id) => ids.push(id),
                Err(SubmitError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected, "a bounded queue must reject eventually");
        for id in &ids {
            assert!(scheduler.wait(id, Duration::from_secs(60)));
        }
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_inflight_ids_conflict() {
        let dir = temp_dir("conflict");
        let scheduler = Scheduler::start(
            SchedulerConfig { max_active: 1, journal_dir: dir.clone(), ..SchedulerConfig::default() },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        scheduler.submit(Some("dup".into()), quick_spec(1)).unwrap();
        let second = scheduler.submit(Some("dup".into()), quick_spec(1));
        assert!(matches!(second, Err(SubmitError::Conflict(_))));
        assert!(scheduler.wait("dup", Duration::from_secs(60)));
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_interrupts_queued_work_and_rejects_new() {
        let dir = temp_dir("drain");
        let scheduler = Scheduler::start(
            SchedulerConfig {
                max_active: 1,
                journal_dir: dir.clone(),
                ..SchedulerConfig::default()
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let ids: Vec<String> =
            (0..4).map(|s| scheduler.submit(None, quick_spec(s)).unwrap()).collect();
        scheduler.drain();
        assert!(matches!(scheduler.submit(None, quick_spec(9)), Err(SubmitError::Draining)));
        for id in &ids {
            let status = scheduler.get(id).unwrap().status();
            assert!(status.is_terminal(), "{id} left non-terminal after drain: {status:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_resubmits_of_one_id_conserve_campaigns() {
        let dir = temp_dir("race");
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(
            SchedulerConfig {
                max_active: 2,
                queue_capacity: 4,
                journal_dir: dir.clone(),
                ..SchedulerConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        // Four clients hammer the same id. Each accepted submission is a
        // resume of the previous run's journal; the scheduler must
        // serialize them (Conflict while in flight) and never lose or
        // double-count one.
        let mut accepted = 0usize;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let scheduler = &scheduler;
                handles.push(s.spawn(move || {
                    let mut ok = 0usize;
                    for _ in 0..12 {
                        match scheduler.submit(Some("hot".into()), quick_spec(3)) {
                            Ok(id) => {
                                ok += 1;
                                assert!(scheduler.wait(&id, Duration::from_secs(60)));
                            }
                            Err(SubmitError::Conflict(_)) | Err(SubmitError::QueueFull) => {
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                    ok
                }));
            }
            for handle in handles {
                accepted += handle.join().unwrap();
            }
        });
        assert!(accepted >= 1, "at least one submission must win");
        // Conservation law at quiescence: every accepted campaign reached
        // exactly one terminal state. A double-admitted id (the old
        // check-then-act race) breaks this by running two records for one
        // submission window.
        let submitted = metrics.campaigns_submitted.load(Ordering::Relaxed) as usize;
        let terminal = (metrics.campaigns_completed.load(Ordering::Relaxed)
            + metrics.campaigns_interrupted.load(Ordering::Relaxed)
            + metrics.campaigns_failed.load(Ordering::Relaxed)) as usize;
        assert_eq!(submitted, accepted);
        assert_eq!(terminal, accepted, "every accepted campaign ends exactly once");
        assert_eq!(scheduler.get("hot").unwrap().status(), CampaignStatus::Completed);
        scheduler.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fair_share_splits_the_thread_budget() {
        let inner = Inner {
            active: vec![
                CampaignRecord::new("a".into(), quick_spec(1)),
                CampaignRecord::new("b".into(), quick_spec(2)),
                CampaignRecord::new("c".into(), quick_spec(3)),
            ],
            ..Inner::default()
        };
        Scheduler::rebalance(&inner, 8);
        let shares: Vec<usize> =
            inner.active.iter().map(|j| j.share.load(Ordering::SeqCst)).collect();
        assert_eq!(shares.iter().sum::<usize>(), 8);
        assert_eq!(shares, vec![3, 3, 2]);
        // Over-subscribed: everyone still gets at least one thread.
        Scheduler::rebalance(&inner, 2);
        let shares: Vec<usize> =
            inner.active.iter().map(|j| j.share.load(Ordering::SeqCst)).collect();
        assert_eq!(shares, vec![1, 1, 1]);
    }
}
