//! Sizing-as-a-service for ASDEX — the production serving layer.
//!
//! This crate turns the search library into a long-running daemon:
//!
//! * [`server`] — a dependency-free HTTP/1.1 front end over
//!   `std::net::TcpListener`: `POST /campaigns`, `GET /campaigns/{id}`,
//!   `GET /healthz`, `GET /metrics`, `POST /drain`.
//! * [`reactor`] / [`conn`] — the nonblocking connection front end: one
//!   thread drives every connection as a polled state machine with
//!   bounded buffers, absolute per-phase deadlines (slow-loris and
//!   half-open peers are reaped, not accumulated), a connection cap with
//!   typed `503` + `Retry-After` shedding, and graceful drain.
//! * [`scheduler`] — bounded admission, `max_active` concurrent
//!   campaigns, fair-share division of the global evaluation-thread
//!   budget, per-campaign crash-safe journals, graceful drain.
//! * [`protocol`] — the wire format, including a **bitwise-comparable**
//!   outcome serializer (floats carried as IEEE-754 hex bits) shared
//!   with the CLI's `--json` mode.
//! * [`campaign`] — benchmark/agent vocabulary and the single campaign
//!   entry point shared by daemon and CLI.
//! * [`worker`] / [`pool`] — process-isolated evaluation: sandboxed
//!   `asdex worker` child processes speaking a length-prefixed stdio
//!   protocol, supervised by a restart-with-backoff [`pool::WorkerPool`]
//!   that types worker death as
//!   [`asdex_env::FailureKind::WorkerPanic`] instead of a daemon outage.
//! * [`client`] / [`loadgen`] — a blocking client and a load harness
//!   that records throughput/latency CSVs.
//! * [`json`] / [`http`] / [`logging`] / [`metrics`] — the std-only
//!   infrastructure underneath.
//!
//! The serving layer inherits the repo's determinism contracts wholesale:
//! a campaign run by the daemon — at any thread share, across any number
//! of drain/restart cycles — produces a `SearchOutcome` bitwise identical
//! to the same campaign run serially by the CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod client;
pub mod conn;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod lockdir;
pub mod logging;
pub mod manifest;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod reactor;
pub mod scheduler;
pub mod server;
pub mod worker;

pub use campaign::{build_problem, build_problem_checked, run_campaign, CampaignOutcome};
pub use client::{Client, ClientConfig, ClientError, ClientStats};
pub use json::Json;
pub use loadgen::{LoadReport, LoadgenConfig};
pub use lockdir::{DirLock, LockError};
pub use logging::LogLevel;
pub use manifest::{Manifest, ManifestError, ManifestPhase, TerminalRecord};
pub use metrics::{Metrics, WorkerStats};
pub use pool::{WorkerPool, WorkerPoolConfig};
pub use protocol::{outcome_json, CampaignSpec};
pub use reactor::ReactorConfig;
pub use scheduler::{CampaignStatus, RateLimit, Scheduler, SchedulerConfig, StartError, SubmitError};
pub use server::{DrainHandle, Server, ServerConfig};
pub use worker::{run_worker, WorkerConfig};
