//! Exclusive pid+epoch fencing for a journal directory.
//!
//! A journal directory has exactly one writer at a time — a daemon or a
//! CLI `size --journal` run. [`DirLock::acquire`] enforces that with a
//! lock file (`asdex.lock`) created with `O_EXCL`:
//!
//! ```text
//! pid=12345 epoch=3
//! ```
//!
//! * A second opener finds the file, reads the owner pid, and — if that
//!   process is still alive — fails with the typed [`LockError::Held`]
//!   (the daemon turns this into a startup failure, the CLI into a
//!   runtime error; neither ever writes a byte into the directory).
//! * A lock left behind by a SIGKILLed owner is *stale*: the pid no
//!   longer exists, so the lock is reclaimed automatically and the epoch
//!   is bumped. The epoch counts ownership generations — diagnostics can
//!   tell "this directory has been through 4 owners" from the file alone.
//! * Dropping the [`DirLock`] removes the file (graceful release), so a
//!   drained daemon immediately frees the directory for its successor.
//!
//! Liveness is checked via `/proc/<pid>` (this service targets Linux; on
//! other platforms an existing lock is conservatively treated as held).

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the lock inside the fenced directory.
pub const LOCK_FILE_NAME: &str = "asdex.lock";

/// Why a directory lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// Another live process owns the directory.
    Held {
        /// The lock file that is in the way.
        path: PathBuf,
        /// The owning process.
        pid: u32,
    },
    /// The lock file could not be created, read, or replaced.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Held { path, pid } => write!(
                f,
                "journal directory is locked by live process {pid} ({}); \
                 stop that process or choose another --journal-dir",
                path.display()
            ),
            LockError::Io { op, source } => {
                write!(f, "journal-dir lock {op} failed: {source}")
            }
        }
    }
}

impl std::error::Error for LockError {}

/// An acquired exclusive lock on one directory. Released on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
    epoch: u64,
}

/// Whether `pid` names a live process.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        // No portable liveness probe without unsafe: treat an existing
        // lock as held. Stale reclaim is a Linux-only convenience.
        true
    }
}

/// Parses `pid=<n> epoch=<n>` from a lock file body.
fn parse_lock(text: &str) -> Option<(u32, u64)> {
    let mut pid = None;
    let mut epoch = None;
    for tok in text.split_whitespace() {
        match tok.split_once('=')? {
            ("pid", v) => pid = v.parse().ok(),
            ("epoch", v) => epoch = v.parse().ok(),
            _ => return None,
        }
    }
    Some((pid?, epoch?))
}

impl DirLock {
    /// Acquires the exclusive lock on `dir`, creating the directory if
    /// needed. Reclaims a stale lock (dead owner pid or an unparseable
    /// torn lock file) automatically, bumping the epoch.
    ///
    /// # Errors
    ///
    /// * [`LockError::Held`] when a live process owns the directory.
    /// * [`LockError::Io`] when the file system misbehaves.
    pub fn acquire(dir: &Path) -> Result<DirLock, LockError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| LockError::Io { op: "create directory", source: e })?;
        let path = dir.join(LOCK_FILE_NAME);
        let mut epoch = 1u64;
        // Bounded retry: each loop either creates the file, returns Held,
        // or removes a stale file (which can race with another reclaimer,
        // hence the loop). A handful of attempts is plenty.
        for _ in 0..16 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let body = format!("pid={} epoch={epoch}\n", std::process::id());
                    file.write_all(body.as_bytes())
                        .and_then(|()| file.sync_data())
                        .map_err(|e| LockError::Io { op: "write", source: e })?;
                    return Ok(DirLock { path, epoch });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let text = std::fs::read_to_string(&path).unwrap_or_default();
                    match parse_lock(&text) {
                        Some((pid, _)) if pid_alive(pid) => {
                            return Err(LockError::Held { path, pid });
                        }
                        Some((_, held_epoch)) => epoch = held_epoch + 1,
                        // Unparseable: a torn write from an owner that died
                        // mid-acquire. Reclaimable, epoch unknown.
                        None => {}
                    }
                    std::fs::remove_file(&path)
                        .or_else(|e| {
                            if e.kind() == std::io::ErrorKind::NotFound { Ok(()) } else { Err(e) }
                        })
                        .map_err(|e| LockError::Io { op: "reclaim", source: e })?;
                }
                Err(e) => return Err(LockError::Io { op: "create", source: e }),
            }
        }
        Err(LockError::Io {
            op: "acquire",
            source: std::io::Error::other("lock file kept reappearing (reclaim race)"),
        })
    }

    /// Ownership generation recorded in the lock file (starts at 1; a
    /// stale reclaim bumps the dead owner's epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Where the lock file lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Best-effort graceful release; a failure just leaves a stale
        // lock that the next acquirer reclaims.
        std::fs::remove_file(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("asdex-lockdir-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn second_acquire_is_a_typed_held_error() {
        let dir = tmp_dir("held");
        let lock = DirLock::acquire(&dir).unwrap();
        assert_eq!(lock.epoch(), 1);
        let err = DirLock::acquire(&dir).unwrap_err();
        match err {
            LockError::Held { pid, .. } => assert_eq!(pid, std::process::id()),
            other => panic!("expected Held, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_releases_and_reacquire_succeeds() {
        let dir = tmp_dir("release");
        let lock = DirLock::acquire(&dir).unwrap();
        let path = lock.path().to_path_buf();
        assert!(path.exists());
        drop(lock);
        assert!(!path.exists(), "drop must remove the lock file");
        let lock = DirLock::acquire(&dir).unwrap();
        assert_eq!(lock.epoch(), 1, "graceful release does not burn an epoch");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_from_dead_pid_is_reclaimed_with_epoch_bump() {
        let dir = tmp_dir("stale");
        std::fs::create_dir_all(&dir).unwrap();
        // Spawn a short-lived child and use its pid once it has exited:
        // a real pid that is genuinely dead.
        let child = std::process::Command::new("true").spawn().unwrap();
        let dead_pid = child.id();
        let mut child = child;
        child.wait().unwrap();
        std::fs::write(dir.join(LOCK_FILE_NAME), format!("pid={dead_pid} epoch=3\n")).unwrap();
        let lock = DirLock::acquire(&dir).unwrap();
        assert_eq!(lock.epoch(), 4, "reclaim must bump the dead owner's epoch");
        let text = std::fs::read_to_string(lock.path()).unwrap();
        assert!(text.contains(&format!("pid={}", std::process::id())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_lock_file_is_reclaimable() {
        let dir = tmp_dir("torn");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOCK_FILE_NAME), "pid=12").unwrap(); // no epoch: torn
        // `pid=12` alone is unparseable (missing epoch) → reclaim.
        let lock = DirLock::acquire(&dir).unwrap();
        assert_eq!(lock.epoch(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
