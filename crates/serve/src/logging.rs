//! The one stderr choke point.
//!
//! Journal chatter, checkpoint notices, scheduler transitions, and
//! request logs all funnel through here, so `--quiet` (and the daemon's
//! `--log-level`) silence them in exactly one place. Levels are a global
//! atomic rather than a handle because the emitting code spans every
//! layer (CLI, scheduler threads, campaign runners) and threading a
//! logger handle through the evaluation stack would dwarf the feature.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much stderr chatter to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing but hard errors (printed by the caller, not this module).
    Quiet = 0,
    /// Operational messages: journal checkpoints, campaign transitions.
    Info = 1,
    /// Per-request and per-event detail.
    Debug = 2,
}

impl LogLevel {
    /// Parses a CLI-facing label.
    pub fn from_label(label: &str) -> Option<LogLevel> {
        match label {
            "quiet" => Some(LogLevel::Quiet),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Sets the global level.
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::SeqCst);
}

/// The current global level.
pub fn level() -> LogLevel {
    match LEVEL.load(Ordering::SeqCst) {
        0 => LogLevel::Quiet,
        1 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Emits an info-level line to stderr (suppressed under `Quiet`).
pub fn info(msg: impl AsRef<str>) {
    if level() >= LogLevel::Info {
        eprintln!("{}", msg.as_ref());
    }
}

/// Emits a debug-level line to stderr (suppressed under `Quiet`/`Info`).
pub fn debug(msg: impl AsRef<str>) {
    if level() >= LogLevel::Debug {
        eprintln!("{}", msg.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_parse() {
        assert_eq!(LogLevel::from_label("quiet"), Some(LogLevel::Quiet));
        assert_eq!(LogLevel::from_label("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::from_label("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::from_label("loud"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }
}
