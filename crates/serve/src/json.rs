//! A minimal JSON value, parser, and writer.
//!
//! The wire protocol needs exactly four things from JSON: parse a request
//! body, build a response, preserve key order (so two structurally equal
//! outcomes serialize to the *same string*, making string equality a
//! bitwise-equality check), and do it all without dependencies. Objects
//! are insertion-ordered `Vec<(String, Json)>` — not a map — for that
//! reason.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (no-op on other variants) and returns
    /// `self` for chaining.
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value));
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exactly
    /// representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string (no whitespace, insertion
    /// order preserved).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The whole input must be consumed (modulo
    /// trailing whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; protocol code carries exact floats as hex
        // bit strings, so a non-finite here is only ever informational.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // The integer fast path below would drop the sign bit of -0.0.
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        use fmt::Write;
        let _ = write!(out, "{}", n as i64);
    } else {
        use fmt::Write;
        // Rust's shortest-roundtrip float formatting: parses back to the
        // identical f64.
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: &str) -> JsonError {
        JsonError { offset, message: message.to_string() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(JsonError::at(*pos, "unexpected character")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed by this protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let text = r#"{"id":"c1","seed":42,"ok":true,"pt":[0.5,-1.25e-3],"none":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("c1"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("pt").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn preserves_key_order() {
        let v = Json::obj()
            .with("zeta", Json::Num(1.0))
            .with("alpha", Json::Num(2.0));
        assert_eq!(v.dump(), r#"{"zeta":1,"alpha":2}"#);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0] {
            let dumped = Json::Num(x).dump();
            let back = Json::parse(&dumped).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {dumped}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let dumped = v.dump();
        assert_eq!(dumped, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&dumped).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }
}
