//! A blocking client for the daemon's wire protocol.
//!
//! Used by the `loadgen` harness, the CI smoke job, and the integration
//! tests; also a convenient programmatic API. One TCP connection per
//! request, mirroring the server's `Connection: close` policy.

use crate::json::Json;
use crate::protocol::CampaignSpec;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection could not be made or broke mid-request.
    Io(std::io::Error),
    /// The server's response was not parseable HTTP/JSON.
    Protocol(String),
    /// The server answered with a non-2xx status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The response body.
        body: String,
    },
    /// A poll deadline expired.
    Timeout(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Status { status, body } => write!(f, "HTTP {status}: {body}"),
            ClientError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Transport knobs for one daemon handle.
///
/// The defaults suit interactive CLI use; the load harness and CI tighten
/// them. Retries apply only to `429`/`503` — the two statuses the daemon
/// uses for "full right now, come back" — never to connection failures or
/// other statuses, so a down daemon fails fast and non-idempotent
/// requests are never replayed after an ambiguous outcome.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection (per resolved address).
    pub connect_timeout: Duration,
    /// Deadline for each read from the socket.
    pub read_timeout: Duration,
    /// Deadline for each write to the socket.
    pub write_timeout: Duration,
    /// Additional attempts after a `429`/`503` response (0 = no retry).
    pub max_retries: u32,
    /// First retry delay; doubled on each subsequent retry. A server
    /// `Retry-After` header overrides this ladder for that retry.
    pub retry_backoff: Duration,
    /// Upper bound on an honored `Retry-After` hint, so a pathological
    /// server cannot park the client for minutes.
    pub retry_after_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_retries: 3,
            retry_backoff: Duration::from_millis(100),
            retry_after_cap: Duration::from_secs(5),
        }
    }
}

/// Counters of the client's interactions with a shedding server. Shared
/// by every clone of one [`Client`], so a harness can hand clones to
/// worker threads and read the totals at the end.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Retries after a `429` (queue full / rate limited).
    pub retries_429: AtomicU64,
    /// Retries after a `503` (connection cap / draining / recovering).
    pub retries_503: AtomicU64,
    /// Retries whose delay came from a server `Retry-After` hint rather
    /// than the local backoff ladder.
    pub retry_after_honored: AtomicU64,
    /// Retries after a connection-level reset/refusal — an overloaded
    /// daemon past its shed allowance drops arrivals without a response.
    pub retries_conn: AtomicU64,
}

impl ClientStats {
    /// Point-in-time snapshot `(retries_429, retries_503, retry_after_honored)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.retries_429.load(Ordering::Relaxed),
            self.retries_503.load(Ordering::Relaxed),
            self.retry_after_honored.load(Ordering::Relaxed),
        )
    }
}

/// A handle to one daemon.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    stats: Arc<ClientStats>,
}

impl Client {
    /// A client for `addr` (`host:port`) with default transport knobs.
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into(), cfg: ClientConfig::default(), stats: Arc::default() }
    }

    /// The shed/retry counters, shared across clones of this client.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Replaces the transport configuration.
    #[must_use]
    pub fn with_config(mut self, cfg: ClientConfig) -> Client {
        self.cfg = cfg;
        self
    }

    /// Sets the retry budget: `max_retries` extra attempts on `429`/`503`,
    /// starting at `backoff` and doubling.
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32, backoff: Duration) -> Client {
        self.cfg.max_retries = max_retries;
        self.cfg.retry_backoff = backoff;
        self
    }

    /// Connects with the configured deadline, trying each resolved
    /// address in order.
    fn connect(&self) -> Result<TcpStream, ClientError> {
        let addrs = self.addr.to_socket_addrs()?;
        let mut last: Option<std::io::Error> = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.cfg.connect_timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("{} resolved to no addresses", self.addr),
            )
        })))
    }

    /// One raw HTTP exchange. Returns `(status, body)`.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let (status, _retry_after, body) = self.request_full(method, path, body)?;
        Ok((status, body))
    }

    /// One raw HTTP exchange, with the `Retry-After` hint (whole
    /// seconds) if the server sent one.
    fn request_full(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Option<u64>, String), ClientError> {
        let mut stream = self.connect()?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_write_timeout(Some(self.cfg.write_timeout))?;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        )?;
        stream.flush()?;

        match Self::read_response(BufReader::new(stream)) {
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(ClientError::Timeout(format!("response from {}", self.addr)))
            }
            other => other,
        }
    }

    /// Parses one `Connection: close` HTTP response.
    fn read_response<R: Read>(
        mut reader: BufReader<R>,
    ) -> Result<(u16, Option<u64>, String), ClientError> {
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
        let mut content_length = None;
        let mut retry_after = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse::<usize>().ok();
                } else if name.trim().eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse::<u64>().ok();
                }
            }
        }
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                String::from_utf8(buf)
                    .map_err(|_| ClientError::Protocol("body is not UTF-8".to_string()))?
            }
            None => {
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        };
        Ok((status, retry_after, body))
    }

    /// A raw exchange with the bounded retry ladder: `429` (queue full,
    /// rate limited) and `503` (connection cap, draining) responses are
    /// retried up to [`ClientConfig::max_retries`] times. The delay is
    /// the server's `Retry-After` hint when present (capped by
    /// [`ClientConfig::retry_after_cap`]), else local exponential
    /// backoff. Safe even for `POST /campaigns`: both statuses are only
    /// sent when the request was *rejected before admission*, so a retry
    /// can never double-submit.
    pub fn request_with_retry(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut backoff = self.cfg.retry_backoff;
        let mut attempt = 0u32;
        loop {
            let (status, retry_after, body_out) = match self.request_full(method, path, body) {
                Ok(out) => out,
                // A daemon past its shed allowance drops arrivals at the
                // socket without answering; treat that reset like a 503
                // and back off. A *refused* connection means nothing is
                // listening — that stays fatal (fail fast), as do all
                // other I/O errors.
                Err(ClientError::Io(e))
                    if attempt < self.cfg.max_retries
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::ConnectionReset
                                | std::io::ErrorKind::ConnectionAborted
                                | std::io::ErrorKind::BrokenPipe
                        ) =>
                {
                    attempt += 1;
                    self.stats.retries_conn.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_secs(5));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if (status == 429 || status == 503) && attempt < self.cfg.max_retries {
                attempt += 1;
                let counter = if status == 429 {
                    &self.stats.retries_429
                } else {
                    &self.stats.retries_503
                };
                counter.fetch_add(1, Ordering::Relaxed);
                let delay = match retry_after {
                    Some(secs) => {
                        self.stats.retry_after_honored.fetch_add(1, Ordering::Relaxed);
                        Duration::from_secs(secs).min(self.cfg.retry_after_cap)
                    }
                    None => backoff,
                };
                std::thread::sleep(delay);
                backoff = (backoff * 2).min(Duration::from_secs(5));
                continue;
            }
            return Ok((status, body_out));
        }
    }

    fn expect_json(&self, result: (u16, String)) -> Result<Json, ClientError> {
        let (status, body) = result;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status { status, body });
        }
        Json::parse(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Submits a campaign; returns the id the daemon assigned.
    pub fn submit(
        &self,
        id: Option<&str>,
        spec: &CampaignSpec,
    ) -> Result<String, ClientError> {
        let mut body = spec.to_json();
        if let Some(id) = id {
            // Put the id first for readable logs; order is cosmetic here.
            if let Json::Obj(fields) = &mut body {
                fields.insert(0, ("id".to_string(), Json::Str(id.to_string())));
            }
        }
        let response =
            self.expect_json(self.request_with_retry("POST", "/campaigns", Some(&body.dump()))?)?;
        response
            .get("id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("submit response lacks `id`".to_string()))
    }

    /// Fetches a campaign's status document.
    pub fn get_campaign(&self, id: &str) -> Result<Json, ClientError> {
        self.expect_json(self.request_with_retry("GET", &format!("/campaigns/{id}"), None)?)
    }

    /// Polls until the campaign reaches a terminal status; returns the
    /// final status document.
    pub fn wait_for(&self, id: &str, timeout: Duration) -> Result<Json, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let doc = self.get_campaign(id)?;
            if let Some("completed" | "interrupted" | "failed") =
                doc.get("status").and_then(Json::as_str)
            {
                return Ok(doc);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout(format!("campaign {id}")));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Fetches the health document.
    pub fn healthz(&self) -> Result<Json, ClientError> {
        self.expect_json(self.request("GET", "/healthz", None)?)
    }

    /// Probes readiness. Returns `Ok(true)` once boot-time recovery has
    /// finished (200), `Ok(false)` while it is still replaying (503).
    /// Deliberately retry-free: the 503 *is* the answer.
    pub fn readyz(&self) -> Result<bool, ClientError> {
        let (status, body) = self.request("GET", "/readyz", None)?;
        match status {
            200 => Ok(true),
            503 => Ok(false),
            _ => Err(ClientError::Status { status, body }),
        }
    }

    /// Fetches the raw metrics exposition.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let (status, body) = self.request("GET", "/metrics", None)?;
        if status != 200 {
            return Err(ClientError::Status { status, body });
        }
        Ok(body)
    }

    /// Requests a graceful drain.
    pub fn drain(&self) -> Result<(), ClientError> {
        let (status, body) = self.request("POST", "/drain", None)?;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status { status, body });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A scripted one-shot server: answers each connection with the next
    /// `(status, retry_after)` in `script`, counting connections.
    fn scripted_server(
        script: Vec<(u16, Option<u64>)>,
    ) -> (String, Arc<AtomicUsize>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hits = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&hits);
        let handle = std::thread::spawn(move || {
            for (status, retry_after) in script {
                let (mut stream, _) = listener.accept().unwrap();
                seen.fetch_add(1, Ordering::SeqCst);
                // Drain the request head before replying.
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap_or(0) > 0 && line.trim_end() != "" {
                    line.clear();
                }
                let body = "{}";
                let hint = match retry_after {
                    Some(secs) => format!("retry-after: {secs}\r\n"),
                    None => String::new(),
                };
                write!(
                    stream,
                    "HTTP/1.1 {status} X\r\ncontent-length: {}\r\n{hint}connection: close\r\n\r\n{body}",
                    body.len()
                )
                .unwrap();
            }
        });
        (addr, hits, handle)
    }

    #[test]
    fn retry_recovers_after_backpressure() {
        let (addr, hits, server) = scripted_server(vec![(503, None), (429, None), (200, None)]);
        let client = Client::new(addr).with_retries(3, Duration::from_millis(2));
        let (status, _) = client.request_with_retry("GET", "/healthz", None).unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(hits.load(Ordering::SeqCst), 3, "one try plus two retries");
        let (r429, r503, honored) = client.stats().snapshot();
        assert_eq!((r429, r503, honored), (1, 1, 0));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let (addr, hits, server) = scripted_server(vec![(503, None), (503, None), (503, None)]);
        let client = Client::new(addr).with_retries(2, Duration::from_millis(2));
        let (status, _) = client.request_with_retry("GET", "/healthz", None).unwrap();
        server.join().unwrap();
        assert_eq!(status, 503, "budget exhausted: the final 503 surfaces");
        assert_eq!(hits.load(Ordering::SeqCst), 3, "one try plus max_retries");
    }

    #[test]
    fn retry_after_hint_overrides_the_backoff_ladder() {
        let (addr, hits, server) = scripted_server(vec![(429, Some(0)), (200, None)]);
        // Local backoff of 10 s would blow the test deadline; the server's
        // `Retry-After: 0` hint must be honored instead.
        let client = Client::new(addr).with_retries(1, Duration::from_secs(10));
        let started = Instant::now();
        let (status, _) = client.request_with_retry("GET", "/healthz", None).unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert!(started.elapsed() < Duration::from_secs(5), "hint honored, not backoff");
        let (r429, _, honored) = client.stats().snapshot();
        assert_eq!((r429, honored), (1, 1));
    }

    #[test]
    fn stalled_server_hits_the_read_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept and then never respond; the client must not hang.
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });
        let client = Client::new(addr).with_config(ClientConfig {
            read_timeout: Duration::from_millis(50),
            ..ClientConfig::default()
        });
        let started = Instant::now();
        let err = client.request("GET", "/healthz", None).unwrap_err();
        assert!(matches!(err, ClientError::Timeout(_)), "got {err:?}");
        assert!(started.elapsed() < Duration::from_millis(400), "timed out promptly");
        server.join().unwrap();
    }

    #[test]
    fn refused_connection_fails_fast_without_retry() {
        // Bind then drop to obtain a port with no listener.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let client = Client::new(format!("127.0.0.1:{port}"))
            .with_retries(5, Duration::from_secs(10));
        let started = Instant::now();
        let err = client.request_with_retry("GET", "/healthz", None).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "connection errors must not consume the retry budget"
        );
    }
}
