//! A blocking client for the daemon's wire protocol.
//!
//! Used by the `loadgen` harness, the CI smoke job, and the integration
//! tests; also a convenient programmatic API. One TCP connection per
//! request, mirroring the server's `Connection: close` policy.

use crate::json::Json;
use crate::protocol::CampaignSpec;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection could not be made or broke mid-request.
    Io(std::io::Error),
    /// The server's response was not parseable HTTP/JSON.
    Protocol(String),
    /// The server answered with a non-2xx status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The response body.
        body: String,
    },
    /// A poll deadline expired.
    Timeout(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Status { status, body } => write!(f, "HTTP {status}: {body}"),
            ClientError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A handle to one daemon.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// One raw HTTP exchange. Returns `(status, body)`.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        )?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
        let mut content_length = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse::<usize>().ok();
                }
            }
        }
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                String::from_utf8(buf)
                    .map_err(|_| ClientError::Protocol("body is not UTF-8".to_string()))?
            }
            None => {
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        };
        Ok((status, body))
    }

    fn expect_json(&self, result: (u16, String)) -> Result<Json, ClientError> {
        let (status, body) = result;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status { status, body });
        }
        Json::parse(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Submits a campaign; returns the id the daemon assigned.
    pub fn submit(
        &self,
        id: Option<&str>,
        spec: &CampaignSpec,
    ) -> Result<String, ClientError> {
        let mut body = spec.to_json();
        if let Some(id) = id {
            // Put the id first for readable logs; order is cosmetic here.
            if let Json::Obj(fields) = &mut body {
                fields.insert(0, ("id".to_string(), Json::Str(id.to_string())));
            }
        }
        let response =
            self.expect_json(self.request("POST", "/campaigns", Some(&body.dump()))?)?;
        response
            .get("id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("submit response lacks `id`".to_string()))
    }

    /// Fetches a campaign's status document.
    pub fn get_campaign(&self, id: &str) -> Result<Json, ClientError> {
        self.expect_json(self.request("GET", &format!("/campaigns/{id}"), None)?)
    }

    /// Polls until the campaign reaches a terminal status; returns the
    /// final status document.
    pub fn wait_for(&self, id: &str, timeout: Duration) -> Result<Json, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let doc = self.get_campaign(id)?;
            if let Some("completed" | "interrupted" | "failed") =
                doc.get("status").and_then(Json::as_str)
            {
                return Ok(doc);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout(format!("campaign {id}")));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Fetches the health document.
    pub fn healthz(&self) -> Result<Json, ClientError> {
        self.expect_json(self.request("GET", "/healthz", None)?)
    }

    /// Fetches the raw metrics exposition.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let (status, body) = self.request("GET", "/metrics", None)?;
        if status != 200 {
            return Err(ClientError::Status { status, body });
        }
        Ok(body)
    }

    /// Requests a graceful drain.
    pub fn drain(&self) -> Result<(), ClientError> {
        let (status, body) = self.request("POST", "/drain", None)?;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status { status, body });
        }
        Ok(())
    }
}
