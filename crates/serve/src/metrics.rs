//! Daemon telemetry with Prometheus-style text exposition.
//!
//! Counters are lock-free atomics bumped on the request path; latency is
//! a fixed set of power-of-two microsecond buckets per endpoint, so
//! `GET /metrics` renders without stopping the world. Campaign-level
//! telemetry (`EvalStats`, `HealthStats`) is aggregated by the scheduler
//! and folded into the same exposition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bounds of the latency buckets, in microseconds. The final bucket
/// is `+Inf`.
pub const BUCKET_BOUNDS_US: [u64; 12] =
    [64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216, 67_108_864, 268_435_456];

/// A fixed-bucket latency histogram, safe to observe from many threads.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 13],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = BUCKET_BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Renders cumulative `_bucket`/`_sum`/`_count` lines for one metric
    /// with a `path` label.
    fn render(&self, name: &str, path: &str, out: &mut String) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{path=\"{path}\",le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.buckets[BUCKET_BOUNDS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{path=\"{path}\",le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum{{path=\"{path}\"}} {}", self.sum_us.load(Ordering::Relaxed));
        let _ = writeln!(out, "{name}_count{{path=\"{path}\"}} {}", self.count.load(Ordering::Relaxed));
    }
}

/// The endpoints the server tracks latency for.
pub const ENDPOINTS: [&str; 5] = ["/campaigns", "/campaigns/{id}", "/healthz", "/readyz", "/metrics"];

/// All daemon-level counters and histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests served, by [`ENDPOINTS`] index.
    requests: [AtomicU64; 5],
    /// Per-endpoint request latency, by [`ENDPOINTS`] index.
    latency: [LatencyHistogram; 5],
    /// Requests that matched no route or used a wrong method.
    pub unmatched_requests: AtomicU64,
    /// Campaigns accepted into the queue.
    pub campaigns_submitted: AtomicU64,
    /// Campaigns that ran to completion.
    pub campaigns_completed: AtomicU64,
    /// Campaigns interrupted by a drain (journals checkpointed).
    pub campaigns_interrupted: AtomicU64,
    /// Campaigns that failed (bad spec, journal error, runtime error).
    pub campaigns_failed: AtomicU64,
    /// Submissions rejected because the admission queue was full.
    pub campaigns_rejected: AtomicU64,
    /// Storage-layer failures observed and survived: manifest or journal
    /// writes/fsyncs that returned an error or landed short. Each one
    /// degrades exactly one campaign; the daemon keeps serving.
    pub storage_errors: AtomicU64,
    /// Connections accepted by the reactor.
    pub connections_accepted: AtomicU64,
    /// Connections currently open (gauge).
    pub connections_open: AtomicU64,
    /// Connections shed with a typed 503 at the connection cap.
    pub connections_shed: AtomicU64,
    /// Connections reaped by a phase deadline (slow-loris, half-open,
    /// stalled readers).
    pub connections_reaped: AtomicU64,
    /// Submissions shed because the admission queue was full.
    pub shed_queue_full: AtomicU64,
    /// Submissions shed by the per-client token-bucket rate limiter.
    pub shed_rate_limit: AtomicU64,
    /// Queued campaigns shed after exceeding their admission deadline.
    pub shed_deadline: AtomicU64,
    /// Connections shed at the connection-count cap.
    pub shed_conn_cap: AtomicU64,
    /// Submissions shed because the daemon was draining or recovering.
    pub shed_unavailable: AtomicU64,
    /// Incomplete campaigns re-admitted by boot-time manifest recovery.
    pub recovered_campaigns: AtomicU64,
    /// Wall-clock duration of the last boot-time recovery replay, in
    /// microseconds (gauge; rendered as seconds).
    pub recovery_us: AtomicU64,
    /// Worker-pool supervision telemetry, shared with every
    /// [`crate::pool::WorkerPool`] the scheduler creates.
    pub workers: Arc<WorkerStats>,
}

/// Supervision telemetry for the evaluation worker pools. One shared
/// instance aggregates across every per-campaign pool; the daemon exposes
/// it as the `asdex_worker_*` metric families.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Worker processes spawned (initial fills plus restarts).
    pub spawns: AtomicU64,
    /// Worker deaths detected (crash, kill, or failed handshake).
    pub deaths: AtomicU64,
    /// Successful restarts after a death.
    pub restarts: AtomicU64,
    /// Worker slots permanently retired after exhausting their restart
    /// budget.
    pub retired: AtomicU64,
    /// Attempts re-dispatched because the worker running them died.
    pub redispatches: AtomicU64,
    /// Attempts quarantined after repeatedly killing workers.
    pub quarantined: AtomicU64,
    /// Workers killed by the supervisor for overrunning a solve deadline.
    pub deadline_kills: AtomicU64,
    /// Workers currently alive (gauge).
    pub alive: AtomicU64,
    /// Worker-side attempt latency.
    pub attempt_latency: LatencyHistogram,
    /// Backoff delay observed before each restart.
    pub restart_delay: LatencyHistogram,
}

impl WorkerStats {
    /// A zeroed registry.
    pub fn new() -> Self {
        WorkerStats::default()
    }

    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the `asdex_worker_*` families.
    fn render(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "# HELP asdex_worker_events_total Worker-pool supervision events.");
        let _ = writeln!(out, "# TYPE asdex_worker_events_total counter");
        for (event, value) in [
            ("spawn", &self.spawns),
            ("death", &self.deaths),
            ("restart", &self.restarts),
            ("retire", &self.retired),
            ("redispatch", &self.redispatches),
            ("quarantine", &self.quarantined),
            ("deadline-kill", &self.deadline_kills),
        ] {
            let _ = writeln!(
                out,
                "asdex_worker_events_total{{event=\"{event}\"}} {}",
                value.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# HELP asdex_workers_alive Worker processes currently alive.");
        let _ = writeln!(out, "# TYPE asdex_workers_alive gauge");
        let _ = writeln!(out, "asdex_workers_alive {}", self.alive.load(Ordering::Relaxed));
        let _ = writeln!(out, "# HELP asdex_worker_attempt_latency_us Worker-side attempt latency.");
        let _ = writeln!(out, "# TYPE asdex_worker_attempt_latency_us histogram");
        self.attempt_latency.render("asdex_worker_attempt_latency_us", "attempt", out);
        let _ = writeln!(out, "# HELP asdex_worker_restart_delay_us Backoff before worker restarts.");
        let _ = writeln!(out, "# TYPE asdex_worker_restart_delay_us histogram");
        self.restart_delay.render("asdex_worker_restart_delay_us", "restart", out);
    }
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Index of an endpoint label in [`ENDPOINTS`].
    pub fn endpoint_index(path: &str) -> Option<usize> {
        ENDPOINTS.iter().position(|e| *e == path)
    }

    /// Records one served request against an endpoint label.
    pub fn observe_request(&self, endpoint: usize, elapsed: Duration) {
        self.requests[endpoint].fetch_add(1, Ordering::Relaxed);
        self.latency[endpoint].observe(elapsed);
    }

    /// Renders the exposition, given point-in-time gauges owned by the
    /// scheduler.
    pub fn render(&self, gauges: &SchedulerGauges) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# HELP asdex_requests_total Requests served by endpoint.");
        let _ = writeln!(out, "# TYPE asdex_requests_total counter");
        for (i, path) in ENDPOINTS.iter().enumerate() {
            let _ = writeln!(
                out,
                "asdex_requests_total{{path=\"{path}\"}} {}",
                self.requests[i].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "asdex_requests_unmatched_total {}",
            self.unmatched_requests.load(Ordering::Relaxed)
        );

        let _ = writeln!(out, "# HELP asdex_request_latency_us Request latency in microseconds.");
        let _ = writeln!(out, "# TYPE asdex_request_latency_us histogram");
        for (i, path) in ENDPOINTS.iter().enumerate() {
            self.latency[i].render("asdex_request_latency_us", path, &mut out);
        }

        let _ = writeln!(out, "# HELP asdex_campaigns_total Campaign lifecycle counters.");
        let _ = writeln!(out, "# TYPE asdex_campaigns_total counter");
        for (state, value) in [
            ("submitted", &self.campaigns_submitted),
            ("completed", &self.campaigns_completed),
            ("interrupted", &self.campaigns_interrupted),
            ("failed", &self.campaigns_failed),
            ("rejected", &self.campaigns_rejected),
        ] {
            let _ = writeln!(
                out,
                "asdex_campaigns_total{{state=\"{state}\"}} {}",
                value.load(Ordering::Relaxed)
            );
        }

        let _ = writeln!(out, "# HELP asdex_queue_depth Campaigns waiting for a runner.");
        let _ = writeln!(out, "# TYPE asdex_queue_depth gauge");
        let _ = writeln!(out, "asdex_queue_depth {}", gauges.queue_depth);
        let _ = writeln!(out, "# HELP asdex_active_campaigns Campaigns currently running.");
        let _ = writeln!(out, "# TYPE asdex_active_campaigns gauge");
        let _ = writeln!(out, "asdex_active_campaigns {}", gauges.active_campaigns);
        let _ = writeln!(out, "# HELP asdex_thread_budget Evaluation threads shared by campaigns.");
        let _ = writeln!(out, "# TYPE asdex_thread_budget gauge");
        let _ = writeln!(out, "asdex_thread_budget {}", gauges.thread_budget);

        let _ = writeln!(out, "# HELP asdex_eval_sims_total Simulator calls across finished campaigns.");
        let _ = writeln!(out, "# TYPE asdex_eval_sims_total counter");
        let _ = writeln!(out, "asdex_eval_sims_total {}", gauges.eval.sims);
        let _ = writeln!(out, "asdex_eval_retries_total {}", gauges.eval.retries);
        let _ = writeln!(out, "asdex_eval_recoveries_total {}", gauges.eval.recoveries);
        for kind in asdex_env::FailureKind::ALL {
            let _ = writeln!(
                out,
                "asdex_eval_failures_total{{kind=\"{}\"}} {}",
                kind.label(),
                gauges.eval.failures_of(kind)
            );
        }
        let _ = writeln!(out, "# HELP asdex_health_interventions_total Self-healing interventions across finished campaigns.");
        let _ = writeln!(out, "# TYPE asdex_health_interventions_total counter");
        for (kind, value) in [
            ("rollbacks", gauges.health.rollbacks),
            ("clipped_updates", gauges.health.clipped_updates),
            ("nonfinite_updates", gauges.health.nonfinite_updates),
            ("tr_reseeds", gauges.health.tr_reseeds),
            ("surrogate_fallbacks", gauges.health.surrogate_fallbacks),
        ] {
            let _ = writeln!(
                out,
                "asdex_health_interventions_total{{kind=\"{kind}\"}} {value}"
            );
        }
        let _ = writeln!(out, "# HELP asdex_connections_total Reactor connection lifecycle events.");
        let _ = writeln!(out, "# TYPE asdex_connections_total counter");
        for (event, value) in [
            ("accepted", &self.connections_accepted),
            ("shed", &self.connections_shed),
            ("reaped", &self.connections_reaped),
        ] {
            let _ = writeln!(
                out,
                "asdex_connections_total{{event=\"{event}\"}} {}",
                value.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# HELP asdex_connections_open Connections currently open.");
        let _ = writeln!(out, "# TYPE asdex_connections_open gauge");
        let _ = writeln!(
            out,
            "asdex_connections_open {}",
            self.connections_open.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# HELP asdex_requests_shed_total Load-shedding decisions by reason.");
        let _ = writeln!(out, "# TYPE asdex_requests_shed_total counter");
        for (reason, value) in [
            ("queue_full", &self.shed_queue_full),
            ("rate_limit", &self.shed_rate_limit),
            ("deadline", &self.shed_deadline),
            ("conn_cap", &self.shed_conn_cap),
            ("unavailable", &self.shed_unavailable),
        ] {
            let _ = writeln!(
                out,
                "asdex_requests_shed_total{{reason=\"{reason}\"}} {}",
                value.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# HELP asdex_dedup_events_total Cross-campaign eval dedup store events.");
        let _ = writeln!(out, "# TYPE asdex_dedup_events_total counter");
        for (event, value) in [
            ("hit", gauges.dedup.hits),
            ("miss", gauges.dedup.misses),
            ("abort", gauges.dedup.aborts),
            ("bypass", gauges.dedup.bypasses),
        ] {
            let _ = writeln!(out, "asdex_dedup_events_total{{event=\"{event}\"}} {value}");
        }
        let _ = writeln!(out, "# HELP asdex_dedup_entries Live entries across dedup stores.");
        let _ = writeln!(out, "# TYPE asdex_dedup_entries gauge");
        let _ = writeln!(out, "asdex_dedup_entries {}", gauges.dedup.entries);
        let _ = writeln!(out, "# HELP asdex_storage_errors_total Journal/manifest write or fsync failures survived.");
        let _ = writeln!(out, "# TYPE asdex_storage_errors_total counter");
        let _ = writeln!(
            out,
            "asdex_storage_errors_total {}",
            self.storage_errors.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# HELP asdex_recovered_campaigns_total Incomplete campaigns re-admitted by boot-time recovery.");
        let _ = writeln!(out, "# TYPE asdex_recovered_campaigns_total counter");
        let _ = writeln!(
            out,
            "asdex_recovered_campaigns_total {}",
            self.recovered_campaigns.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# HELP asdex_recovery_seconds Wall-clock duration of the last boot-time recovery replay.");
        let _ = writeln!(out, "# TYPE asdex_recovery_seconds gauge");
        let _ = writeln!(
            out,
            "asdex_recovery_seconds {}",
            self.recovery_us.load(Ordering::Relaxed) as f64 / 1e6
        );
        self.workers.render(&mut out);
        out
    }
}

/// Point-in-time values sampled from the scheduler at render time.
#[derive(Debug, Clone, Default)]
pub struct SchedulerGauges {
    /// Campaigns waiting for a runner.
    pub queue_depth: usize,
    /// Campaigns currently running.
    pub active_campaigns: usize,
    /// The global evaluation-thread budget.
    pub thread_budget: usize,
    /// Evaluation telemetry summed over finished campaigns.
    pub eval: asdex_env::EvalStats,
    /// Self-healing telemetry summed over finished campaigns.
    pub health: asdex_env::HealthStats,
    /// Cross-campaign eval dedup counters summed over the scheduler's
    /// stores.
    pub dedup: asdex_env::EvalStoreStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::new();
        h.observe(Duration::from_micros(10));
        h.observe(Duration::from_micros(100));
        h.observe(Duration::from_millis(10));
        let mut out = String::new();
        h.render("m", "/x", &mut out);
        assert!(out.contains("m_bucket{path=\"/x\",le=\"64\"} 1"));
        assert!(out.contains("m_bucket{path=\"/x\",le=\"256\"} 2"));
        assert!(out.contains("m_bucket{path=\"/x\",le=\"+Inf\"} 3"));
        assert!(out.contains("m_count{path=\"/x\"} 3"));
    }

    #[test]
    fn exposition_contains_all_families() {
        let m = Metrics::new();
        m.observe_request(0, Duration::from_micros(42));
        m.campaigns_submitted.fetch_add(2, Ordering::Relaxed);
        let text = m.render(&SchedulerGauges { queue_depth: 1, active_campaigns: 2, thread_budget: 4, ..Default::default() });
        assert!(text.contains("asdex_requests_total{path=\"/campaigns\"} 1"));
        assert!(text.contains("asdex_campaigns_total{state=\"submitted\"} 2"));
        assert!(text.contains("asdex_queue_depth 1"));
        assert!(text.contains("asdex_active_campaigns 2"));
        assert!(text.contains("asdex_eval_failures_total{kind=\"cancelled\"} 0"));
        assert!(text.contains("asdex_health_interventions_total{kind=\"rollbacks\"} 0"));
        assert!(text.contains("asdex_requests_total{path=\"/readyz\"} 0"));
        assert!(text.contains("asdex_storage_errors_total 0"));
        assert!(text.contains("asdex_recovered_campaigns_total 0"));
        assert!(text.contains("asdex_recovery_seconds 0"));
    }

    #[test]
    fn shed_connection_and_dedup_families_are_exposed() {
        let m = Metrics::new();
        m.connections_accepted.fetch_add(5, Ordering::Relaxed);
        m.connections_shed.fetch_add(2, Ordering::Relaxed);
        m.connections_reaped.fetch_add(1, Ordering::Relaxed);
        m.connections_open.store(3, Ordering::Relaxed);
        m.shed_queue_full.fetch_add(4, Ordering::Relaxed);
        m.shed_rate_limit.fetch_add(6, Ordering::Relaxed);
        let gauges = SchedulerGauges {
            dedup: asdex_env::EvalStoreStats { hits: 7, misses: 9, ..Default::default() },
            ..Default::default()
        };
        let text = m.render(&gauges);
        assert!(text.contains("asdex_connections_total{event=\"accepted\"} 5"));
        assert!(text.contains("asdex_connections_total{event=\"shed\"} 2"));
        assert!(text.contains("asdex_connections_total{event=\"reaped\"} 1"));
        assert!(text.contains("asdex_connections_open 3"));
        assert!(text.contains("asdex_requests_shed_total{reason=\"queue_full\"} 4"));
        assert!(text.contains("asdex_requests_shed_total{reason=\"rate_limit\"} 6"));
        assert!(text.contains("asdex_requests_shed_total{reason=\"deadline\"} 0"));
        assert!(text.contains("asdex_requests_shed_total{reason=\"conn_cap\"} 0"));
        assert!(text.contains("asdex_dedup_events_total{event=\"hit\"} 7"));
        assert!(text.contains("asdex_dedup_events_total{event=\"miss\"} 9"));
        assert!(text.contains("asdex_dedup_entries 0"));
    }

    #[test]
    fn worker_families_are_exposed() {
        let m = Metrics::new();
        WorkerStats::bump(&m.workers.spawns);
        WorkerStats::bump(&m.workers.deaths);
        m.workers.alive.store(4, Ordering::Relaxed);
        m.workers.attempt_latency.observe(Duration::from_micros(100));
        let text = m.render(&SchedulerGauges::default());
        assert!(text.contains("asdex_worker_events_total{event=\"spawn\"} 1"));
        assert!(text.contains("asdex_worker_events_total{event=\"death\"} 1"));
        assert!(text.contains("asdex_worker_events_total{event=\"quarantine\"} 0"));
        assert!(text.contains("asdex_workers_alive 4"));
        assert!(text.contains("asdex_worker_attempt_latency_us_count{path=\"attempt\"} 1"));
    }
}
