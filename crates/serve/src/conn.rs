//! One nonblocking connection: bounded buffers, phase deadlines, and a
//! tiny state machine the reactor polls.
//!
//! A connection moves through three phases — reading the request head,
//! reading the body, writing the response — each under its own absolute
//! deadline. Deadlines are *absolute per phase*, never refreshed by
//! activity: a slow-loris client dribbling one header byte per second
//! keeps "making progress" but still dies when the head deadline lands.
//! Half-open peers (connected, never sending, never closing) die by the
//! same clock. All buffers are bounded by the HTTP layer's parse limits
//! plus one read chunk, so no client can balloon memory.

use crate::http::{parse_request, ParseStatus, Request, Response, MAX_BODY, MAX_LINE};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Hard cap on the per-connection read buffer: the largest legal head
/// (request line + 100 headers + slack) plus the largest legal body. The
/// parser rejects anything that could exceed this, so the cap is a
/// defense-in-depth backstop, not the primary bound.
const MAX_BUFFER: usize = MAX_BODY + 104 * MAX_LINE;

/// Bytes per nonblocking read call.
const READ_CHUNK: usize = 4096;

/// Read/write calls per poll before yielding to other connections.
const MAX_OPS_PER_POLL: usize = 16;

/// Per-phase deadlines, measured from the moment the phase starts.
#[derive(Debug, Clone, Copy)]
pub struct ConnDeadlines {
    /// Accept → complete request head.
    pub header: Duration,
    /// Complete head → complete body.
    pub body: Duration,
    /// Response queued → response flushed.
    pub write: Duration,
}

impl ConnDeadlines {
    /// All three phases bounded by the same timeout.
    pub fn uniform(timeout: Duration) -> Self {
        ConnDeadlines { header: timeout, body: timeout, write: timeout }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    /// Accumulating request bytes; `head_done` flips the body deadline on.
    Reading { head_done: bool },
    /// A parsed request is waiting for the reactor to route it.
    Routing,
    /// Draining the response buffer to the socket.
    Writing,
    /// Finished (flushed, peer gone, or fatal error); ready for removal.
    Done,
}

/// What one [`Conn::poll`] produced.
#[derive(Debug)]
pub enum Drive {
    /// Still in flight.
    Pending {
        /// Whether any bytes moved, so the reactor can sleep only when
        /// the whole set is quiescent.
        progressed: bool,
    },
    /// A complete request is parsed and ready for routing; answer with
    /// [`Conn::respond`].
    Ready(Box<Request>),
    /// A phase deadline expired; the connection was reaped. Terminal.
    Expired,
    /// The connection finished (response flushed or peer gone). Terminal.
    Closed,
}

/// One connection owned by the reactor.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    buf: Vec<u8>,
    out: Vec<u8>,
    written: usize,
    phase: Phase,
    deadline: Instant,
    deadlines: ConnDeadlines,
}

impl Conn {
    /// Adopts an accepted stream: switches it to nonblocking mode and
    /// starts the header-deadline clock.
    pub fn accept(
        stream: TcpStream,
        peer: SocketAddr,
        now: Instant,
        deadlines: ConnDeadlines,
    ) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            peer,
            buf: Vec::new(),
            out: Vec::new(),
            written: 0,
            phase: Phase::Reading { head_done: false },
            deadline: now + deadlines.header,
            deadlines,
        })
    }

    /// Adopts a stream only to write `response` and close — the typed
    /// shedding path used when the connection cap is hit. The peer's
    /// request is never read.
    pub fn shed(
        stream: TcpStream,
        peer: SocketAddr,
        now: Instant,
        deadlines: ConnDeadlines,
        response: &Response,
    ) -> std::io::Result<Conn> {
        let mut conn = Conn::accept(stream, peer, now, deadlines)?;
        conn.out = response.to_bytes();
        conn.phase = Phase::Writing;
        conn.deadline = now + deadlines.write;
        Ok(conn)
    }

    /// The peer address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Whether the connection is finished and can be dropped.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Queues the response for the parsed request and starts the write
    /// deadline. Only valid after [`Drive::Ready`].
    pub fn respond(&mut self, response: &Response, now: Instant) {
        self.out = response.to_bytes();
        self.written = 0;
        self.phase = Phase::Writing;
        self.deadline = now + self.deadlines.write;
    }

    /// Advances the connection as far as the socket allows without
    /// blocking.
    pub fn poll(&mut self, now: Instant) -> Drive {
        if self.phase != Phase::Done && now >= self.deadline {
            self.phase = Phase::Done;
            return Drive::Expired;
        }
        match self.phase {
            Phase::Reading { .. } => self.poll_read(now),
            Phase::Routing => Drive::Pending { progressed: false },
            Phase::Writing => self.poll_write(),
            Phase::Done => Drive::Closed,
        }
    }

    fn poll_read(&mut self, now: Instant) -> Drive {
        let mut progressed = false;
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..MAX_OPS_PER_POLL {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed before completing a request (an aborted
                    // client or a scanner). Nothing to answer.
                    self.phase = Phase::Done;
                    return Drive::Closed;
                }
                Ok(n) => {
                    progressed = true;
                    if self.buf.len() + n > MAX_BUFFER {
                        return self.reject("request too large", now);
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    match self.advance_parse(now) {
                        Some(drive) => return drive,
                        None => continue,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.phase = Phase::Done;
                    return Drive::Closed;
                }
            }
        }
        Drive::Pending { progressed }
    }

    /// Re-parses the accumulated buffer after new bytes arrived.
    fn advance_parse(&mut self, now: Instant) -> Option<Drive> {
        // Head completion flips the clock from the header deadline to the
        // body deadline exactly once.
        if let Phase::Reading { head_done } = &mut self.phase {
            if !*head_done && find_head_end(&self.buf).is_some() {
                *head_done = true;
                self.deadline = now + self.deadlines.body;
            }
        }
        match parse_request(&self.buf) {
            ParseStatus::Partial => None,
            ParseStatus::Complete(request, _consumed) => {
                // `Connection: close` protocol: one request per
                // connection. Anything pipelined after it is ignored, and
                // no further reads happen.
                self.phase = Phase::Routing;
                Some(Drive::Ready(request))
            }
            ParseStatus::Invalid(reason) => Some(self.reject(reason, now)),
        }
    }

    /// Queues a 400 for a malformed request and moves to the write phase.
    fn reject(&mut self, reason: &str, now: Instant) -> Drive {
        let body = crate::json::Json::obj()
            .with("error", crate::json::Json::Str(reason.to_string()))
            .dump();
        self.respond(&Response::json(400, body), now);
        Drive::Pending { progressed: true }
    }

    fn poll_write(&mut self) -> Drive {
        for _ in 0..MAX_OPS_PER_POLL {
            if self.written >= self.out.len() {
                let _ = self.stream.flush();
                self.phase = Phase::Done;
                return Drive::Closed;
            }
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => {
                    self.phase = Phase::Done;
                    return Drive::Closed;
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Drive::Pending { progressed: false };
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // A stalled or vanished reader never pins the writer:
                    // the error (or, failing that, the write deadline)
                    // closes the connection.
                    self.phase = Phase::Done;
                    return Drive::Closed;
                }
            }
        }
        Drive::Pending { progressed: true }
    }
}

/// Index just past the blank line terminating the request head, if the
/// buffer holds one yet. Accepts both CRLF and bare-LF line endings,
/// matching the parser.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut prev_nl: Option<usize> = None;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        if let Some(p) = prev_nl {
            let gap = &buf[p + 1..i];
            if gap.is_empty() || gap == b"\r" {
                return Some(i + 1);
            }
        }
        prev_nl = Some(i);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection_handles_both_line_endings() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }
}
