//! A deliberately small HTTP/1.1 implementation.
//!
//! The daemon speaks just enough HTTP for `curl` and the bundled client:
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies only (no chunked transfer), and a bounded request size so a
//! misbehaving client cannot balloon memory. This is a wire format, not a
//! web framework — routing lives in [`crate::server`].

use std::fmt;
use std::io::{self, BufRead, Write};

/// Largest accepted request head + body, in bytes.
pub const MAX_BODY: usize = 1 << 20;
/// Largest accepted request-line/header line, in bytes.
pub const MAX_LINE: usize = 8 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string retained, if any).
    pub path: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The request was malformed or exceeded a size bound; the payload is
    /// the status line to answer with.
    Bad(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Bad(reason) => write!(f, "bad request: {reason}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let n = reader.by_ref().take(MAX_LINE as u64 + 1).read_until(b'\n', &mut line)?;
    if n > MAX_LINE {
        return Err(HttpError::Bad("header line too long"));
    }
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad("header is not UTF-8"))
}

use std::io::Read;

/// Reads one request from the stream. Returns `Ok(None)` if the peer
/// closed the connection before sending anything.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let request_line = read_line(reader)?;
    if request_line.is_empty() {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Bad("missing method"))?.to_uppercase();
    let path = parts.next().ok_or(HttpError::Bad("missing path"))?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1") {
        return Err(HttpError::Bad("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_lowercase(), value.trim().to_string()));
        }
        if headers.len() > 100 {
            return Err(HttpError::Bad("too many headers"));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| HttpError::Bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::Bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Some(Request { method, path, headers, body }))
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Media type of the body.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body: body.into_bytes() }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into_bytes() }
    }

    /// Writes the response (status line, headers, body) and flushes.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn empty_connection_is_none() {
        let raw = b"";
        assert!(read_request(&mut BufReader::new(&raw[..])).unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let err = read_request(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert!(matches!(err, HttpError::Bad(_)));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string()).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
