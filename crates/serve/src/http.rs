//! A deliberately small HTTP/1.1 implementation.
//!
//! The daemon speaks just enough HTTP for `curl` and the bundled client:
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies only (no chunked transfer), and a bounded request size so a
//! misbehaving client cannot balloon memory. This is a wire format, not a
//! web framework — routing lives in [`crate::server`].

use std::fmt;
use std::io::{self, BufRead, Write};

/// Largest accepted request head + body, in bytes.
pub const MAX_BODY: usize = 1 << 20;
/// Largest accepted request-line/header line, in bytes.
pub const MAX_LINE: usize = 8 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string retained, if any).
    pub path: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The request was malformed or exceeded a size bound; the payload is
    /// the status line to answer with.
    Bad(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Bad(reason) => write!(f, "bad request: {reason}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let n = reader.by_ref().take(MAX_LINE as u64 + 1).read_until(b'\n', &mut line)?;
    if n > MAX_LINE {
        return Err(HttpError::Bad("header line too long"));
    }
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad("header is not UTF-8"))
}

use std::io::Read;

/// Reads one request from the stream. Returns `Ok(None)` if the peer
/// closed the connection before sending anything.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let request_line = read_line(reader)?;
    if request_line.is_empty() {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Bad("missing method"))?.to_uppercase();
    let path = parts.next().ok_or(HttpError::Bad("missing path"))?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1") {
        return Err(HttpError::Bad("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_lowercase(), value.trim().to_string()));
        }
        if headers.len() > 100 {
            return Err(HttpError::Bad("too many headers"));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| HttpError::Bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::Bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Some(Request { method, path, headers, body }))
}

/// Progress of the incremental request parser used by the nonblocking
/// connection reactor; see [`parse_request`].
#[derive(Debug)]
pub enum ParseStatus {
    /// The buffer does not yet hold a complete request.
    Partial,
    /// A complete request, plus the number of buffer bytes it consumed.
    /// Anything after `consumed` is pipelined garbage — this server is
    /// `Connection: close`, so it is never read.
    Complete(Box<Request>, usize),
    /// The bytes can never become a valid request; the payload is the
    /// reason to answer 400 with before closing.
    Invalid(&'static str),
}

/// Incrementally parses one request from an accumulation buffer.
///
/// Unlike [`read_request`] this never blocks: callers append whatever a
/// nonblocking read produced and re-invoke. Size bounds are enforced on
/// the *partial* input too — a header line that already exceeds
/// [`MAX_LINE`] or more than 100 header lines is rejected immediately,
/// without waiting for a newline, so a flooding client cannot grow the
/// buffer past the bounds by simply never terminating a line.
pub fn parse_request(buf: &[u8]) -> ParseStatus {
    // Robustness (and RFC 9112 §2.2): ignore CRLF noise before the
    // request line.
    let start = buf.iter().position(|&b| b != b'\r' && b != b'\n').unwrap_or(buf.len());
    let buf_trimmed = &buf[start..];
    // Walk complete lines looking for the blank line ending the head.
    let mut offset = 0usize; // into buf_trimmed
    let mut lines: Vec<&[u8]> = Vec::new();
    let head_len = loop {
        let rest = &buf_trimmed[offset..];
        match rest.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if nl > MAX_LINE {
                    return ParseStatus::Invalid("header line too long");
                }
                let mut line = &rest[..nl];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                offset += nl + 1;
                if line.is_empty() {
                    break offset;
                }
                lines.push(line);
                // Request line + at most 100 header lines.
                if lines.len() > 101 {
                    return ParseStatus::Invalid("too many headers");
                }
            }
            None => {
                // No newline yet: bound the dangling partial line too.
                if rest.len() > MAX_LINE {
                    return ParseStatus::Invalid("header line too long");
                }
                if lines.len() > 101 {
                    return ParseStatus::Invalid("too many headers");
                }
                return ParseStatus::Partial;
            }
        }
    };
    let mut text_lines = Vec::with_capacity(lines.len());
    for line in &lines {
        match std::str::from_utf8(line) {
            Ok(s) => text_lines.push(s),
            Err(_) => return ParseStatus::Invalid("header is not UTF-8"),
        }
    }
    let Some((&request_line, header_lines)) = text_lines.split_first() else {
        return ParseStatus::Invalid("missing method");
    };
    let mut parts = request_line.split_whitespace();
    let Some(method) = parts.next() else {
        return ParseStatus::Invalid("missing method");
    };
    let method = method.to_uppercase();
    let Some(path) = parts.next() else {
        return ParseStatus::Invalid("missing path");
    };
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1") {
        return ParseStatus::Invalid("unsupported HTTP version");
    }
    let mut headers = Vec::new();
    for line in header_lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_lowercase(), value.trim().to_string()));
        }
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ParseStatus::Invalid("bad content-length"),
        },
    };
    if content_length > MAX_BODY {
        return ParseStatus::Invalid("body too large");
    }
    if buf_trimmed.len() < head_len + content_length {
        return ParseStatus::Partial;
    }
    let body = buf_trimmed[head_len..head_len + content_length].to_vec();
    let consumed = start + head_len + content_length;
    ParseStatus::Complete(
        Box::new(Request { method, path: path.to_string(), headers, body }),
        consumed,
    )
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Media type of the body.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header value, in seconds — attached to
    /// 429/503 shed responses so well-behaved clients pace their retries.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` header (builder style).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// Writes the response (status line, headers, body) and flushes.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        writer.write_all(&self.to_bytes())?;
        writer.flush()
    }

    /// The full wire form of the response, for buffered nonblocking
    /// writers.
    pub fn to_bytes(&self) -> Vec<u8> {
        let retry = match self.retry_after {
            Some(secs) => format!("retry-after: {secs}\r\n"),
            None => String::new(),
        };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}connection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            retry,
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn empty_connection_is_none() {
        let raw = b"";
        assert!(read_request(&mut BufReader::new(&raw[..])).unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let err = read_request(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert!(matches!(err, HttpError::Bad(_)));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string()).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn retry_after_header_is_emitted() {
        let bytes = Response::json(429, "{}".into()).with_retry_after(7).to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 7\r\n"));
    }

    #[test]
    fn incremental_parser_handles_byte_at_a_time_arrival() {
        let raw = b"POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        for cut in 0..raw.len() {
            match parse_request(&raw[..cut]) {
                ParseStatus::Partial => {}
                other => panic!("prefix of {cut} bytes must be Partial, got {other:?}"),
            }
        }
        match parse_request(raw) {
            ParseStatus::Complete(req, consumed) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/campaigns");
                assert_eq!(req.header("host"), Some("x"));
                assert_eq!(req.body, b"abcd");
                assert_eq!(consumed, raw.len());
            }
            other => panic!("full request must be Complete, got {other:?}"),
        }
    }

    #[test]
    fn incremental_parser_agrees_with_blocking_reader() {
        let raw = b"GET /healthz HTTP/1.1\r\nAccept: */*\r\n\r\n";
        let blocking = read_request(&mut BufReader::new(&raw[..])).unwrap().unwrap();
        match parse_request(raw) {
            ParseStatus::Complete(incremental, _) => assert_eq!(*incremental, blocking),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_bytes_after_a_request_are_not_consumed() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGARBAGE \0\xff pipelined";
        match parse_request(raw) {
            ParseStatus::Complete(req, consumed) => {
                assert_eq!(req.path, "/healthz");
                assert_eq!(&raw[consumed..], b"GARBAGE \0\xff pipelined");
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_oversized_header_line_is_rejected_early() {
        // Dangling header line at exactly the bound, no newline: still
        // waiting (a terminating CRLF could arrive next).
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE));
        assert!(matches!(parse_request(&raw), ParseStatus::Partial));
        // One byte over, still no newline: rejected immediately.
        raw.push(b'a');
        match parse_request(&raw) {
            ParseStatus::Invalid(reason) => assert_eq!(reason, "header line too long"),
            other => panic!("oversized line must be Invalid, got {other:?}"),
        }
    }

    #[test]
    fn header_count_flood_is_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            raw.extend_from_slice(format!("x-{i}: v\r\n").as_bytes());
        }
        match parse_request(&raw) {
            ParseStatus::Invalid(reason) => assert_eq!(reason, "too many headers"),
            other => panic!("header flood must be Invalid, got {other:?}"),
        }
    }

    #[test]
    fn incremental_oversized_body_is_rejected() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_request(raw.as_bytes()), ParseStatus::Invalid("body too large")));
    }
}
