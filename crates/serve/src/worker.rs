//! The sandboxed evaluation-worker side of the process-isolation layer.
//!
//! A worker is a child process running [`run_worker`] (the CLI's
//! `asdex worker` subcommand): it builds one benchmark problem, arms the
//! process-level fault modes (so injected aborts/hangs/kills take down
//! *this* process, never the daemon), and then serves single evaluator
//! attempts over a length-prefixed stdio protocol until its supervisor
//! closes the pipe or sends a shutdown frame.
//!
//! # Wire protocol (version 1)
//!
//! Every frame is a 4-byte big-endian payload length followed by a UTF-8
//! text payload in the journal's `key=value` idiom, floats as 16-hex-digit
//! IEEE-754 bit patterns (bitwise-exact round trips, like everything else
//! in this repo):
//!
//! ```text
//! worker → supervisor   H proto=1 bench=bowl3 corners=nominal n=1   (handshake)
//! supervisor → worker   A a=0 c=2 d=10000 x=3fe0...,3fd5...         (attempt)
//! worker → supervisor   R t=812 m=4010...,c008...                   (measurements)
//! worker → supervisor   F t=313 k=no-convergence                    (typed failure)
//! supervisor → worker   P          worker → supervisor   O          (heartbeat)
//! supervisor → worker   Q                                           (shutdown)
//! ```
//!
//! `a` is the retry-ladder rung, `c` the corner index, `d` the
//! supervisor's wall deadline for this attempt in milliseconds (derived
//! from `asdex_spice::SolveBudget::wall_allowance`, purely informational
//! to the worker), `t` the worker-side solve time in microseconds. The
//! supervisor validates the handshake's protocol version, benchmark, and
//! corner set before dispatching anything, so a version or configuration
//! skew is a typed spawn failure, not silent corruption.

use asdex_env::{
    arm_process_faults, run_attempt, FailureKind, FaultConfig, FaultInjectingEvaluator, FaultMode,
};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// Protocol version spoken by [`run_worker`]; bumped on any frame-format
/// change so a mixed-version daemon/worker pair fails the handshake
/// instead of misparsing frames.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload. Large enough for any measurement
/// vector by orders of magnitude; small enough that a corrupt length
/// prefix cannot make the reader allocate unboundedly.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one length-prefixed frame and flushes it (a worker reply must
/// never sit in a buffer while the supervisor's deadline runs).
///
/// # Errors
///
/// [`std::io::Error`] when the peer is gone (EPIPE) or the payload
/// exceeds [`MAX_FRAME_BYTES`].
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap", bytes.len()),
        ));
    }
    let len = bytes.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed frame. An EOF at a frame boundary is
/// surfaced as [`std::io::ErrorKind::UnexpectedEof`] — the reader thread
/// in the supervisor treats that as worker death.
///
/// # Errors
///
/// [`std::io::Error`] on EOF, a length prefix beyond
/// [`MAX_FRAME_BYTES`], or a non-UTF-8 payload.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<String> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 frame"))
}

/// Serializes a float as its 16-hex-digit IEEE-754 bit pattern.
fn fmt_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn fmt_list(xs: &[f64]) -> String {
    xs.iter().map(|v| fmt_f64(*v)).collect::<Vec<_>>().join(",")
}

fn parse_list(s: &str) -> Option<Vec<f64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(parse_hex_f64).collect()
}

/// The handshake frame a worker announces itself with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub proto: u32,
    /// Benchmark the worker was built for.
    pub bench: String,
    /// Corner-set name the worker was built for.
    pub corners: String,
    /// Measurement-vector length the worker's evaluator produces.
    pub n_meas: usize,
    /// Netlist source digest the worker validated its deck against
    /// (`netlist:<path>` benches only). The supervisor requires this to
    /// equal its own expected digest, so a worker that compiled a
    /// different deck revision is a typed spawn failure.
    pub netlist_digest: Option<u64>,
}

impl Handshake {
    /// The `H …` frame payload.
    pub fn to_frame(&self) -> String {
        let mut frame = format!(
            "H proto={} bench={} corners={} n={}",
            self.proto, self.bench, self.corners, self.n_meas
        );
        if let Some(digest) = self.netlist_digest {
            frame.push_str(&format!(" digest={digest:016x}"));
        }
        frame
    }

    /// Parses an `H …` frame payload.
    pub fn parse(payload: &str) -> Option<Handshake> {
        let mut parts = payload.split_whitespace();
        if parts.next()? != "H" {
            return None;
        }
        let (mut proto, mut bench, mut corners, mut n_meas) = (None, None, None, None);
        let mut netlist_digest = None;
        for tok in parts {
            let (k, v) = tok.split_once('=')?;
            match k {
                "proto" => proto = v.parse().ok(),
                "bench" => bench = Some(v.to_string()),
                "corners" => corners = Some(v.to_string()),
                "n" => n_meas = v.parse().ok(),
                "digest" => netlist_digest = Some(u64::from_str_radix(v, 16).ok()?),
                _ => {}
            }
        }
        Some(Handshake {
            proto: proto?,
            bench: bench?,
            corners: corners?,
            n_meas: n_meas?,
            netlist_digest,
        })
    }
}

/// One attempt request, supervisor → worker.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRequest {
    /// Retry-ladder rung (0 = first try).
    pub attempt: usize,
    /// Corner index into the benchmark's corner set.
    pub corner_idx: usize,
    /// Supervisor wall deadline for this attempt, in milliseconds.
    pub deadline_ms: u64,
    /// Physical parameter vector.
    pub x_phys: Vec<f64>,
}

impl AttemptRequest {
    /// The `A …` frame payload.
    pub fn to_frame(&self) -> String {
        format!(
            "A a={} c={} d={} x={}",
            self.attempt,
            self.corner_idx,
            self.deadline_ms,
            fmt_list(&self.x_phys)
        )
    }

    /// Parses an `A …` frame payload.
    pub fn parse(payload: &str) -> Option<AttemptRequest> {
        let mut parts = payload.split_whitespace();
        if parts.next()? != "A" {
            return None;
        }
        let (mut attempt, mut corner_idx, mut deadline_ms, mut x_phys) = (None, None, None, None);
        for tok in parts {
            let (k, v) = tok.split_once('=')?;
            match k {
                "a" => attempt = v.parse().ok(),
                "c" => corner_idx = v.parse().ok(),
                "d" => deadline_ms = v.parse().ok(),
                "x" => x_phys = parse_list(v),
                _ => {}
            }
        }
        Some(AttemptRequest {
            attempt: attempt?,
            corner_idx: corner_idx?,
            deadline_ms: deadline_ms?,
            x_phys: x_phys?,
        })
    }
}

/// One attempt reply, worker → supervisor: measurements or a typed
/// failure, plus the worker-side solve time in microseconds (fed into the
/// supervisor's attempt-latency histogram).
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptReply {
    /// The attempt outcome in the shared failure taxonomy.
    pub result: Result<Vec<f64>, FailureKind>,
    /// Worker-side solve time, microseconds.
    pub elapsed_us: u64,
}

impl AttemptReply {
    /// The `R …`/`F …` frame payload.
    pub fn to_frame(&self) -> String {
        match &self.result {
            Ok(meas) => format!("R t={} m={}", self.elapsed_us, fmt_list(meas)),
            Err(kind) => format!("F t={} k={}", self.elapsed_us, kind.label()),
        }
    }

    /// Parses an `R …`/`F …` frame payload.
    pub fn parse(payload: &str) -> Option<AttemptReply> {
        let mut parts = payload.split_whitespace();
        let tag = parts.next()?;
        let (mut elapsed_us, mut meas, mut kind) = (None, None, None);
        for tok in parts {
            let (k, v) = tok.split_once('=')?;
            match k {
                "t" => elapsed_us = v.parse().ok(),
                "m" => meas = parse_list(v),
                "k" => kind = FailureKind::from_label(v),
                _ => {}
            }
        }
        match tag {
            "R" => Some(AttemptReply { result: Ok(meas?), elapsed_us: elapsed_us? }),
            "F" => Some(AttemptReply { result: Err(kind?), elapsed_us: elapsed_us? }),
            _ => None,
        }
    }
}

/// Configuration of one worker process, parsed from the `asdex worker`
/// CLI flags by the binary and handed to [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Benchmark name (`build_problem` vocabulary).
    pub bench: String,
    /// Corner-set name (`build_problem` vocabulary).
    pub corners: String,
    /// Linear-solver backend label (`auto`, `dense`, `sparse`). Forwarded
    /// from the campaign spec so every worker factors with the same
    /// backend the campaign recorded.
    pub solver: String,
    /// Expected netlist source digest for `netlist:<path>` benches
    /// (`--netlist-digest`, 16-hex). The worker re-compiles the deck and
    /// refuses to serve if the file no longer hashes to this value.
    pub netlist_digest: Option<u64>,
    /// Deterministic fault plan for chaos testing: `(rate, seed, mode)`;
    /// `mode = None` uses the default mix. Applied by wrapping the
    /// benchmark evaluator in a [`FaultInjectingEvaluator`], exactly as an
    /// in-process chaos run would.
    pub fault: Option<(f64, u64, Option<FaultMode>)>,
}

/// Runs the worker loop over `input`/`output` until EOF or a shutdown
/// frame. Split from the stdio binding so tests can drive a worker over
/// in-memory pipes.
///
/// # Errors
///
/// A human-readable message when the benchmark cannot be built or the
/// handshake cannot be written; protocol errors mid-loop terminate the
/// loop silently (the supervisor sees EOF and types the death).
pub fn serve_worker<R: Read, W: Write>(
    cfg: &WorkerConfig,
    input: &mut R,
    output: &mut W,
) -> Result<(), String> {
    let solver = asdex_spice::analysis::SolverChoice::from_label(&cfg.solver)
        .ok_or_else(|| format!("unknown solver backend {:?}", cfg.solver))?;
    let mut problem =
        crate::campaign::build_problem_checked(&cfg.bench, &cfg.corners, cfg.netlist_digest)?
            .with_solver(solver);
    if let Some((rate, seed, mode)) = &cfg.fault {
        let fault_cfg = match mode {
            Some(m) => FaultConfig::only(*m, *rate, *seed),
            None => FaultConfig::new(*rate, *seed),
        };
        problem.evaluator =
            Arc::new(FaultInjectingEvaluator::new(problem.evaluator.clone(), fault_cfg));
    }
    let evaluator = problem.evaluator.clone();
    let corners = problem.corners.clone();
    let hello = Handshake {
        proto: PROTOCOL_VERSION,
        bench: cfg.bench.clone(),
        corners: cfg.corners.clone(),
        n_meas: evaluator.measurement_names().len(),
        netlist_digest: cfg.netlist_digest,
    };
    write_frame(output, &hello.to_frame()).map_err(|e| format!("handshake write: {e}"))?;
    loop {
        let frame = match read_frame(input) {
            Ok(f) => f,
            // Supervisor gone (EOF) or pipe corrupt: either way this
            // worker has no one to serve.
            Err(_) => return Ok(()),
        };
        let reply = match frame.chars().next() {
            Some('P') => "O".to_string(),
            Some('Q') | None => return Ok(()),
            Some('A') => match AttemptRequest::parse(&frame) {
                Some(req) => {
                    let start = Instant::now();
                    let result = match corners.corners().get(req.corner_idx).copied() {
                        Some(corner) => {
                            run_attempt(evaluator.as_ref(), &req.x_phys, &corner, req.attempt)
                        }
                        None => Err(FailureKind::InvalidInput),
                    };
                    let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    AttemptReply { result, elapsed_us }.to_frame()
                }
                None => AttemptReply { result: Err(FailureKind::InvalidInput), elapsed_us: 0 }
                    .to_frame(),
            },
            Some(_) => {
                // Unknown frame tag: a version-skew symptom. Reply with a
                // typed failure rather than dying, so the supervisor can
                // keep its accounting.
                AttemptReply { result: Err(FailureKind::Other), elapsed_us: 0 }.to_frame()
            }
        };
        if write_frame(output, &reply).is_err() {
            return Ok(());
        }
    }
}

/// The `asdex worker` entry point: arms process-level faults, binds the
/// loop to stdin/stdout, and serves until the supervisor disconnects.
///
/// # Errors
///
/// A human-readable message when the benchmark cannot be built.
pub fn run_worker(cfg: &WorkerConfig) -> Result<(), String> {
    // Only a sacrificial worker process ever arms these: an injected
    // worker-abort/hang/kill must take down *this* process, not a test
    // harness or the daemon.
    arm_process_faults();
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    serve_worker(cfg, &mut stdin, &mut stdout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_bitwise() {
        let req = AttemptRequest {
            attempt: 2,
            corner_idx: 4,
            deadline_ms: 10_000,
            x_phys: vec![0.1 + 0.2, -1.5e-9, f64::MIN_POSITIVE],
        };
        assert_eq!(AttemptRequest::parse(&req.to_frame()), Some(req));
        let ok = AttemptReply { result: Ok(vec![1.25, -0.0]), elapsed_us: 812 };
        assert_eq!(AttemptReply::parse(&ok.to_frame()), Some(ok));
        let fail = AttemptReply { result: Err(FailureKind::NoConvergence), elapsed_us: 3 };
        assert_eq!(AttemptReply::parse(&fail.to_frame()), Some(fail));
        let hello = Handshake {
            proto: PROTOCOL_VERSION,
            bench: "bowl3".into(),
            corners: "nominal".into(),
            n_meas: 1,
            netlist_digest: None,
        };
        assert_eq!(Handshake::parse(&hello.to_frame()), Some(hello));
        let with_digest = Handshake {
            proto: PROTOCOL_VERSION,
            bench: "netlist:decks/x.sp".into(),
            corners: "nominal".into(),
            n_meas: 5,
            netlist_digest: Some(0xaf63dc4c8601ec8c),
        };
        assert!(with_digest.to_frame().contains("digest=af63dc4c8601ec8c"));
        assert_eq!(Handshake::parse(&with_digest.to_frame()), Some(with_digest));
        assert_eq!(Handshake::parse("H proto=1 bench=b corners=c n=1 digest=zz"), None);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert_eq!(AttemptRequest::parse("A a=1"), None, "missing fields");
        assert_eq!(AttemptRequest::parse("B a=1 c=0 d=1 x="), None, "wrong tag");
        assert_eq!(AttemptReply::parse("R t=1 m=abc"), None, "short hex");
        assert_eq!(AttemptReply::parse("F t=1 k=not-a-kind"), None);
        assert_eq!(Handshake::parse("H proto=x bench=b corners=c n=1"), None);
    }

    #[test]
    fn frame_io_round_trips_and_caps_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "A a=0 c=0 d=1 x=").unwrap();
        write_frame(&mut buf, "Q").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), "A a=0 c=0 d=1 x=");
        assert_eq!(read_frame(&mut cursor).unwrap(), "Q");
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof,
            "clean EOF at a frame boundary"
        );
        // A hostile length prefix is rejected before allocation.
        let hostile = [0xFFu8, 0xFF, 0xFF, 0xFF];
        assert_eq!(
            read_frame(&mut &hostile[..]).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn worker_loop_serves_attempts_over_pipes() {
        let cfg =
            WorkerConfig {
                bench: "bowl2".into(),
                corners: "nominal".into(),
                solver: "auto".into(),
                netlist_digest: None,
                fault: None,
            };
        // Scripted supervisor side: ping, one attempt, shutdown.
        let problem = crate::campaign::build_problem("bowl2", "nominal").unwrap();
        let x = problem.space.to_physical(&[0.5, 0.5]).unwrap();
        let mut input = Vec::new();
        write_frame(&mut input, "P").unwrap();
        let req =
            AttemptRequest { attempt: 0, corner_idx: 0, deadline_ms: 1_000, x_phys: x.clone() };
        write_frame(&mut input, &req.to_frame()).unwrap();
        write_frame(&mut input, "Q").unwrap();

        let mut output = Vec::new();
        serve_worker(&cfg, &mut &input[..], &mut output).unwrap();

        let mut cursor = &output[..];
        let hello = Handshake::parse(&read_frame(&mut cursor).unwrap()).unwrap();
        assert_eq!(hello.proto, PROTOCOL_VERSION);
        assert_eq!(hello.bench, "bowl2");
        assert_eq!(read_frame(&mut cursor).unwrap(), "O", "pong");
        let reply = AttemptReply::parse(&read_frame(&mut cursor).unwrap()).unwrap();
        // The reply must be bitwise what the in-process reference produces.
        let reference = asdex_env::run_attempt(
            problem.evaluator.as_ref(),
            &x,
            &problem.corners.corners()[0],
            0,
        );
        assert_eq!(reply.result, reference);
    }
}
