//! Feasibility probe — the calibration tool behind every ASDEX benchmark.
//!
//! ```sh
//! cargo run --release -p asdex-env --example feasibility_probe -- opamp45 20000
//! cargo run --release -p asdex-env --example feasibility_probe -- opamp22 10000
//! cargo run --release -p asdex-env --example feasibility_probe -- ldo 10000
//! cargo run --release -p asdex-env --example feasibility_probe -- ico
//! ```
//!
//! Samples a benchmark's design space uniformly (the ICO is enumerated
//! exhaustively — its grid has only 20⁴ points) and reports the feasible
//! fraction plus per-measurement quantiles. The spec sets shipped with the
//! benchmarks were chosen with this tool so that each experiment's
//! difficulty matches its role in the paper: Table I's opamp at ≈3×10⁻⁴
//! feasible, Table III's corner intersection rare enough to defeat random
//! search, Table IV's LDO near 10⁻⁵.

use asdex_env::circuits::ico::Ico;
use asdex_env::circuits::ldo::Ldo;
use asdex_env::circuits::opamp::TwoStageOpamp;
use asdex_env::SizingProblem;
use asdex_rng::rngs::StdRng;
use asdex_rng::SeedableRng;

fn probe(problem: &SizingProblem, samples: usize) {
    println!(
        "problem: {} ({} params, |D| = 10^{:.1}, {} corners)",
        problem.name,
        problem.dim(),
        problem.space.size_log10(),
        problem.corners.len()
    );
    let names = problem.evaluator.measurement_names().to_vec();
    let mut rng = StdRng::seed_from_u64(1);
    let mut collected: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut feasible = 0usize;
    let mut failures = 0usize;
    for _ in 0..samples {
        let u = problem.space.sample(&mut rng);
        let e = problem.evaluate_normalized(&u, 0);
        match e.measurements {
            Some(m) => {
                for (k, v) in m.iter().enumerate() {
                    collected[k].push(*v);
                }
            }
            None => failures += 1,
        }
        feasible += usize::from(e.feasible);
    }
    println!(
        "samples: {samples}, feasible: {feasible} ({:.2e}), sim failures: {failures}",
        feasible as f64 / samples as f64
    );
    for (name, mut vals) in names.into_iter().zip(collected) {
        if vals.is_empty() {
            continue;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
        let q = |p: f64| vals[((p * (vals.len() - 1) as f64) as usize).min(vals.len() - 1)];
        println!(
            "  {name:>14}: q01 {:>11.4e}  q50 {:>11.4e}  q99 {:>11.4e}",
            q(0.01),
            q(0.5),
            q(0.99)
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "opamp45".to_string());
    let samples: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let problem = match which.as_str() {
        "opamp45" => TwoStageOpamp::bsim45().problem()?,
        "opamp22" => TwoStageOpamp::bsim22().problem()?,
        "ldo" => Ldo::n6().problem()?,
        "ico" => Ico::n5().problem()?,
        other => {
            eprintln!("unknown benchmark {other:?}; use opamp45|opamp22|ldo|ico");
            std::process::exit(2);
        }
    };
    // The ICO grid is small enough to enumerate exactly.
    let samples = if which == "ico" { 160_000 } else { samples };
    probe(&problem, samples);
    Ok(())
}
