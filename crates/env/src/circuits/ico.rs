//! The current-controlled oscillator (ICO) benchmark — the paper's second
//! industrial case (Table V), ported from TSMC 5 nm to the synthetic `n5`
//! node.
//!
//! The paper characterizes the ICO with Spectre transient + periodic-noise
//! analysis, which is out of scope for this reproduction; instead the ICO
//! is a **behavioral model** derived from the same first-order physics:
//!
//! * oscillation frequency of an N-stage current-starved ring:
//!   `f ≈ I_ctl / (N · C_node · V_swing)`, with the node capacitance taken
//!   from the gate area of the inverter devices on the `n5` cards, and
//! * phase noise from Leeson's equation at a fixed offset, improving with
//!   dissipated power and device area (larger devices → less 1/f noise).
//!
//! The resulting 4-parameter, 20-values-each landscape (`20^4` points,
//! matching the paper) has the same frequency/phase-noise trade-off the
//! agents must negotiate in Table V. A transient ring-oscillator demo on
//! the real MNA engine lives in `examples/ring_oscillator.rs` to show the
//! simulation code path exists.

use crate::corner::PvtCorner;
use crate::error::EnvError;
use crate::problem::{Evaluator, SizingProblem};
use crate::space::{DesignSpace, Param};
use crate::spec::{Spec, SpecSet};
use crate::PvtSet;
use asdex_spice::process::ProcessNode;
use std::sync::Arc;

/// Indices of the ICO's design parameters.
pub mod params {
    /// NMOS inverter width \[m\].
    pub const W_N: usize = 0;
    /// PMOS inverter width \[m\].
    pub const W_P: usize = 1;
    /// Control current \[A\].
    pub const I_CTL: usize = 2;
    /// Number of ring stages (odd).
    pub const STAGES: usize = 3;
}

/// Indices of the ICO's measurement vector.
pub mod meas {
    /// Oscillation frequency \[Hz\].
    pub const FREQ_HZ: usize = 0;
    /// Phase noise at the reference offset \[dBc/Hz\].
    pub const PN_DBC: usize = 1;
    /// Total gate area \[µm²\].
    pub const AREA_UM2: usize = 2;
}

/// The ICO benchmark on a process node.
#[derive(Debug, Clone)]
pub struct Ico {
    node: ProcessNode,
    /// Phase-noise offset frequency \[Hz\].
    pub f_offset: f64,
}

impl Ico {
    /// The benchmark on the synthetic `n5` node (Table V).
    pub fn n5() -> Self {
        Self::on(ProcessNode::n5())
    }

    /// The benchmark on an arbitrary node.
    pub fn on(node: ProcessNode) -> Self {
        Ico { node, f_offset: 1e6 }
    }

    /// The process node.
    pub fn process(&self) -> &ProcessNode {
        &self.node
    }

    /// The paper's `20^4` design space: four parameters, 20 values each.
    ///
    /// # Errors
    ///
    /// Propagates grid-construction failures.
    pub fn space(&self) -> Result<DesignSpace, EnvError> {
        DesignSpace::new(vec![
            Param::geometric("w_n", 0.5e-6, 10e-6, 20)?,
            Param::geometric("w_p", 1e-6, 20e-6, 20)?,
            Param::geometric("i_ctl", 50e-6, 2e-3, 20)?,
            Param::explicit("stages", (0..20).map(|k| (3 + 2 * k) as f64).collect())?,
        ])
    }

    /// Table V specs: phase noise < −71 dBc/Hz, frequency > 8 GHz.
    pub fn default_specs() -> SpecSet {
        SpecSet::new(vec![
            Spec::at_most(meas::PN_DBC, "phase_noise", -71.0),
            Spec::at_least(meas::FREQ_HZ, "frequency", 8e9),
        ])
    }

    /// Builds the sizing problem at the nominal corner.
    ///
    /// # Errors
    ///
    /// Propagates design-space or problem-validation errors.
    pub fn problem(&self) -> Result<SizingProblem, EnvError> {
        SizingProblem::new(
            &format!("ico-{}", self.node.name),
            self.space()?,
            Arc::new(IcoEvaluator::new(self.clone())),
            Self::default_specs(),
            PvtSet::nominal_only(),
        )
    }

    /// A fixed reference design standing in for the paper's human-designed
    /// ICO (−73.31 dBc/Hz at 8.45 GHz in Table V): near the best phase
    /// noise achievable at > 8 GHz on this landscape, with a
    /// designer-plausible stage count.
    pub fn human_reference(&self) -> Vec<f64> {
        vec![7.3e-6, 2.58e-6, 2e-3, 13.0]
    }
}

/// Behavioral evaluator behind [`Ico`].
pub struct IcoEvaluator {
    ico: Ico,
    names: Vec<String>,
}

impl IcoEvaluator {
    /// Wraps an ICO description.
    pub fn new(ico: Ico) -> Self {
        IcoEvaluator { ico, names: vec!["freq_hz".into(), "pn_dbc".into(), "area_um2".into()] }
    }
}

/// Boltzmann constant \[J/K\].
const K_B: f64 = 1.380_649e-23;

impl Evaluator for IcoEvaluator {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        if x.len() != 4 {
            return Err(EnvError::DimensionMismatch { expected: 4, actual: x.len() });
        }
        let (w_n, w_p, i_ctl, stages) = (x[0], x[1], x[2], x[3].max(3.0));
        let node = &self.ico.node;
        let (nmos, pmos) = node.models_at(corner.process, corner.temp_celsius);
        let vdd = node.vdd * corner.vdd_scale;
        let l = 2.0 * node.lmin;

        // Node capacitance: gate caps of the next stage plus drain
        // overlap/junction parasitics (approximated as 40% of gate cap).
        let c_gate = nmos.cox * w_n * l + pmos.cox * w_p * l;
        let c_node = 1.4 * c_gate + 0.1e-15;

        // Swing of a current-starved stage: limited by the control current
        // through the device stack; saturates at VDD.
        let v_swing = (vdd * 0.8).min(1.0);

        // Ring frequency: each of N stages delays c·V/I; a full period is
        // 2·N delays.
        let freq = i_ctl / (2.0 * stages * c_node * v_swing);

        // Leeson-style phase noise at offset Δf:
        //   L(Δf) = 10·log10( (2kT/P_sig) · F · (f0 / (2·Q·Δf))² )
        // with a ring-oscillator Q of ~1 and an excess-noise factor F that
        // improves (drops) with device area (less 1/f noise).
        let t_kelvin = corner.temp_celsius + 273.15;
        let p_sig = (i_ctl * vdd).max(1e-9);
        let area_m2 = stages * (w_n + w_p) * l;
        let f_excess = 800.0 * (1.0 + 0.4e-12 / area_m2);
        let q = 1.0;
        let ratio = freq / (2.0 * q * self.ico.f_offset);
        let pn_lin = (2.0 * K_B * t_kelvin / p_sig) * f_excess * ratio * ratio;
        let pn_dbc = 10.0 * pn_lin.log10();

        let meas = vec![freq, pn_dbc, area_m2 * 1e12];
        asdex_spice::measure::ensure_finite(&meas, "ico measurements")?;
        Ok(meas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_reference_is_near_table_v() {
        let ico = Ico::n5();
        let eval = IcoEvaluator::new(ico.clone());
        let m = eval.evaluate(&ico.human_reference(), &PvtCorner::nominal()).unwrap();
        // Paper: −73.31 dBc/Hz at 8.45 GHz. The behavioral model is
        // calibrated to land in the same region.
        assert!(m[meas::FREQ_HZ] > 6e9 && m[meas::FREQ_HZ] < 12e9, "freq {}", m[meas::FREQ_HZ]);
        assert!(m[meas::PN_DBC] < -71.0 && m[meas::PN_DBC] > -78.0, "pn {}", m[meas::PN_DBC]);
    }

    #[test]
    fn frequency_noise_tradeoff() {
        let ico = Ico::n5();
        let eval = IcoEvaluator::new(ico.clone());
        let base = eval.evaluate(&ico.human_reference(), &PvtCorner::nominal()).unwrap();
        // Bigger devices: lower frequency (more cap), lower (better) noise
        // from the area term at fixed power... but the f²/P Leeson term
        // also drops with f, so the landscape rewards careful balance.
        let mut x = ico.human_reference();
        x[params::W_N] *= 4.0;
        x[params::W_P] *= 4.0;
        let big = eval.evaluate(&x, &PvtCorner::nominal()).unwrap();
        assert!(big[meas::FREQ_HZ] < base[meas::FREQ_HZ]);
        assert!(big[meas::PN_DBC] < base[meas::PN_DBC], "bigger is quieter");
    }

    #[test]
    fn more_current_is_faster() {
        let ico = Ico::n5();
        let eval = IcoEvaluator::new(ico.clone());
        let mut lo = ico.human_reference();
        lo[params::I_CTL] = 0.2e-3;
        let mut hi = ico.human_reference();
        hi[params::I_CTL] = 1.8e-3;
        let m_lo = eval.evaluate(&lo, &PvtCorner::nominal()).unwrap();
        let m_hi = eval.evaluate(&hi, &PvtCorner::nominal()).unwrap();
        assert!(m_hi[meas::FREQ_HZ] > m_lo[meas::FREQ_HZ]);
    }

    #[test]
    fn space_is_20_to_the_4() {
        let s = Ico::n5().space().unwrap();
        assert_eq!(s.dim(), 4);
        assert!((s.size_log10() - 4.0 * 20f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn feasible_points_exist() {
        // Scan a coarse sub-grid and confirm the spec set is satisfiable
        // but not trivially so.
        let ico = Ico::n5();
        let p = ico.problem().unwrap();
        let mut feasible = 0;
        let mut total = 0;
        for a in 0..5 {
            for b in 0..5 {
                for c in 0..5 {
                    for d in 0..5 {
                        let u = vec![a as f64 / 4.0, b as f64 / 4.0, c as f64 / 4.0, d as f64 / 4.0];
                        let e = p.evaluate_normalized(&u, 0);
                        total += 1;
                        feasible += usize::from(e.feasible);
                    }
                }
            }
        }
        assert!(feasible > 0, "spec set must be satisfiable");
        assert!(feasible < total / 2, "but not trivial: {feasible}/{total}");
    }

    #[test]
    fn corners_matter() {
        let ico = Ico::n5();
        let eval = IcoEvaluator::new(ico.clone());
        let nom = eval.evaluate(&ico.human_reference(), &PvtCorner::nominal()).unwrap();
        let hot = eval
            .evaluate(
                &ico.human_reference(),
                &PvtCorner { temp_celsius: 125.0, ..PvtCorner::nominal() },
            )
            .unwrap();
        assert!(hot[meas::PN_DBC] > nom[meas::PN_DBC], "hot is noisier");
    }
}
