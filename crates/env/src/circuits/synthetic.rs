//! Synthetic analytic landscapes for fast agent tests and ablations.
//!
//! These evaluators cost nanoseconds instead of milliseconds, so unit and
//! integration tests can run full searches. They are shaped to reproduce
//! the structural features the paper's arguments rest on: local
//! continuity, multiple feasible basins, and an anti-correlated
//! constraint pair (the gain/phase-margin trade-off of §V-B).

use crate::corner::PvtCorner;
use crate::error::EnvError;
use crate::problem::{Evaluator, SizingProblem};
use crate::space::{DesignSpace, Param};
use crate::spec::{Spec, SpecSet};
use crate::PvtSet;
use std::sync::Arc;

/// A single-basin landscape: one measurement, maximal at `target`.
///
/// `m0(x) = 10 − Σ (x_i − t_i)²` in normalized coordinates; the spec
/// `m0 ≥ 10 − r²` makes the feasible set a ball of radius `r` around the
/// target. Corners shift the target by `temp/1000` per axis, so PVT
/// exploration has real work to do.
#[derive(Debug, Clone)]
pub struct Bowl {
    /// Target point in normalized coordinates.
    pub target: Vec<f64>,
    names: Vec<String>,
}

impl Bowl {
    /// Creates a bowl centered at `target` (normalized coordinates).
    pub fn new(target: Vec<f64>) -> Self {
        Bowl { target, names: vec!["score".into()] }
    }

    /// A ready-made sizing problem: `dim`-dimensional, 101-point axes,
    /// feasible radius `r` around the bowl's target.
    ///
    /// # Errors
    ///
    /// Propagates design-space construction failures.
    pub fn problem(dim: usize, r: f64) -> Result<SizingProblem, EnvError> {
        let target = (0..dim).map(|i| 0.3 + 0.4 * (i as f64 / dim.max(1) as f64)).collect::<Vec<_>>();
        let space = DesignSpace::new(
            (0..dim)
                .map(|i| Param::linear(&format!("x{i}"), 0.0, 1.0, 101))
                .collect::<Result<_, _>>()?,
        )?;
        SizingProblem::new(
            "bowl",
            space,
            Arc::new(Bowl::new(target)),
            SpecSet::new(vec![Spec::at_least(0, "score", 10.0 - r * r)]),
            PvtSet::nominal_only(),
        )
    }
}

impl Evaluator for Bowl {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        if x.len() != self.target.len() {
            return Err(EnvError::DimensionMismatch { expected: self.target.len(), actual: x.len() });
        }
        let shift = corner.temp_celsius / 1000.0 - 0.027;
        let d2: f64 = x
            .iter()
            .zip(&self.target)
            .map(|(xi, ti)| {
                let t = (ti + shift).clamp(0.0, 1.0);
                (xi - t) * (xi - t)
            })
            .sum();
        Ok(vec![10.0 - d2])
    }
}

/// A multi-basin landscape: the maximum of several bowls, giving several
/// disjoint feasible regions — the "multiple satisfactory solutions in
/// different local optima" premise of §IV-B.
#[derive(Debug, Clone)]
pub struct MultiBasin {
    centers: Vec<Vec<f64>>,
    names: Vec<String>,
}

impl MultiBasin {
    /// Creates a landscape with the given basin centers (normalized).
    pub fn new(centers: Vec<Vec<f64>>) -> Self {
        MultiBasin { centers, names: vec!["score".into()] }
    }

    /// A 2-D problem with three feasible basins of radius `r`.
    ///
    /// # Errors
    ///
    /// Propagates design-space construction failures.
    pub fn problem(r: f64) -> Result<SizingProblem, EnvError> {
        let centers = vec![vec![0.2, 0.2], vec![0.8, 0.3], vec![0.5, 0.85]];
        let space = DesignSpace::new(vec![
            Param::linear("x0", 0.0, 1.0, 201)?,
            Param::linear("x1", 0.0, 1.0, 201)?,
        ])?;
        SizingProblem::new(
            "multibasin",
            space,
            Arc::new(MultiBasin::new(centers)),
            SpecSet::new(vec![Spec::at_least(0, "score", 10.0 - r * r)]),
            PvtSet::nominal_only(),
        )
    }
}

impl Evaluator for MultiBasin {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], _corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        let best = self
            .centers
            .iter()
            .map(|c| {
                let d2: f64 = x.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                10.0 - d2
            })
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(vec![best])
    }
}

/// An anti-correlated two-constraint landscape modeled on the gain/phase-
/// margin trade-off: `gain` grows along `x0` while `pm` falls, and only a
/// narrow band satisfies both — the trap the paper says model-free agents
/// fall into (Table I discussion).
#[derive(Debug, Clone)]
pub struct Tradeoff {
    names: Vec<String>,
}

impl Default for Tradeoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Tradeoff {
    /// Creates the trade-off landscape.
    pub fn new() -> Self {
        Tradeoff { names: vec!["gain".into(), "pm".into()] }
    }

    /// A 3-D problem where only `x0 ∈ [0.55, 0.6]` (modulated by the other
    /// axes) satisfies both constraints.
    ///
    /// # Errors
    ///
    /// Propagates design-space construction failures.
    pub fn problem() -> Result<SizingProblem, EnvError> {
        let space = DesignSpace::new(vec![
            Param::linear("x0", 0.0, 1.0, 101)?,
            Param::linear("x1", 0.0, 1.0, 101)?,
            Param::linear("x2", 0.0, 1.0, 101)?,
        ])?;
        SizingProblem::new(
            "tradeoff",
            space,
            Arc::new(Tradeoff::new()),
            SpecSet::new(vec![Spec::at_least(0, "gain", 55.0), Spec::at_least(1, "pm", 60.0)]),
            PvtSet::nominal_only(),
        )
    }
}

impl Evaluator for Tradeoff {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], _corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        let x0 = x[0];
        let mod1 = 1.0 - 0.2 * (x.get(1).copied().unwrap_or(0.5) - 0.5).abs();
        let mod2 = 1.0 - 0.2 * (x.get(2).copied().unwrap_or(0.5) - 0.5).abs();
        // gain rises with x0, pm falls with x0.
        let gain = 100.0 * x0 * mod1;
        let pm = 150.0 * (1.0 - x0) * mod2;
        Ok(vec![gain, pm])
    }
}

/// A curved-valley (Rosenbrock) landscape: the feasible set sits at the
/// end of a long, narrow, bent valley. Large search regions overshoot the
/// valley walls; small ones crawl. This is the geometry where the
/// iteration-dependent trust-region radius (paper §IV-C) earns its keep.
#[derive(Debug, Clone)]
pub struct Ridge {
    names: Vec<String>,
    dim: usize,
}

impl Ridge {
    /// Creates a `dim`-dimensional ridge landscape.
    pub fn new(dim: usize) -> Self {
        Ridge { names: vec!["score".into()], dim }
    }

    /// A ready-made problem: score = −Rosenbrock(x) on `[-2, 2]^dim`
    /// (mapped from normalized coordinates), spec `score ≥ −tol` — the
    /// feasible set hugs the valley floor near `x = (1, …, 1)`.
    ///
    /// # Errors
    ///
    /// Propagates design-space construction failures.
    pub fn problem(dim: usize, tol: f64) -> Result<SizingProblem, EnvError> {
        let space = DesignSpace::new(
            (0..dim)
                .map(|i| Param::linear(&format!("x{i}"), 0.0, 1.0, 201))
                .collect::<Result<_, _>>()?,
        )?;
        SizingProblem::new(
            "ridge",
            space,
            Arc::new(Ridge::new(dim)),
            SpecSet::new(vec![Spec::at_least(0, "score", -tol)]),
            PvtSet::nominal_only(),
        )
    }
}

impl Evaluator for Ridge {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], _corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        if x.len() != self.dim {
            return Err(EnvError::DimensionMismatch { expected: self.dim, actual: x.len() });
        }
        // Map [0,1] -> [-2,2].
        let z: Vec<f64> = x.iter().map(|u| 4.0 * u - 2.0).collect();
        let mut f = 0.0;
        for w in z.windows(2) {
            f += 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2);
        }
        Ok(vec![-f])
    }
}

/// A deceptive landscape: a broad, attractive basin whose peak falls just
/// short of the spec, and a narrow basin elsewhere that satisfies it. An
/// agent without an escape criterion (`C_riterion`, Algorithm 1 line 15)
/// dives into the broad basin and stays there forever; the restart is what
/// saves it.
#[derive(Debug, Clone)]
pub struct Deceptive {
    names: Vec<String>,
}

impl Default for Deceptive {
    fn default() -> Self {
        Self::new()
    }
}

impl Deceptive {
    /// Creates the deceptive landscape.
    pub fn new() -> Self {
        Deceptive { names: vec!["score".into()] }
    }

    /// A 3-D problem: the broad trap is centered at (0.3, 0.3, 0.3) and
    /// tops out at 9.9; the feasible needle sits at (0.85, 0.85, 0.85)
    /// with the spec `score ≥ 9.95`.
    ///
    /// # Errors
    ///
    /// Propagates design-space construction failures.
    pub fn problem() -> Result<SizingProblem, EnvError> {
        let space = DesignSpace::new(vec![
            Param::linear("x0", 0.0, 1.0, 101)?,
            Param::linear("x1", 0.0, 1.0, 101)?,
            Param::linear("x2", 0.0, 1.0, 101)?,
        ])?;
        SizingProblem::new(
            "deceptive",
            space,
            Arc::new(Deceptive::new()),
            SpecSet::new(vec![Spec::at_least(0, "score", 9.95)]),
            PvtSet::nominal_only(),
        )
    }
}

impl Evaluator for Deceptive {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], _corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        let d2 = |c: f64| -> f64 { x.iter().map(|xi| (xi - c) * (xi - c)).sum() };
        // Broad trap: gentle curvature, peak 9.9 (always < 9.95 spec).
        let trap = 9.9 - 0.6 * d2(0.3);
        // Needle: steep, peak 10.0, feasible only within ~0.09 of center.
        let needle = 10.0 - 6.0 * d2(0.85);
        Ok(vec![trap.max(needle)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bowl_peaks_at_target() {
        let b = Bowl::new(vec![0.5, 0.5]);
        let at_target = b.evaluate(&[0.5, 0.5], &PvtCorner::nominal()).unwrap()[0];
        let off = b.evaluate(&[0.9, 0.1], &PvtCorner::nominal()).unwrap()[0];
        assert_eq!(at_target, 10.0);
        assert!(off < at_target);
    }

    #[test]
    fn bowl_corner_shifts_target() {
        let b = Bowl::new(vec![0.5, 0.5]);
        let hot = PvtCorner { temp_celsius: 125.0, ..PvtCorner::nominal() };
        let at_nominal_target = b.evaluate(&[0.5, 0.5], &hot).unwrap()[0];
        assert!(at_nominal_target < 10.0, "hot corner moved the optimum");
    }

    #[test]
    fn bowl_problem_feasibility() {
        let p = Bowl::problem(3, 0.2).unwrap();
        assert_eq!(p.dim(), 3);
        // The bowl's own target is feasible.
        let target = vec![0.3, 0.3 + 0.4 / 3.0, 0.3 + 0.8 / 3.0];
        let e = p.evaluate_normalized(&target, 0);
        assert!(e.feasible, "target is feasible: value {}", e.value);
        let e = p.evaluate_normalized(&[1.0, 0.0, 1.0], 0);
        assert!(!e.feasible);
    }

    #[test]
    fn bowl_dimension_check() {
        let b = Bowl::new(vec![0.5]);
        assert!(b.evaluate(&[0.5, 0.5], &PvtCorner::nominal()).is_err());
    }

    #[test]
    fn multibasin_has_three_feasible_regions() {
        let p = MultiBasin::problem(0.15).unwrap();
        for center in [[0.2, 0.2], [0.8, 0.3], [0.5, 0.85]] {
            let e = p.evaluate_normalized(&center, 0);
            assert!(e.feasible, "basin at {center:?}");
        }
        let e = p.evaluate_normalized(&[0.0, 1.0], 0);
        assert!(!e.feasible);
    }

    #[test]
    fn ridge_optimum_is_feasible() {
        let p = Ridge::problem(3, 0.5).unwrap();
        // x = (1,1,1) maps from normalized 0.75.
        let e = p.evaluate_normalized(&[0.75, 0.75, 0.75], 0);
        assert!(e.feasible, "valley floor feasible: value {}", e.value);
        let e = p.evaluate_normalized(&[0.2, 0.8, 0.2], 0);
        assert!(!e.feasible, "off-valley infeasible");
    }

    #[test]
    fn ridge_dimension_checked() {
        let r = Ridge::new(2);
        assert!(r.evaluate(&[0.1], &PvtCorner::nominal()).is_err());
    }

    #[test]
    fn deceptive_trap_is_infeasible_and_needle_is_not() {
        let p = Deceptive::problem().unwrap();
        let trap = p.evaluate_normalized(&[0.3, 0.3, 0.3], 0);
        assert!(!trap.feasible, "trap peak stays below spec");
        assert!(trap.value > -0.01, "but it looks very close");
        let needle = p.evaluate_normalized(&[0.85, 0.85, 0.85], 0);
        assert!(needle.feasible);
    }

    #[test]
    fn tradeoff_has_narrow_feasible_band() {
        let p = Tradeoff::problem().unwrap();
        // Mid-band point satisfies both...
        let e = p.evaluate_normalized(&[0.57, 0.5, 0.5], 0);
        assert!(e.feasible, "value {}", e.value);
        // ... extremes satisfy only one.
        let hi = p.evaluate_normalized(&[1.0, 0.5, 0.5], 0);
        assert!(!hi.feasible, "max gain kills pm");
        let lo = p.evaluate_normalized(&[0.1, 0.5, 0.5], 0);
        assert!(!lo.feasible, "max pm kills gain");
        // And greedily maximizing the gain measurement alone walks out of
        // the feasible band — the model-free trap.
        let m_hi = hi.measurements.unwrap();
        let m_mid = e.measurements.unwrap();
        assert!(m_hi[0] > m_mid[0]);
    }
}
