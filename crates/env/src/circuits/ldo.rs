//! The low-dropout regulator (LDO) benchmark — the paper's first
//! industrial case (Table IV), ported from TSMC 6 nm to the synthetic
//! `n6` node.
//!
//! Topology: a 5-transistor OTA error amplifier drives a PMOS pass device;
//! a resistive divider feeds the regulated output back to the amplifier.
//! The loop gain is measured with the L/C loop-breaking trick: a huge
//! inductor closes the feedback path for DC biasing while a huge capacitor
//! AC-grounds the amplifier's feedback input; the AC response at the
//! divider tap to a stimulus on the reference input *is* the loop gain.

use crate::corner::PvtCorner;
use crate::error::EnvError;
use crate::problem::{Evaluator, SizingProblem};
use crate::robust::EvalEffort;
use crate::space::{DesignSpace, Param};
use crate::spec::{Spec, SpecSet};
use crate::PvtSet;
use super::pool::{EnginePool, EngineSlot, SimCache};
use asdex_spice::analysis::{ac_analysis_with_op_in, Engine, OpOptions, Sweep};
use asdex_spice::devices::MosGeometry;
use asdex_spice::measure::{checked_frequency_response, ensure_finite, to_db};
use asdex_spice::process::ProcessNode;
use asdex_spice::{AcSpec, Circuit};
use std::sync::Arc;

/// Indices of the LDO's design parameters.
pub mod params {
    /// Error-amp input-pair width (M1, M2).
    pub const W_IN: usize = 0;
    /// Error-amp mirror width (M3, M4).
    pub const W_MIR: usize = 1;
    /// Error-amp tail/bias width (M5, M8).
    pub const W_TAIL: usize = 2;
    /// Pass-device width.
    pub const W_PASS: usize = 3;
    /// Error-amp input-pair length.
    pub const L_IN: usize = 4;
    /// Error-amp mirror length.
    pub const L_MIR: usize = 5;
    /// Error-amp tail length.
    pub const L_TAIL: usize = 6;
    /// Pass-device length.
    pub const L_PASS: usize = 7;
    /// Pass-device multiplicity.
    pub const M_PASS: usize = 8;
    /// Error-amp bias current.
    pub const IBIAS: usize = 9;
    /// Compensation capacitor at the amp output (pass gate).
    pub const C_COMP: usize = 10;
}

/// Indices of the LDO's measurement vector.
pub mod meas {
    /// Loop gain \[dB\].
    pub const LOOP_GAIN_DB: usize = 0;
    /// Loop phase margin \[deg\].
    pub const PM_DEG: usize = 1;
    /// Total gate area \[µm²\] (the paper's Table IV "Area" column).
    pub const AREA_UM2: usize = 2;
    /// Quiescent current \[A\].
    pub const IQ_A: usize = 3;
    /// Regulated output voltage \[V\].
    pub const VOUT_V: usize = 4;
}

/// The LDO benchmark on a process node.
#[derive(Debug, Clone)]
pub struct Ldo {
    node: ProcessNode,
    /// Load resistance \[Ω\].
    pub r_load: f64,
    /// Load capacitance \[F\].
    pub c_load: f64,
    /// Feedback divider resistances `(top, bottom)` \[Ω\].
    pub divider: (f64, f64),
}

impl Ldo {
    /// The benchmark on the synthetic `n6` node (Table IV).
    pub fn n6() -> Self {
        Self::on(ProcessNode::n6())
    }

    /// The benchmark on an arbitrary node.
    pub fn on(node: ProcessNode) -> Self {
        Ldo { node, r_load: 50.0, c_load: 100e-12, divider: (90e3, 110e3) }
    }

    /// The process node.
    pub fn process(&self) -> &ProcessNode {
        &self.node
    }

    /// The 11-parameter design space (≈ 10^29 points, matching the paper's
    /// quoted size for the industrial LDO).
    ///
    /// # Errors
    ///
    /// Propagates grid-construction failures.
    pub fn space(&self) -> Result<DesignSpace, EnvError> {
        let lmin = self.node.lmin;
        DesignSpace::new(vec![
            Param::geometric("w_in", 0.5e-6, 50e-6, 2000)?,
            Param::geometric("w_mir", 0.5e-6, 50e-6, 2000)?,
            Param::geometric("w_tail", 0.5e-6, 50e-6, 1000)?,
            Param::geometric("w_pass", 10e-6, 2000e-6, 5000)?,
            Param::geometric("l_in", lmin * 2.0, lmin * 40.0, 200)?,
            Param::geometric("l_mir", lmin * 2.0, lmin * 40.0, 200)?,
            Param::geometric("l_tail", lmin * 2.0, lmin * 40.0, 200)?,
            Param::geometric("l_pass", lmin, lmin * 10.0, 100)?,
            Param::explicit("m_pass", (1..=50).map(f64::from).collect())?,
            Param::geometric("ibias", 1e-6, 100e-6, 100)?,
            Param::geometric("c_comp", 0.1e-12, 20e-12, 300)?,
        ])
    }

    /// The Table IV spec set, recalibrated to the synthetic `n6`
    /// landscape: the Level-1 cards deliver far more intrinsic gain than
    /// real 6 nm silicon, so the paper's 40 dB floor would be trivial
    /// here. The structure is the paper's — a loop-gain floor fighting an
    /// area cap, plus stability and quiescent-current guards — tightened
    /// until only ≈1×10⁻⁵ of the space qualifies (the paper's LDO also
    /// defeated its BO baseline within budget).
    pub fn default_specs() -> SpecSet {
        SpecSet::new(vec![
            Spec::at_least(meas::LOOP_GAIN_DB, "loop_gain", 84.0),
            Spec::at_most(meas::AREA_UM2, "area", 58.0),
            Spec::at_least(meas::PM_DEG, "pm", 60.0),
            Spec::at_most(meas::IQ_A, "iq", 2e-4),
        ])
    }

    /// Builds the full sizing problem at the nominal corner.
    ///
    /// # Errors
    ///
    /// Propagates design-space or problem-validation errors.
    pub fn problem(&self) -> Result<SizingProblem, EnvError> {
        let space = self.space()?;
        SizingProblem::new(
            &format!("ldo-{}", self.node.name),
            space,
            Arc::new(LdoEvaluator::new(self.clone())),
            Self::default_specs(),
            PvtSet::nominal_only(),
        )
    }

    /// A fixed reference design standing in for the paper's human-designed
    /// LDO: competent (81.6 dB loop gain at 54.8 µm², comfortably stable)
    /// but ~2.4 dB short of the 84 dB spec — mirroring Table IV's human
    /// row, which misses its gain target while sitting at the area cap.
    pub fn human_reference(&self) -> Vec<f64> {
        vec![
            11.5e-6,   // w_in
            3.79e-6,   // w_mir
            1.72e-6,   // w_tail
            140e-6,    // w_pass
            178e-9,    // l_in
            302e-9,    // l_mir
            1.02e-6,   // l_tail
            32e-9,     // l_pass
            10.0,      // m_pass
            1.05e-6,   // ibias
            6.79e-12,  // c_comp
        ]
    }

    /// Builds the LDO netlist for physical parameters `x` at `corner`.
    ///
    /// # Errors
    ///
    /// [`EnvError::DimensionMismatch`] for a wrong-length parameter
    /// vector; element-validation errors otherwise.
    pub fn netlist(&self, x: &[f64], corner: &PvtCorner) -> Result<Circuit, EnvError> {
        if x.len() != 11 {
            return Err(EnvError::DimensionMismatch { expected: 11, actual: x.len() });
        }
        let (nmos, pmos) = self.node.models_at(corner.process, corner.temp_celsius);
        let vdd_v = self.node.vdd * corner.vdd_scale;
        // Reference sets the regulated output through the divider ratio.
        let beta = self.divider.1 / (self.divider.0 + self.divider.1);
        let vref = 0.8 * vdd_v * beta;

        let mut c = Circuit::new();
        c.temp_celsius = corner.temp_celsius;
        c.add_mos_model("nch", nmos);
        c.add_mos_model("pch", pmos);

        let vdd = c.node("vdd");
        let vref_n = c.node("vref");
        let fb = c.node("fb"); // amplifier feedback input
        let fbo = c.node("fbo"); // divider tap (loop-gain probe)
        let tail = c.node("tail");
        let x1 = c.node("x1");
        let gate = c.node("gate"); // amp output = pass gate
        let vout = c.node("vout");
        let nb = c.node("nb");
        let gnd = Circuit::GROUND;

        c.add_vsource("VDD", vdd, gnd, vdd_v)?;
        c.add_vsource_full("VREF", vref_n, gnd, vref, Some(AcSpec::unit()), None)?;

        // Error amplifier. The pass stage (PMOS common source) inverts, so
        // the loop needs the amp to be non-inverting from the feedback
        // input to `gate` — that is M1's gate in this 5T OTA (M1 → mirror
        // → M4 → gate). The reference drives M2.
        let g = |w: f64, l: f64, m: f64| MosGeometry { w, l, m };
        c.add_mosfet("M1", x1, fb, tail, gnd, "nch", g(x[params::W_IN], x[params::L_IN], 1.0))?;
        c.add_mosfet("M2", gate, vref_n, tail, gnd, "nch", g(x[params::W_IN], x[params::L_IN], 1.0))?;
        c.add_mosfet("M3", x1, x1, vdd, vdd, "pch", g(x[params::W_MIR], x[params::L_MIR], 1.0))?;
        c.add_mosfet("M4", gate, x1, vdd, vdd, "pch", g(x[params::W_MIR], x[params::L_MIR], 1.0))?;
        c.add_mosfet("M5", tail, nb, gnd, gnd, "nch", g(x[params::W_TAIL], x[params::L_TAIL], 1.0))?;
        c.add_mosfet("M8", nb, nb, gnd, gnd, "nch", g(x[params::W_TAIL], x[params::L_TAIL], 1.0))?;
        c.add_isource("IB", vdd, nb, x[params::IBIAS])?;

        // Pass device and compensation.
        c.add_mosfet(
            "MP",
            vout,
            gate,
            vdd,
            vdd,
            "pch",
            g(x[params::W_PASS], x[params::L_PASS], x[params::M_PASS]),
        )?;
        c.add_capacitor("CCOMP", gate, gnd, x[params::C_COMP])?;

        // Divider, load, and the DC-closing / AC-breaking network.
        c.add_resistor("R1", vout, fbo, self.divider.0)?;
        c.add_resistor("R2", fbo, gnd, self.divider.1)?;
        c.add_inductor("LFB", fbo, fb, 1e6)?;
        c.add_capacitor("CFB", fb, gnd, 1.0)?;
        c.add_resistor("RL", vout, gnd, self.r_load)?;
        c.add_capacitor("CL", vout, gnd, self.c_load)?;
        Ok(c)
    }
}

/// The MNA-backed evaluator behind [`Ldo`].
pub struct LdoEvaluator {
    ldo: Ldo,
    names: Vec<String>,
    pool: EnginePool,
    cache: SimCache,
}

impl LdoEvaluator {
    /// Wraps an LDO description.
    pub fn new(ldo: Ldo) -> Self {
        LdoEvaluator {
            ldo,
            names: vec![
                "loop_gain_db".into(),
                "pm_deg".into(),
                "area_um2".into(),
                "iq_a".into(),
                "vout_v".into(),
            ],
            pool: EnginePool::default(),
            cache: SimCache::default(),
        }
    }

    /// The solve proper, running inside a pooled engine/workspace slot.
    fn evaluate_in_slot(
        &self,
        slot: &mut EngineSlot,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        let circuit = self.ldo.netlist(x, corner)?;
        let EngineSlot { engine, ws } = slot;
        let engine = match engine.as_mut() {
            Some(eng) => {
                eng.restamp(&circuit)?;
                eng
            }
            None => engine.insert(Engine::compile(&circuit)?),
        };
        let mut opts = OpOptions::default();
        effort.apply(&mut opts);
        let initial = effort.initial_guess(engine.dim());
        let op = engine.operating_point_with(&opts, initial.as_deref(), ws)?;

        let vout_node = circuit.find_node("vout").ok_or_else(|| EnvError::InvalidProblem {
            reason: "ldo netlist defines no 'vout' node".into(),
        })?;
        let fbo = circuit.find_node("fbo").ok_or_else(|| EnvError::InvalidProblem {
            reason: "ldo netlist defines no 'fbo' node".into(),
        })?;
        let vout_v = op.voltage(vout_node);

        // Quiescent current: amp bias + divider, excluding the load.
        let vdd_branch = engine.branch_of("VDD").ok_or_else(|| EnvError::InvalidProblem {
            reason: "ldo netlist defines no 'VDD' source".into(),
        })?;
        let supply_current = op.branch_current(vdd_branch).abs();
        let load_current = vout_v / self.ldo.r_load;
        let iq = (supply_current - load_current).abs();

        let ac = ac_analysis_with_op_in(
            engine,
            op,
            Sweep::Decade { fstart: 10.0, fstop: 1e9, points_per_decade: 10 },
            ws,
        )?;
        let fr = checked_frequency_response(&ac, fbo)?;
        // `frequency_response` reports the low-frequency magnitude of the
        // probe node, which is exactly the loop gain here.
        let loop_gain_db = fr.dc_gain_db.max(to_db(0.0));

        // Area in µm² (1 m² = 1e12 µm²).
        let area_um2 = circuit.total_gate_area() * 1e12;

        let meas = vec![
            loop_gain_db,
            fr.phase_margin_deg.unwrap_or(90.0),
            area_um2,
            iq,
            vout_v,
        ];
        ensure_finite(&meas, "ldo measurements")?;
        Ok(meas)
    }
}

impl Evaluator for LdoEvaluator {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        self.evaluate_with_effort(x, corner, EvalEffort::default())
    }

    fn evaluate_with_effort(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        let key = SimCache::key(x, corner, effort);
        if let Some(meas) = self.cache.get(&key) {
            return Ok(meas);
        }
        let mut slot = self.pool.take();
        let result = self.evaluate_in_slot(&mut slot, x, corner, effort);
        self.pool.put(slot);
        if let Ok(meas) = &result {
            self.cache.put(key, meas.clone());
        }
        result
    }

    fn set_solver(&self, choice: asdex_spice::analysis::SolverChoice) {
        self.pool.set_choice(choice);
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_structure() {
        let ldo = Ldo::n6();
        let c = ldo.netlist(&ldo.human_reference(), &PvtCorner::nominal()).unwrap();
        assert!(c.find_node("vout").is_some());
        assert_eq!(c.elements().len(), 17);
        assert!(matches!(
            ldo.netlist(&[1.0; 4], &PvtCorner::nominal()),
            Err(EnvError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn human_reference_regulates() {
        let ldo = Ldo::n6();
        let eval = LdoEvaluator::new(ldo.clone());
        let m = eval.evaluate(&ldo.human_reference(), &PvtCorner::nominal()).unwrap();
        let vdd = ldo.process().vdd;
        assert!(
            m[meas::VOUT_V] > 0.5 * vdd && m[meas::VOUT_V] < vdd,
            "vout {} of vdd {}",
            m[meas::VOUT_V],
            vdd
        );
        assert!(m[meas::LOOP_GAIN_DB] > 20.0, "loop gain {} dB", m[meas::LOOP_GAIN_DB]);
        assert!(m[meas::AREA_UM2] > 0.0);
    }

    #[test]
    fn bigger_pass_device_changes_loop() {
        let ldo = Ldo::n6();
        let eval = LdoEvaluator::new(ldo.clone());
        let base = eval.evaluate(&ldo.human_reference(), &PvtCorner::nominal()).unwrap();
        let mut x = ldo.human_reference();
        x[params::W_PASS] = 100e-6;
        x[params::M_PASS] = 5.0;
        let small = eval.evaluate(&x, &PvtCorner::nominal()).unwrap();
        assert!(small[meas::AREA_UM2] < base[meas::AREA_UM2]);
        assert!((small[meas::LOOP_GAIN_DB] - base[meas::LOOP_GAIN_DB]).abs() > 0.1);
    }

    #[test]
    fn space_is_paper_scale() {
        let ldo = Ldo::n6();
        let s = ldo.space().unwrap();
        assert_eq!(s.dim(), 11);
        assert!(s.size_log10() > 27.0 && s.size_log10() < 32.0, "10^{:.1}", s.size_log10());
    }

    #[test]
    fn problem_validates() {
        let p = Ldo::n6().problem().unwrap();
        assert_eq!(p.specs.len(), 4);
    }
}
