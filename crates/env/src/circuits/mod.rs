//! Benchmark circuits: the two-stage opamp, the LDO, the ICO, and
//! synthetic landscapes for fast agent tests.

pub mod ico;
pub mod ldo;
pub mod opamp;
pub(crate) mod pool;
pub mod synthetic;
