//! The two-stage Miller-compensated opamp benchmark (paper §V-B/C/D).
//!
//! Classic Allen–Holberg topology: NMOS input pair (M1/M2) with PMOS
//! current-mirror load (M3/M4), NMOS tail source (M5) mirrored from a
//! diode-connected bias device (M8) fed by an ideal bias current, and a
//! PMOS common-source second stage (M6) with an NMOS sink load (M7),
//! Miller-compensated with `Cc` into a fixed capacitive load.
//!
//! The open-loop response is measured the standard SPICE way: a huge
//! inductor closes unity feedback for DC biasing and a huge capacitor
//! AC-grounds the inverting input, so the AC sweep from the non-inverting
//! input reads the open-loop transfer function directly.

use crate::corner::PvtCorner;
use crate::error::EnvError;
use crate::problem::{Evaluator, SizingProblem};
use crate::robust::EvalEffort;
use crate::space::{DesignSpace, Param};
use crate::spec::{Spec, SpecSet};
use crate::PvtSet;
use super::pool::{EnginePool, EngineSlot, SimCache};
use asdex_spice::analysis::{ac_analysis_with_op_in, Engine, OpOptions, Sweep};
use asdex_spice::devices::MosGeometry;
use asdex_spice::measure::{checked_frequency_response, ensure_finite};
use asdex_spice::process::ProcessNode;
use asdex_spice::{AcSpec, Circuit};
use std::sync::Arc;

/// Indices of the opamp's design parameters in its design space.
pub mod params {
    /// Input-pair width (M1, M2).
    pub const W_IN: usize = 0;
    /// Mirror-load width (M3, M4).
    pub const W_MIR: usize = 1;
    /// Tail and bias width (M5, M8).
    pub const W_TAIL: usize = 2;
    /// Second-stage PMOS width (M6).
    pub const W_CS: usize = 3;
    /// Second-stage sink width (M7).
    pub const W_SINK: usize = 4;
    /// Miller capacitance.
    pub const CC: usize = 5;
    /// Bias current.
    pub const IBIAS: usize = 6;
}

/// Indices of the opamp's measurement vector.
pub mod meas {
    /// Open-loop DC gain \[dB\].
    pub const GAIN_DB: usize = 0;
    /// Unity-gain frequency \[Hz\].
    pub const UGF_HZ: usize = 1;
    /// Phase margin \[deg\].
    pub const PM_DEG: usize = 2;
    /// Static supply power \[W\].
    pub const POWER_W: usize = 3;
    /// Total gate area \[m²\].
    pub const AREA_M2: usize = 4;
}

/// The two-stage opamp benchmark on a given process node.
#[derive(Debug, Clone)]
pub struct TwoStageOpamp {
    node: ProcessNode,
    /// Load capacitance \[F\].
    pub cl: f64,
    /// Channel length used for all devices \[m\] (a fixed multiple of the
    /// node's minimum length, as analog designers do).
    pub l: f64,
}

impl TwoStageOpamp {
    /// The benchmark on the synthetic BSIM 45 nm node (Table I).
    pub fn bsim45() -> Self {
        Self::on(ProcessNode::bsim45())
    }

    /// The benchmark on the synthetic BSIM 22 nm node (Tables II–III).
    pub fn bsim22() -> Self {
        Self::on(ProcessNode::bsim22())
    }

    /// The benchmark on an arbitrary node.
    pub fn on(node: ProcessNode) -> Self {
        let l = (4.0 * node.lmin).max(100e-9);
        TwoStageOpamp { node, cl: 2e-12, l }
    }

    /// The process node this benchmark runs on.
    pub fn process(&self) -> &ProcessNode {
        &self.node
    }

    /// The 7-parameter design space (≈ 10^13–10^14 points: five widths on
    /// 100-point grids, `Cc` on 40, `Ibias` on 25, matching the paper's
    /// quoted 10^14 for the 45 nm opamp).
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates [`EnvError::InvalidSpace`] from
    /// grid construction.
    pub fn space(&self) -> Result<DesignSpace, EnvError> {
        DesignSpace::new(vec![
            Param::geometric("w_in", 1e-6, 100e-6, 100)?,
            Param::geometric("w_mir", 1e-6, 100e-6, 100)?,
            Param::geometric("w_tail", 1e-6, 100e-6, 100)?,
            Param::geometric("w_cs", 2e-6, 200e-6, 100)?,
            Param::geometric("w_sink", 1e-6, 100e-6, 100)?,
            Param::geometric("cc", 0.2e-12, 8e-12, 40)?,
            Param::geometric("ibias", 2e-6, 50e-6, 25)?,
        ])
    }

    /// The default spec set used by the Table I experiment.
    ///
    /// Calibrated so that roughly 3×10⁻⁴ of the design space is feasible —
    /// the same order as the paper's 45 nm setup, where pure random search
    /// needs thousands of steps but still succeeds within the 10k-step cap.
    /// The binding trade-off is the paper's gain/PM one: high unity-gain
    /// frequency fights the 60° phase-margin floor through `Cc`.
    pub fn default_specs() -> SpecSet {
        SpecSet::new(vec![
            Spec::at_least(meas::GAIN_DB, "gain", 65.0),
            Spec::at_least(meas::UGF_HZ, "ugf", 6e7),
            Spec::at_least(meas::PM_DEG, "pm", 60.0),
            Spec::at_most(meas::POWER_W, "power", 3e-4),
            Spec::at_most(meas::AREA_M2, "area", 4e-11),
        ])
    }

    /// The spec set for this benchmark's node. The 45 nm card uses
    /// [`TwoStageOpamp::default_specs`]; the faster 22 nm card gets a
    /// proportionally tighter set so its single-corner difficulty matches
    /// the paper's Table II scale (tens of steps for a fresh search) while
    /// the five-corner intersection is rare enough that random search
    /// fails, as in Table III.
    pub fn specs(&self) -> SpecSet {
        if self.node.name == "bsim22" {
            SpecSet::new(vec![
                Spec::at_least(meas::GAIN_DB, "gain", 65.0),
                Spec::at_least(meas::UGF_HZ, "ugf", 1.3e8),
                Spec::at_least(meas::PM_DEG, "pm", 60.0),
                Spec::at_most(meas::POWER_W, "power", 2.5e-4),
                Spec::at_most(meas::AREA_M2, "area", 3.5e-11),
            ])
        } else {
            Self::default_specs()
        }
    }

    /// Builds the full sizing problem at a single nominal corner.
    ///
    /// # Errors
    ///
    /// Propagates design-space or problem-validation errors.
    pub fn problem(&self) -> Result<SizingProblem, EnvError> {
        self.problem_with(self.specs(), PvtSet::nominal_only())
    }

    /// Builds the sizing problem with explicit specs and corners (the
    /// Table III PVT experiments use [`PvtSet::signoff5`]).
    ///
    /// # Errors
    ///
    /// Propagates design-space or problem-validation errors.
    pub fn problem_with(&self, specs: SpecSet, corners: PvtSet) -> Result<SizingProblem, EnvError> {
        let space = self.space()?;
        let eval = OpampEvaluator::new(self.clone());
        SizingProblem::new(
            &format!("two-stage-opamp-{}", self.node.name),
            space,
            Arc::new(eval),
            specs,
            corners,
        )
    }

    /// Builds the opamp netlist for physical parameters `x` at `corner`.
    ///
    /// Exposed so examples can inspect/print the generated circuit.
    pub fn netlist(&self, x: &[f64], corner: &PvtCorner) -> Result<Circuit, EnvError> {
        if x.len() != 7 {
            return Err(EnvError::DimensionMismatch { expected: 7, actual: x.len() });
        }
        let (nmos, pmos) = self.node.models_at(corner.process, corner.temp_celsius);
        let vdd_v = self.node.vdd * corner.vdd_scale;
        let vcm = 0.55 * vdd_v;
        let l = self.l;

        let mut c = Circuit::new();
        c.temp_celsius = corner.temp_celsius;
        c.add_mos_model("nch", nmos);
        c.add_mos_model("pch", pmos);

        // Node creation order matches first appearance in element order
        // below — the same order the deck parser would assign for the
        // equivalent card list. MNA unknown numbering (and therefore LU
        // pivot order) follows node order, so this is what makes the
        // shipped netlist clone of this bench bitwise-identical.
        let vdd = c.node("vdd");
        let inp = c.node("inp"); // driven (non-inverting) input: M2's gate
        let out = c.node("out");
        let fb = c.node("fb"); // feedback (inverting) input: M1's gate
        let x1 = c.node("x1");
        let tail = c.node("tail");
        let x2 = c.node("x2");
        let nb = c.node("nb");
        let gnd = Circuit::GROUND;

        c.add_vsource("VDD", vdd, gnd, vdd_v)?;
        c.add_vsource_full("VIP", inp, gnd, vcm, Some(AcSpec::unit()), None)?;
        // Unity-feedback bias: huge L closes the loop at DC, huge C grounds
        // the inverting input at AC. The path through M1's gate is the
        // inverting one (M1 → mirror → M4 → x2 → M6 inverts twice more),
        // so the DC loop is negative feedback and biases cleanly.
        c.add_inductor("LFB", out, fb, 1e6)?;
        c.add_capacitor("CFB", fb, gnd, 1.0)?;

        let geom = |w: f64| MosGeometry { w, l, m: 1.0 };
        c.add_mosfet("M1", x1, fb, tail, gnd, "nch", geom(x[params::W_IN]))?;
        c.add_mosfet("M2", x2, inp, tail, gnd, "nch", geom(x[params::W_IN]))?;
        c.add_mosfet("M3", x1, x1, vdd, vdd, "pch", geom(x[params::W_MIR]))?;
        c.add_mosfet("M4", x2, x1, vdd, vdd, "pch", geom(x[params::W_MIR]))?;
        c.add_mosfet("M5", tail, nb, gnd, gnd, "nch", geom(x[params::W_TAIL]))?;
        c.add_mosfet("M8", nb, nb, gnd, gnd, "nch", geom(x[params::W_TAIL]))?;
        c.add_mosfet("M6", out, x2, vdd, vdd, "pch", geom(x[params::W_CS]))?;
        c.add_mosfet("M7", out, nb, gnd, gnd, "nch", geom(x[params::W_SINK]))?;

        c.add_isource("IB", vdd, nb, x[params::IBIAS])?;
        c.add_capacitor("CC", x2, out, x[params::CC])?;
        c.add_capacitor("CL", out, gnd, self.cl)?;
        Ok(c)
    }
}

/// The MNA-backed evaluator behind [`TwoStageOpamp`].
pub struct OpampEvaluator {
    opamp: TwoStageOpamp,
    names: Vec<String>,
    pool: EnginePool,
    cache: SimCache,
}

impl OpampEvaluator {
    /// Wraps an opamp description.
    pub fn new(opamp: TwoStageOpamp) -> Self {
        OpampEvaluator {
            opamp,
            names: vec![
                "gain_db".into(),
                "ugf_hz".into(),
                "pm_deg".into(),
                "power_w".into(),
                "area_m2".into(),
            ],
            pool: EnginePool::default(),
            cache: SimCache::default(),
        }
    }

    /// The solve proper, running inside a pooled engine/workspace slot.
    fn evaluate_in_slot(
        &self,
        slot: &mut EngineSlot,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        let circuit = self.opamp.netlist(x, corner)?;
        let EngineSlot { engine, ws } = slot;
        let engine = match engine.as_mut() {
            Some(eng) => {
                eng.restamp(&circuit)?;
                eng
            }
            None => engine.insert(Engine::compile(&circuit)?),
        };
        let mut opts = OpOptions::default();
        effort.apply(&mut opts);
        let initial = effort.initial_guess(engine.dim());
        let op = engine.operating_point_with(&opts, initial.as_deref(), ws)?;

        let sweep = Sweep::Decade { fstart: 10.0, fstop: 10e9, points_per_decade: 10 };
        let out = circuit.find_node("out").ok_or_else(|| EnvError::InvalidProblem {
            reason: "opamp netlist defines no 'out' node".into(),
        })?;
        let vdd_branch = engine.branch_of("VDD").ok_or_else(|| EnvError::InvalidProblem {
            reason: "opamp netlist defines no 'VDD' source".into(),
        })?;
        let supply_current = op.branch_current(vdd_branch).abs();
        let vdd_v = self.opamp.node.vdd * corner.vdd_scale;

        let ac = ac_analysis_with_op_in(engine, op, sweep, ws)?;
        let fr = checked_frequency_response(&ac, out)?;

        let meas = vec![
            fr.dc_gain_db,
            fr.unity_gain_freq.unwrap_or(0.0),
            fr.phase_margin_deg.unwrap_or(0.0),
            supply_current * vdd_v,
            circuit.total_gate_area(),
        ];
        ensure_finite(&meas, "opamp measurements")?;
        Ok(meas)
    }
}

impl Evaluator for OpampEvaluator {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        self.evaluate_with_effort(x, corner, EvalEffort::default())
    }

    fn evaluate_with_effort(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        let key = SimCache::key(x, corner, effort);
        if let Some(meas) = self.cache.get(&key) {
            return Ok(meas);
        }
        let mut slot = self.pool.take();
        let result = self.evaluate_in_slot(&mut slot, x, corner, effort);
        self.pool.put(slot);
        if let Ok(meas) = &result {
            self.cache.put(key, meas.clone());
        }
        result
    }

    fn set_solver(&self, choice: asdex_spice::analysis::SolverChoice) {
        self.pool.set_choice(choice);
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-sized reference point that should bias correctly.
    pub fn reference_x() -> Vec<f64> {
        vec![
            20e-6, // w_in
            10e-6, // w_mir
            10e-6, // w_tail
            60e-6, // w_cs
            20e-6, // w_sink
            1.5e-12, // cc
            10e-6, // ibias
        ]
    }

    #[test]
    fn netlist_has_expected_elements() {
        let amp = TwoStageOpamp::bsim45();
        let c = amp.netlist(&reference_x(), &PvtCorner::nominal()).unwrap();
        assert_eq!(
            c.elements().len(),
            4 /* sources+fb */ + 8 /* fets */ + 3 /* IB, CC, CL */
        );
        assert!(c.find_node("out").is_some());
    }

    #[test]
    fn wrong_dimension_rejected() {
        let amp = TwoStageOpamp::bsim45();
        assert!(matches!(
            amp.netlist(&[1e-6; 3], &PvtCorner::nominal()),
            Err(EnvError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn reference_design_is_a_working_amplifier() {
        let amp = TwoStageOpamp::bsim45();
        let eval = OpampEvaluator::new(amp);
        let m = eval.evaluate(&reference_x(), &PvtCorner::nominal()).unwrap();
        assert!(m[meas::GAIN_DB] > 40.0, "gain {} dB", m[meas::GAIN_DB]);
        assert!(m[meas::UGF_HZ] > 1e6, "ugf {}", m[meas::UGF_HZ]);
        assert!(m[meas::PM_DEG] > 20.0, "pm {}", m[meas::PM_DEG]);
        assert!(m[meas::POWER_W] > 0.0 && m[meas::POWER_W] < 10e-3, "power {}", m[meas::POWER_W]);
        assert!(m[meas::AREA_M2] > 0.0);
    }

    #[test]
    fn gain_landscape_is_size_dependent() {
        // Shrinking the input pair to the grid minimum must change the
        // response — the agent needs a non-flat landscape.
        let amp = TwoStageOpamp::bsim45();
        let eval = OpampEvaluator::new(amp);
        let hi = eval.evaluate(&reference_x(), &PvtCorner::nominal()).unwrap();
        let mut x = reference_x();
        x[params::W_IN] = 1e-6;
        x[params::IBIAS] = 2e-6;
        let lo = eval.evaluate(&x, &PvtCorner::nominal()).unwrap();
        // Level-1 DC gain is only weakly size-dependent, but the unity-gain
        // frequency moves strongly with gm — that is the landscape agents
        // climb.
        let rel = (hi[meas::UGF_HZ] - lo[meas::UGF_HZ]).abs() / hi[meas::UGF_HZ];
        assert!(rel > 0.3, "ugf {} vs {}", hi[meas::UGF_HZ], lo[meas::UGF_HZ]);
    }

    #[test]
    fn corners_shift_measurements() {
        let amp = TwoStageOpamp::bsim22();
        let eval = OpampEvaluator::new(amp);
        let nom = eval.evaluate(&reference_x(), &PvtCorner::nominal()).unwrap();
        let ss = eval
            .evaluate(
                &reference_x(),
                &PvtCorner {
                    process: asdex_spice::process::ProcessCorner::Ss,
                    vdd_scale: 0.9,
                    temp_celsius: 125.0,
                },
            )
            .unwrap();
        assert!((nom[meas::GAIN_DB] - ss[meas::GAIN_DB]).abs() > 0.1, "corner must matter");
    }

    #[test]
    fn problem_builds_and_evaluates() {
        let amp = TwoStageOpamp::bsim45();
        let p = amp.problem().unwrap();
        assert_eq!(p.dim(), 7);
        assert!(p.space.size_log10() > 12.0, "space ≈ 10^13+");
        let space = p.space.clone();
        let u = space.to_normalized(&reference_x()).unwrap();
        let e = p.evaluate_normalized(&u, 0);
        assert!(e.measurements.is_some());
        assert!(e.value <= 0.0);
    }
}
