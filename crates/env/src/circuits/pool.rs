//! Shared engine/workspace pool for the MNA-backed circuit evaluators.
//!
//! Compiling a netlist and allocating solver matrices dominates the cost
//! of a single evaluation once the Newton loop converges quickly. Every
//! candidate an agent proposes shares the circuit *topology* — only
//! element values change with `(x, corner)` — so each evaluator keeps a
//! pool of `(Engine, SolverWorkspace)` slots: a worker takes a slot,
//! restamps the compiled engine in place (full recompile on first use or
//! topology mismatch), solves reusing the workspace buffers, and returns
//! the slot. The pool is a plain `Mutex<Vec<_>>` held only around
//! pop/push, so batch workers never serialize on it during a solve.
//!
//! Restamping and buffer reuse are bitwise-exact (`Engine::restamp` and
//! `SolverWorkspace` zero all state a solve reads), so pooled evaluation
//! returns the same `Evaluation`s as compiling from scratch every call.
//!
//! The pool also carries a [`SimCache`]: a bounded memo table over
//! successful simulations. The [`Evaluator`](crate::problem::Evaluator)
//! contract requires results to be deterministic in `(x, corner, effort)`,
//! and the design space is a finite grid, so searches genuinely revisit
//! points — a trust-region agent re-scores its incumbent while the PVT
//! loop re-verifies candidates corner by corner. A cache hit returns the
//! exact measurement vector a fresh solve would compute, so memoization
//! changes wall-clock only, never results, budgets, or telemetry.
//! Failures are never cached: the retry ladder must re-run them at
//! escalated effort (a different cache key anyway).

use crate::corner::PvtCorner;
use crate::robust::EvalEffort;
use asdex_spice::analysis::{Engine, SolverChoice, SolverWorkspace};
use std::collections::HashMap;
use std::sync::Mutex;

/// One worker's reusable compiled engine plus solver scratch space.
#[derive(Default)]
pub(crate) struct EngineSlot {
    /// Compiled engine from a previous evaluation; `None` before first use.
    pub engine: Option<Engine>,
    /// Reusable Newton/AC matrices and the frequency-grid cache.
    pub ws: SolverWorkspace,
}

/// A lock-guarded stack of [`EngineSlot`]s, all carrying the pool's
/// pinned solver-backend choice.
#[derive(Default)]
pub(crate) struct EnginePool {
    slots: Mutex<Vec<EngineSlot>>,
    /// `None` defers to the `ASDEX_SOLVER` environment default at slot
    /// creation; `Some` pins every slot to an explicit choice.
    choice: Mutex<Option<SolverChoice>>,
}

impl EnginePool {
    /// Takes a slot, creating a fresh one when the pool is empty (or its
    /// lock was poisoned — evaluation must stay panic-free either way).
    pub fn take(&self) -> EngineSlot {
        if let Some(slot) = self.slots.lock().ok().and_then(|mut p| p.pop()) {
            return slot;
        }
        let ws = match self.choice.lock().ok().and_then(|c| *c) {
            Some(choice) => SolverWorkspace::with_choice(choice),
            None => SolverWorkspace::new(),
        };
        EngineSlot { engine: None, ws }
    }

    /// Returns a slot for reuse. Dropping it on lock poisoning is safe:
    /// the next `take` simply recompiles.
    pub fn put(&self, slot: EngineSlot) {
        if let Ok(mut p) = self.slots.lock() {
            p.push(slot);
        }
    }

    /// Pins the solver backend for every future slot and drops the
    /// existing ones (their workspaces carry the old backend). Callers
    /// must also clear any result cache keyed without the solver choice:
    /// backends agree only within solver tolerance, not bitwise.
    pub fn set_choice(&self, choice: SolverChoice) {
        if let Ok(mut c) = self.choice.lock() {
            *c = Some(choice);
        }
        if let Ok(mut p) = self.slots.lock() {
            p.clear();
        }
    }
}

/// Bounded memo table over successful deterministic simulations, keyed on
/// the exact bit pattern of `(x, corner, effort)`.
#[derive(Default)]
pub(crate) struct SimCache {
    map: Mutex<HashMap<Vec<u64>, Vec<f64>>>,
}

impl SimCache {
    /// Entry bound: at ~200 bytes per opamp-sized entry this caps the
    /// table near 7 MB. On overflow the table is cleared rather than
    /// evicted entry-by-entry — cache state never affects results, so any
    /// policy is sound, and clearing keeps the hot recent working set
    /// rebuilding cheaply.
    const MAX_ENTRIES: usize = 32_768;

    /// The memo key: every input the evaluator contract allows the result
    /// to depend on, bit-exact.
    pub fn key(x: &[f64], corner: &PvtCorner, effort: EvalEffort) -> Vec<u64> {
        let mut key = Vec::with_capacity(x.len() + 4);
        key.push(effort.attempt as u64);
        key.push(corner.process as u64);
        key.push(corner.vdd_scale.to_bits());
        key.push(corner.temp_celsius.to_bits());
        key.extend(x.iter().map(|v| v.to_bits()));
        key
    }

    /// The memoized measurement vector, if this exact point was solved
    /// before (`None` on a miss or a poisoned lock).
    pub fn get(&self, key: &[u64]) -> Option<Vec<f64>> {
        self.map.lock().ok()?.get(key).cloned()
    }

    /// Memoizes a successful solve. Silently drops the entry when the
    /// lock is poisoned — the next lookup just re-simulates.
    pub fn put(&self, key: Vec<u64>, meas: Vec<f64>) {
        if let Ok(mut map) = self.map.lock() {
            if map.len() >= Self::MAX_ENTRIES {
                map.clear();
            }
            map.insert(key, meas);
        }
    }

    /// Drops every memoized result — required when the solver backend
    /// changes, since the key does not encode it and backends agree only
    /// within solver tolerance.
    pub fn clear(&self) {
        if let Ok(mut map) = self.map.lock() {
            map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_spice::process::ProcessCorner;

    #[test]
    fn cache_roundtrip() {
        let cache = SimCache::default();
        let key = SimCache::key(&[1.0, 2.0], &PvtCorner::nominal(), EvalEffort::default());
        assert_eq!(cache.get(&key), None);
        cache.put(key.clone(), vec![3.0, 4.0]);
        assert_eq!(cache.get(&key), Some(vec![3.0, 4.0]));
    }

    #[test]
    fn key_separates_every_input() {
        let x = [1.0, 2.0];
        let nominal = PvtCorner::nominal();
        let base = SimCache::key(&x, &nominal, EvalEffort::default());
        let hot = PvtCorner { temp_celsius: 125.0, ..nominal };
        let ss = PvtCorner { process: ProcessCorner::Ss, ..nominal };
        let sag = PvtCorner { vdd_scale: 0.9, ..nominal };
        for other in [
            SimCache::key(&[1.0, 2.5], &nominal, EvalEffort::default()),
            SimCache::key(&x, &hot, EvalEffort::default()),
            SimCache::key(&x, &ss, EvalEffort::default()),
            SimCache::key(&x, &sag, EvalEffort::default()),
            SimCache::key(&x, &nominal, EvalEffort::attempt(1)),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn overflow_clears_and_keeps_serving() {
        let cache = SimCache::default();
        for i in 0..SimCache::MAX_ENTRIES {
            cache.put(vec![i as u64], vec![i as f64]);
        }
        // The table is full: the next insert clears, then stores its entry.
        cache.put(vec![u64::MAX], vec![7.0]);
        assert_eq!(cache.get(&[u64::MAX]), Some(vec![7.0]));
        assert_eq!(cache.get(&[0u64]), None, "old entries were dropped");
    }
}
