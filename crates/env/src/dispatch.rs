//! Pluggable execution backends for single evaluator attempts.
//!
//! The retry ladder in [`crate::SizingProblem`] is the sole owner of
//! attempt sequencing, effort escalation, budget accounting, and failure
//! typing. What *varies* between an in-process run and a sandboxed
//! worker-process pool is only how one attempt is executed. That seam is
//! [`EvalDispatcher`]: given the physical parameter vector, the corner
//! index, and the attempt number, produce either a raw measurement vector
//! or a typed [`FailureKind`].
//!
//! Because an attempt is a pure function of `(x_phys, corner, attempt)`
//! (the repo-wide evaluator determinism contract), *where* it executes is
//! invisible to the search: a `SearchOutcome` produced through any
//! dispatcher is bitwise identical to the in-process one, at any worker
//! count, provided the dispatcher maps execution failures onto the same
//! taxonomy the in-process path uses:
//!
//! * an evaluator panic (in-process) and a worker-process death
//!   (out-of-process) both become [`FailureKind::WorkerPanic`];
//! * a solve-deadline expiry both in-process (the `SolveBudget` watchdog)
//!   and out-of-process (the supervisor killing a hung worker) becomes
//!   [`FailureKind::Timeout`].
//!
//! Measurement-shape checks (dimension, finiteness) and value computation
//! stay in the parent, applied uniformly to every backend's output.

use crate::corner::PvtCorner;
use crate::problem::Evaluator;
use crate::robust::EvalEffort;
use crate::stats::FailureKind;

/// Executes one evaluator attempt somewhere — on the calling thread, on a
/// worker process, wherever — and reports the outcome in the shared
/// failure taxonomy.
///
/// Implementations must preserve the determinism contract: for a fixed
/// `(x_phys, corner_idx, attempt)` the result must be the same bits every
/// time, and must equal what [`run_attempt`] produces against the same
/// evaluator (with execution-level deaths mapped as described in the
/// module docs).
pub trait EvalDispatcher: Send + Sync {
    /// Runs attempt number `attempt` of `(x_phys, corner_idx)`.
    ///
    /// # Errors
    ///
    /// A typed [`FailureKind`] when the attempt failed; the retry ladder
    /// decides whether to escalate.
    fn dispatch(
        &self,
        x_phys: &[f64],
        corner_idx: usize,
        attempt: usize,
    ) -> Result<Vec<f64>, FailureKind>;

    /// How many attempts this backend can usefully run concurrently
    /// (e.g. the worker-process count). `0` means "no preference" — batch
    /// evaluation falls back to its normal thread resolution. Used as a
    /// routing hint only; it never changes results.
    fn parallelism(&self) -> usize {
        0
    }
}

/// The in-process reference execution of one attempt: calls the evaluator
/// under `catch_unwind` and classifies the outcome. This is the exact
/// semantics [`crate::SizingProblem`] uses when no dispatcher is attached,
/// exported so out-of-process backends (the worker loop itself, and a
/// supervisor's all-workers-lost fallback) share one definition of "what
/// an attempt does" instead of re-implementing it.
pub fn run_attempt(
    evaluator: &dyn Evaluator,
    x_phys: &[f64],
    corner: &PvtCorner,
    attempt: usize,
) -> Result<Vec<f64>, FailureKind> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        evaluator.evaluate_with_effort(x_phys, corner, EvalEffort::attempt(attempt))
    }));
    match outcome {
        Err(_) => Err(FailureKind::WorkerPanic),
        Ok(Ok(meas)) => Ok(meas),
        Ok(Err(e)) => Err(FailureKind::classify(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::{toy_problem, PanickyUntil, ToyEvaluator};
    use std::sync::Arc;

    #[test]
    fn run_attempt_matches_direct_evaluation() {
        let e = ToyEvaluator::new();
        let got = run_attempt(&e, &[2.0, 3.0], &PvtCorner::nominal(), 0).unwrap();
        assert_eq!(got, vec![5.0, 6.0]);
    }

    #[test]
    fn run_attempt_types_panics() {
        let e = PanickyUntil::new(usize::MAX);
        let got = run_attempt(&e, &[2.0, 3.0], &PvtCorner::nominal(), 0);
        assert_eq!(got, Err(FailureKind::WorkerPanic));
    }

    /// A dispatcher that mirrors the in-process semantics exactly; the
    /// problem-level result must not change when it is attached.
    struct Mirror {
        evaluator: Arc<dyn Evaluator>,
        corners: crate::corner::PvtSet,
    }

    impl EvalDispatcher for Mirror {
        fn dispatch(
            &self,
            x_phys: &[f64],
            corner_idx: usize,
            attempt: usize,
        ) -> Result<Vec<f64>, FailureKind> {
            let corner = self.corners.corners()[corner_idx];
            run_attempt(self.evaluator.as_ref(), x_phys, &corner, attempt)
        }

        fn parallelism(&self) -> usize {
            3
        }
    }

    #[test]
    fn mirror_dispatcher_is_invisible_in_results() {
        let plain = toy_problem();
        let mirror = Arc::new(Mirror {
            evaluator: plain.evaluator.clone(),
            corners: plain.corners.clone(),
        });
        let routed = toy_problem().with_dispatcher(mirror);
        for u in [[0.8, 0.8], [0.1, 0.1], [0.555, 0.0]] {
            assert_eq!(routed.evaluate_normalized(&u, 0), plain.evaluate_normalized(&u, 0));
        }
        // Out-of-range corners are typed before dispatch in both paths.
        assert_eq!(
            routed.evaluate_normalized(&[0.5, 0.5], 99),
            plain.evaluate_normalized(&[0.5, 0.5], 99)
        );
    }

    #[test]
    fn dispatcher_failures_flow_through_the_ladder() {
        struct AlwaysDead;
        impl EvalDispatcher for AlwaysDead {
            fn dispatch(&self, _: &[f64], _: usize, _: usize) -> Result<Vec<f64>, FailureKind> {
                Err(FailureKind::WorkerPanic)
            }
        }
        let p = toy_problem().with_dispatcher(Arc::new(AlwaysDead));
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(e.failure, Some(FailureKind::WorkerPanic));
        assert_eq!(e.sim_cost, 3, "worker deaths consume the full retry ladder");
        // Terminal worker deaths quarantine the job exactly like terminal
        // in-process panics do.
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(e.sim_cost, 1, "quarantined after the ladder was exhausted");
    }
}
