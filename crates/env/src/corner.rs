//! PVT (process, voltage, temperature) corners — paper §IV-E.

use asdex_spice::process::ProcessCorner;
use std::fmt;

/// One PVT condition: a process corner, a supply scale factor, and a
/// temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvtCorner {
    /// Process corner.
    pub process: ProcessCorner,
    /// Supply voltage as a fraction of nominal (e.g. `0.9` = VDD −10 %).
    pub vdd_scale: f64,
    /// Junction temperature \[°C\].
    pub temp_celsius: f64,
}

impl PvtCorner {
    /// The nominal condition: TT, nominal supply, 27 °C.
    pub fn nominal() -> Self {
        PvtCorner { process: ProcessCorner::Tt, vdd_scale: 1.0, temp_celsius: 27.0 }
    }

    /// A compact label like `"SS/0.90V/125C"`.
    pub fn label(&self) -> String {
        format!("{}/{:.2}x/{:.0}C", self.process.label(), self.vdd_scale, self.temp_celsius)
    }
}

impl Default for PvtCorner {
    fn default() -> Self {
        Self::nominal()
    }
}

impl fmt::Display for PvtCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// An ordered set of PVT corners to sign off.
#[derive(Debug, Clone, PartialEq)]
pub struct PvtSet {
    corners: Vec<PvtCorner>,
}

impl PvtSet {
    /// Creates a set from explicit corners; an empty list falls back to the
    /// single nominal corner.
    pub fn new(corners: Vec<PvtCorner>) -> Self {
        if corners.is_empty() {
            PvtSet { corners: vec![PvtCorner::nominal()] }
        } else {
            PvtSet { corners }
        }
    }

    /// Only the nominal corner (single-condition experiments, Table I).
    pub fn nominal_only() -> Self {
        Self::new(vec![PvtCorner::nominal()])
    }

    /// The five-corner sign-off set used by the PVT experiments
    /// (Table III): nominal plus the four worst-case combinations of slow/
    /// fast silicon, low/high supply, and hot/cold temperature.
    pub fn signoff5() -> Self {
        Self::new(vec![
            PvtCorner::nominal(),
            PvtCorner { process: ProcessCorner::Ss, vdd_scale: 0.9, temp_celsius: 125.0 },
            PvtCorner { process: ProcessCorner::Ss, vdd_scale: 0.9, temp_celsius: -40.0 },
            PvtCorner { process: ProcessCorner::Ff, vdd_scale: 1.1, temp_celsius: 125.0 },
            PvtCorner { process: ProcessCorner::Ff, vdd_scale: 1.1, temp_celsius: -40.0 },
        ])
    }

    /// The corners in order.
    pub fn corners(&self) -> &[PvtCorner] {
        &self.corners
    }

    /// Number of corners.
    pub fn len(&self) -> usize {
        self.corners.len()
    }

    /// Always `false`: construction guarantees at least one corner.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for PvtSet {
    fn default() -> Self {
        Self::nominal_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_corner() {
        let c = PvtCorner::nominal();
        assert_eq!(c.process, ProcessCorner::Tt);
        assert_eq!(c.vdd_scale, 1.0);
        assert_eq!(c.label(), "TT/1.00x/27C");
        assert_eq!(c.to_string(), c.label());
    }

    #[test]
    fn empty_set_defaults_to_nominal() {
        let s = PvtSet::new(vec![]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.corners()[0], PvtCorner::nominal());
    }

    #[test]
    fn signoff5_has_five_distinct_corners() {
        let s = PvtSet::signoff5();
        assert_eq!(s.len(), 5);
        for i in 0..5 {
            for j in i + 1..5 {
                assert_ne!(s.corners()[i], s.corners()[j]);
            }
        }
    }
}
