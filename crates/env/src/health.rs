//! Training-health telemetry for the self-healing learning loop.
//!
//! Where [`crate::stats::EvalStats`] accounts for what the *simulator* did
//! (calls, typed failures, retries), [`HealthStats`] accounts for what the
//! *learner* did to survive it: gradient clips, skipped non-finite
//! updates, rollbacks to the last-good snapshot, trust-region re-seeds,
//! and surrogate fallbacks. A production campaign reads these counters to
//! distinguish "the optimizer healed itself twice and moved on" from "the
//! optimizer silently trained on garbage for ten thousand simulations".
//!
//! Every counter is bumped by deterministic, rng-free logic, so the
//! record rides the same bitwise thread-count and crash/resume invariance
//! contracts as the rest of a `SearchOutcome`.

use std::fmt;

/// Counters for self-healing interventions during one search campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Model or policy updates rolled back to the last-good snapshot
    /// (loss explosion, KL blow-up, entropy collapse).
    pub rollbacks: usize,
    /// Gradient updates whose global norm was clipped before the
    /// optimizer step.
    pub clipped_updates: usize,
    /// Updates skipped outright because the loss or gradient contained
    /// NaN/Inf.
    pub nonfinite_updates: usize,
    /// Trust-region re-seeds triggered by collapse detection (radius
    /// pinned at its minimum with no accepted step for K rounds).
    pub tr_reseeds: usize,
    /// Acquisition rounds where a degenerate surrogate (constant or
    /// non-finite predictions) was bypassed with random acquisition.
    pub surrogate_fallbacks: usize,
}

impl HealthStats {
    /// A zeroed record.
    pub fn new() -> Self {
        HealthStats::default()
    }

    /// Total interventions of any kind. Zero means the campaign never
    /// needed to heal itself.
    pub fn total(&self) -> usize {
        self.rollbacks
            + self.clipped_updates
            + self.nonfinite_updates
            + self.tr_reseeds
            + self.surrogate_fallbacks
    }

    /// Merges another record into this one (e.g. per-corner sub-searches).
    pub fn merge(&mut self, other: &HealthStats) {
        self.rollbacks += other.rollbacks;
        self.clipped_updates += other.clipped_updates;
        self.nonfinite_updates += other.nonfinite_updates;
        self.tr_reseeds += other.tr_reseeds;
        self.surrogate_fallbacks += other.surrogate_fallbacks;
    }
}

impl fmt::Display for HealthStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rollbacks {} | clipped {} | non-finite {} | tr-reseeds {} | surrogate-fallbacks {}",
            self.rollbacks,
            self.clipped_updates,
            self.nonfinite_updates,
            self.tr_reseeds,
            self.surrogate_fallbacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        assert_eq!(HealthStats::new().total(), 0);
    }

    #[test]
    fn merge_adds_every_counter() {
        let mut a = HealthStats { rollbacks: 1, clipped_updates: 2, ..HealthStats::new() };
        let b = HealthStats {
            rollbacks: 3,
            nonfinite_updates: 1,
            tr_reseeds: 2,
            surrogate_fallbacks: 4,
            ..HealthStats::new()
        };
        a.merge(&b);
        assert_eq!(a.rollbacks, 4);
        assert_eq!(a.clipped_updates, 2);
        assert_eq!(a.nonfinite_updates, 1);
        assert_eq!(a.tr_reseeds, 2);
        assert_eq!(a.surrogate_fallbacks, 4);
        assert_eq!(a.total(), 13);
    }

    #[test]
    fn display_lists_every_counter() {
        let s = HealthStats { rollbacks: 2, surrogate_fallbacks: 1, ..HealthStats::new() };
        let text = s.to_string();
        assert!(text.contains("rollbacks 2"));
        assert!(text.contains("surrogate-fallbacks 1"));
    }
}
