//! Batched evaluation: many (point × corner) requests through one call.
//!
//! The paper's cost model counts SPICE invocations, but wall-clock in a
//! production sizing flow is dominated by *running* them — real
//! deployments fan simulations out across workers. This module is the
//! single chokepoint every ASDEX agent routes through:
//! [`SizingProblem::evaluate_batch`] takes a slice of [`EvalRequest`]s and
//! returns their [`Evaluation`]s in request order, executed by a
//! dependency-free scoped-thread worker pool.
//!
//! Three invariants carry over from the serial path *exactly*:
//!
//! 1. **Deterministic ordering** — `results[i]` is the evaluation of
//!    `requests[i]`, and every entry is a pure function of
//!    `(problem, request, admitted budget)`. Running at 1, 2, or 8
//!    threads returns bitwise-identical results.
//! 2. **Budget-exact accounting** — admission charges the retry ladder's
//!    worst case against `remaining` *up front*: request `i` is admitted
//!    with an attempt cap only when the caps already handed out leave
//!    room. The summed [`Evaluation::sim_cost`] of the returned prefix can
//!    therefore never exceed `remaining`, so `sims <= max_sims` holds for
//!    every caller without post-hoc clamping.
//! 3. **Typed telemetry** — results are plain [`Evaluation`]s; callers
//!    fold them into [`crate::EvalStats`] in request order and obtain the
//!    same merged record at every thread count.
//!
//! Worker count comes from [`SizingProblem::threads`] (explicit), else the
//! `ASDEX_THREADS` environment variable, else 1 — serial by default, so
//! unit tests and single-evaluation callers never pay thread-spawn
//! overhead.

use crate::problem::{Evaluation, SizingProblem};
use crate::stats::FailureKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One evaluation request: a normalized design point at a corner index.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Normalized (grid) coordinates of the design point.
    pub u: Vec<f64>,
    /// Index into the problem's [`crate::PvtSet`].
    pub corner_idx: usize,
}

impl EvalRequest {
    /// A request for `u` at corner `corner_idx`.
    pub fn new(u: Vec<f64>, corner_idx: usize) -> Self {
        EvalRequest { u, corner_idx }
    }

    /// Requests for one point at every corner index in `0..n_corners`.
    pub fn fan_out(u: &[f64], n_corners: usize) -> Vec<EvalRequest> {
        (0..n_corners).map(|c| EvalRequest::new(u.to_vec(), c)).collect()
    }
}

/// Resolves the worker count: an explicit setting wins, else the
/// `ASDEX_THREADS` environment variable, else 1 (serial).
pub(crate) fn resolve_threads(explicit: usize) -> usize {
    if explicit > 0 {
        return explicit;
    }
    std::env::var("ASDEX_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

impl SizingProblem {
    /// The worker count this batch call will use: the dynamic fair-share
    /// source (if attached and non-zero) wins, then the explicit
    /// [`SizingProblem::threads`] setting, then the attached dispatcher's
    /// parallelism hint (a worker-process pool wants one feeder thread per
    /// worker), then `ASDEX_THREADS`, then 1.
    pub fn resolved_threads(&self) -> usize {
        let shared = self
            .thread_share
            .as_ref()
            .map(|s| s.load(std::sync::atomic::Ordering::SeqCst))
            .unwrap_or(0);
        if shared > 0 {
            return shared;
        }
        if self.threads > 0 {
            return self.threads;
        }
        let hinted = self.dispatcher.as_ref().map(|d| d.parallelism()).unwrap_or(0);
        if hinted > 0 {
            return hinted;
        }
        resolve_threads(0)
    }
}

impl SizingProblem {
    /// Evaluates a batch of requests with at most `remaining` simulator
    /// attempts available across the whole batch.
    ///
    /// Requests are admitted in order, each reserving up to
    /// `retry.max_attempts()` attempts (less when the remaining budget is
    /// smaller); once the budget is fully reserved the rest of the batch
    /// is *not* evaluated, so the returned vector can be shorter than
    /// `requests` — callers detect budget truncation with
    /// `results.len() < requests.len()`. The returned evaluations are in
    /// request order and identical at every thread count; a single-request
    /// batch is exactly [`SizingProblem::evaluate_with_budget`].
    pub fn evaluate_batch(&self, requests: &[EvalRequest], remaining: usize) -> Vec<Evaluation> {
        // Admission: reserve worst-case attempt caps in request order.
        let max_attempts = self.retry.max_attempts();
        let mut caps = Vec::with_capacity(requests.len());
        let mut reserved = 0usize;
        for _ in requests {
            if reserved >= remaining {
                break;
            }
            let cap = max_attempts.min(remaining - reserved);
            caps.push(cap);
            reserved += cap;
        }
        let n = caps.len();
        // Drain hook: once the campaign's cancel token is pulled, no
        // further simulator calls are issued. Every admitted request comes
        // back as a typed `Cancelled` failure charging its reserved cap —
        // agents wind down through their normal budget accounting — and
        // nothing is journaled, so a resumed campaign re-runs these
        // requests live and reaches the uninterrupted outcome.
        if self.is_cancelled() {
            return requests[..n]
                .iter()
                .zip(&caps)
                .map(|(r, &cap)| self.cancelled_eval(&r.u, cap))
                .collect();
        }
        // Replay pre-pass, in request order and single-threaded: a journal
        // can hold several recorded outcomes under one (point, corner,
        // cap) key (e.g. a live failure followed by a quarantine
        // short-circuit), and popping them from concurrent workers would
        // make the pairing schedule-dependent.
        let mut seeded: Vec<Option<(Evaluation, bool)>> = Vec::with_capacity(n);
        for (r, &cap) in requests[..n].iter().zip(&caps) {
            seeded.push(self.take_replayed(&r.u, r.corner_idx, cap).map(|e| (e, true)));
        }
        let threads = self.resolved_threads().min(n);
        if threads <= 1 {
            return seeded
                .into_iter()
                .enumerate()
                .map(|(i, found)| {
                    let (e, replayed) = found.unwrap_or_else(|| {
                        (
                            self.evaluate_shared(&requests[i].u, requests[i].corner_idx, caps[i]),
                            false,
                        )
                    });
                    self.finalize_evaluation(&requests[i].u, requests[i].corner_idx, caps[i], e, replayed)
                })
                .collect();
        }
        // Scoped worker pool: an atomic cursor deals requests to workers;
        // each result lands in its request's slot, so the output order is
        // independent of scheduling. Workers only run the replay *misses*
        // (quarantine check + live evaluation); journal recording and
        // quarantine updates happen afterwards in the ordered finalize
        // pass, which keeps results bitwise identical to the serial path.
        let slots: Vec<Mutex<Option<(Evaluation, bool)>>> =
            seeded.into_iter().map(Mutex::new).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if slots[i].lock().map(|s| s.is_some()).unwrap_or(true) {
                        continue; // served from the journal
                    }
                    let e =
                        self.evaluate_shared(&requests[i].u, requests[i].corner_idx, caps[i]);
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some((e, false));
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let (e, replayed) = match slot.into_inner() {
                    Ok(Some(pair)) => pair,
                    // Unreachable in practice (worker panics are caught at
                    // the isolation boundary); typed worst-case keeps the
                    // no-panic and budget invariants even if a lock was
                    // poisoned.
                    _ => (self.failed_eval(requests[i].u.clone(), FailureKind::Other, caps[i]), false),
                };
                self.finalize_evaluation(&requests[i].u, requests[i].corner_idx, caps[i], e, replayed)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultInjectingEvaluator};
    use crate::problem::tests::{toy_problem, ToyEvaluator};
    use crate::stats::EvalStats;
    use std::sync::Arc;

    fn faulty_problem(rate: f64, seed: u64) -> SizingProblem {
        let mut p = toy_problem();
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            Arc::new(ToyEvaluator::new()),
            FaultConfig::new(rate, seed),
        ));
        p
    }

    fn grid_requests(n: usize) -> Vec<EvalRequest> {
        (0..n)
            .map(|k| {
                let t = k as f64 / n as f64;
                EvalRequest::new(vec![t, 1.0 - t], 0)
            })
            .collect()
    }

    #[test]
    fn single_request_batch_equals_serial() {
        let p = faulty_problem(0.3, 7);
        for remaining in [1usize, 2, 3, 100] {
            let serial = p.evaluate_with_budget(&[0.8, 0.8], 0, remaining);
            let batch = p.evaluate_batch(&[EvalRequest::new(vec![0.8, 0.8], 0)], remaining);
            assert_eq!(batch, vec![serial], "remaining = {remaining}");
        }
    }

    #[test]
    fn results_identical_at_every_thread_count() {
        let reqs = grid_requests(40);
        let mut reference: Option<(Vec<Evaluation>, EvalStats)> = None;
        for threads in [1usize, 2, 8] {
            let mut p = faulty_problem(0.4, 11);
            p.threads = threads;
            let evals = p.evaluate_batch(&reqs, 1000);
            let mut stats = EvalStats::new();
            for e in &evals {
                stats.record(e);
            }
            match &reference {
                None => reference = Some((evals, stats)),
                Some((ref_evals, ref_stats)) => {
                    assert_eq!(&evals, ref_evals, "evaluations differ at {threads} threads");
                    assert_eq!(&stats, ref_stats, "stats differ at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn admission_never_overshoots_budget() {
        for remaining in [0usize, 1, 2, 5, 7, 100] {
            let mut p = faulty_problem(0.8, 3);
            p.threads = 4;
            let reqs = grid_requests(10);
            let evals = p.evaluate_batch(&reqs, remaining);
            let spent: usize = evals.iter().map(|e| e.sim_cost).sum();
            assert!(spent <= remaining, "spent {spent} > remaining {remaining}");
            if evals.len() < reqs.len() {
                // Truncated: the budget must be the reason.
                let max_attempts = p.retry.max_attempts();
                assert!(remaining < reqs.len() * max_attempts);
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let p = toy_problem();
        assert!(p.evaluate_batch(&[], 100).is_empty());
        assert!(p.evaluate_batch(&grid_requests(3), 0).is_empty());
    }

    #[test]
    fn fan_out_covers_every_corner() {
        let reqs = EvalRequest::fan_out(&[0.5, 0.5], 3);
        assert_eq!(reqs.len(), 3);
        assert!(reqs.iter().enumerate().all(|(i, r)| r.corner_idx == i && r.u == vec![0.5, 0.5]));
    }

    #[test]
    fn cancelled_batch_charges_budget_without_simulating() {
        use crate::cancel::CancelToken;
        let token = CancelToken::new();
        let p = toy_problem().with_cancel_token(token.clone());
        // Before cancellation the batch runs normally.
        let live = p.evaluate_batch(&grid_requests(4), 100);
        assert!(live.iter().all(|e| e.failure.is_none()));
        token.cancel();
        let drained = p.evaluate_batch(&grid_requests(4), 100);
        assert_eq!(drained.len(), 4);
        for e in &drained {
            assert_eq!(e.failure, Some(crate::stats::FailureKind::Cancelled));
            assert_eq!(e.sim_cost, p.retry.max_attempts(), "charges the reserved cap");
            assert!(e.measurements.is_none());
        }
        // Admission still bounds the total charge.
        let tight = p.evaluate_batch(&grid_requests(10), 5);
        let spent: usize = tight.iter().map(|e| e.sim_cost).sum();
        assert!(spent <= 5, "cancelled charges stay budget-exact");
    }

    #[test]
    fn cancelled_evaluations_never_reach_the_journal() {
        use crate::cancel::CancelToken;
        use crate::journal::{Journal, JournalMeta};
        let path = std::env::temp_dir()
            .join(format!("asdex-batch-cancel-{}.journal", std::process::id()));
        let journal = Journal::create(&path, JournalMeta::new().with("t", "c"), 1).unwrap();
        let token = CancelToken::new();
        let p = toy_problem().with_journal(journal).with_cancel_token(token.clone());
        p.evaluate_batch(&grid_requests(3), 100);
        token.cancel();
        p.evaluate_batch(&grid_requests(5), 100);
        let handle = p.journal_handle().unwrap();
        let recorded = handle.lock().unwrap().recorded();
        assert_eq!(recorded, 3, "only the live evaluations were journaled");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_thread_share_wins_over_static_setting() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let share = Arc::new(AtomicUsize::new(0));
        let p = toy_problem().with_threads(3).with_thread_share(share.clone());
        assert_eq!(p.resolved_threads(), 3, "share of 0 falls back to static");
        share.store(7, Ordering::SeqCst);
        assert_eq!(p.resolved_threads(), 7, "live share wins");
        // Rebalancing mid-campaign never changes results.
        let reqs = grid_requests(16);
        let at_share = p.evaluate_batch(&reqs, 1000);
        share.store(1, Ordering::SeqCst);
        let serial = p.evaluate_batch(&reqs, 1000);
        assert_eq!(at_share, serial);
    }

    #[test]
    fn shared_store_is_invisible_in_results() {
        let reqs = grid_requests(12);
        let reference = toy_problem().evaluate_batch(&reqs, 1000);
        let store = crate::evalstore::EvalStore::shared();
        for threads in [1usize, 4] {
            let p = toy_problem().with_eval_store(store.clone()).with_threads(threads);
            assert_eq!(p.evaluate_batch(&reqs, 1000), reference, "threads = {threads}");
        }
        let s = store.stats();
        assert_eq!(s.misses, 12, "the first problem computed every key");
        assert_eq!(s.hits, 12, "the second problem reused every key");
    }

    #[test]
    fn concurrent_identical_campaigns_simulate_each_point_once() {
        use crate::corner::PvtCorner;
        use crate::problem::Evaluator;
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Counting {
            names: Vec<String>,
            calls: Arc<AtomicUsize>,
        }
        impl Evaluator for Counting {
            fn measurement_names(&self) -> &[String] {
                &self.names
            }
            fn evaluate(
                &self,
                x: &[f64],
                corner: &PvtCorner,
            ) -> Result<Vec<f64>, crate::EnvError> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                let derate = corner.vdd_scale;
                Ok(vec![(x[0] + x[1]) * derate, x[0] * x[1] * derate])
            }
        }

        let calls = Arc::new(AtomicUsize::new(0));
        let store = crate::evalstore::EvalStore::shared();
        let reqs = grid_requests(20);
        let make = || {
            let mut p = toy_problem();
            p.evaluator = Arc::new(Counting {
                names: vec!["sum".into(), "prod".into()],
                calls: calls.clone(),
            });
            p.with_eval_store(store.clone())
        };
        let solo = toy_problem().evaluate_batch(&reqs, 1000);
        let (a, b) = std::thread::scope(|s| {
            let ta = s.spawn(|| make().evaluate_batch(&reqs, 1000));
            let tb = s.spawn(|| make().evaluate_batch(&reqs, 1000));
            (ta.join().unwrap(), tb.join().unwrap())
        });
        assert_eq!(a, solo, "dedup never changes campaign A's results");
        assert_eq!(b, solo, "dedup never changes campaign B's results");
        assert_eq!(calls.load(Ordering::Relaxed), 20, "each point simulated exactly once");
        let s = store.stats();
        assert_eq!(s.hits, 20, "the duplicate campaign's evals were all store hits");
        assert_eq!(s.misses, 20);
    }

    #[test]
    fn env_var_resolution_prefers_explicit() {
        assert_eq!(resolve_threads(3), 3);
        // No ASDEX_THREADS in the test environment → serial default.
        if std::env::var("ASDEX_THREADS").is_err() {
            assert_eq!(resolve_threads(0), 1);
        }
    }
}
