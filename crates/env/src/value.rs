//! Reward/value engineering (paper §IV-D).
//!
//! The value of a measurement vector is the sum of normalized per-spec
//! contributions, each clipped at zero once its spec is satisfied:
//!
//! ```text
//! contrib_i = clamp( slack_i / (|m_i| + |t_i| + ε), lo, 0 )
//! value     = Σ_i contrib_i            ∈ [N·lo, 0]
//! ```
//!
//! `value == 0` exactly when the assignment is consistent (all constraints
//! met), which is the CSP success condition. Clipping at zero prevents
//! over-designing one spec from masking a violation of another — the
//! trade-off failure mode the paper blames for model-free agents getting
//! stuck (Table I discussion).
//!
//! Values **never participate in training** of the model-based agent; they
//! only rank candidates, so their exact shape does not affect model
//! convergence — the property the paper highlights against actor-critic
//! methods.

use crate::spec::SpecSet;

/// The paper's normalized-sum value function.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueFn {
    /// Lower clip per spec contribution (default −1).
    pub contribution_floor: f64,
    /// Optional per-spec weights (parallel to the spec set); `None` means
    /// the paper's uniform "naive tactic". This is the hook for the
    /// second-stage value function of §IV-D, which "explicitly encode\[s\]
    /// the importance of each measurement once the agent enters an optimal
    /// local area".
    pub weights: Option<Vec<f64>>,
}

impl Default for ValueFn {
    fn default() -> Self {
        ValueFn { contribution_floor: -1.0, weights: None }
    }
}

impl ValueFn {
    /// Creates the default value function.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a weighted value function — the paper's proposed
    /// second-stage refinement. Weight `k` scales spec `k`'s contribution;
    /// satisfied specs still contribute exactly 0, so the feasibility
    /// condition is unchanged.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        ValueFn { contribution_floor: -1.0, weights: Some(weights) }
    }

    /// Value of a measurement vector against a spec set; `0.0` iff all
    /// specs are satisfied, strictly negative otherwise.
    ///
    /// Non-finite measurements (failed simulations propagated as NaN)
    /// contribute the floor, so broken points rank below every valid one.
    ///
    /// # Example
    ///
    /// ```
    /// use asdex_env::spec::{Spec, SpecSet};
    /// use asdex_env::value::ValueFn;
    ///
    /// let specs = SpecSet::new(vec![Spec::at_least(0, "gain", 60.0)]);
    /// let v = ValueFn::new();
    /// assert_eq!(v.value(&[65.0], &specs), 0.0);
    /// assert!(v.value(&[30.0], &specs) < 0.0);
    /// ```
    pub fn value(&self, measurements: &[f64], specs: &SpecSet) -> f64 {
        specs
            .specs()
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let weight = self.weights.as_ref().and_then(|w| w.get(k)).copied().unwrap_or(1.0);
                let m = measurements[s.measurement];
                if !m.is_finite() {
                    return weight * self.contribution_floor;
                }
                let denom = m.abs() + s.target.abs() + 1e-12;
                weight * (s.slack(m) / denom).clamp(self.contribution_floor, 0.0)
            })
            .sum()
    }

    /// Worst possible value for a spec set — what a failed simulation is
    /// assigned.
    pub fn failure_value(&self, specs: &SpecSet) -> f64 {
        match &self.weights {
            Some(w) => {
                self.contribution_floor
                    * specs
                        .specs()
                        .iter()
                        .enumerate()
                        .map(|(k, _)| w.get(k).copied().unwrap_or(1.0))
                        .sum::<f64>()
            }
            None => self.contribution_floor * specs.len() as f64,
        }
    }

    /// `true` when the value indicates a consistent assignment.
    pub fn is_satisfied(value: f64) -> bool {
        value >= 0.0
    }
}

/// Two-stage value scheduling (§IV-D): the uniform value drives the global
/// approach, and once the search is inside a near-feasible region (value
/// above `switch_at`) a weighted second stage takes over to arbitrate the
/// remaining trade-offs.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedValueFn {
    /// First-stage (uniform) value function.
    pub coarse: ValueFn,
    /// Second-stage (weighted) value function.
    pub fine: ValueFn,
    /// Coarse value above which the fine stage activates (e.g. −0.05).
    pub switch_at: f64,
}

impl StagedValueFn {
    /// Creates a staged value function with the given second-stage weights.
    pub fn new(weights: Vec<f64>, switch_at: f64) -> Self {
        StagedValueFn {
            coarse: ValueFn::default(),
            fine: ValueFn::with_weights(weights),
            switch_at,
        }
    }

    /// Evaluates the staged value: coarse far from feasibility, weighted
    /// once near it. The fine stage is offset so the function stays
    /// continuous-ish in ranking (feasible points still map to 0).
    pub fn value(&self, measurements: &[f64], specs: &SpecSet) -> f64 {
        let coarse = self.coarse.value(measurements, specs);
        if coarse > self.switch_at {
            self.fine.value(measurements, specs)
        } else {
            coarse
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Spec;

    fn specs() -> SpecSet {
        SpecSet::new(vec![
            Spec::at_least(0, "gain", 60.0),
            Spec::at_least(1, "pm", 60.0),
            Spec::at_most(2, "power", 1e-3),
        ])
    }

    #[test]
    fn satisfied_is_zero() {
        let v = ValueFn::new();
        assert_eq!(v.value(&[70.0, 65.0, 0.5e-3], &specs()), 0.0);
        assert!(ValueFn::is_satisfied(0.0));
    }

    #[test]
    fn violations_are_negative_and_additive() {
        let v = ValueFn::new();
        let one = v.value(&[50.0, 65.0, 0.5e-3], &specs());
        let two = v.value(&[50.0, 40.0, 0.5e-3], &specs());
        assert!(one < 0.0);
        assert!(two < one, "more violations, lower value");
        assert!(!ValueFn::is_satisfied(one));
    }

    #[test]
    fn over_design_does_not_buy_slack() {
        let v = ValueFn::new();
        // Massive gain cannot offset a power violation.
        let a = v.value(&[200.0, 65.0, 2e-3], &specs());
        let b = v.value(&[61.0, 65.0, 2e-3], &specs());
        assert!((a - b).abs() < 1e-12, "satisfied specs all contribute exactly 0");
    }

    #[test]
    fn closer_is_better() {
        let v = ValueFn::new();
        let far = v.value(&[10.0, 65.0, 0.5e-3], &specs());
        let near = v.value(&[55.0, 65.0, 0.5e-3], &specs());
        assert!(near > far);
    }

    #[test]
    fn nan_measurement_gets_floor() {
        let v = ValueFn::new();
        let val = v.value(&[f64::NAN, 65.0, 0.5e-3], &specs());
        assert_eq!(val, -1.0);
    }

    #[test]
    fn failure_value_is_worst_case() {
        let v = ValueFn::new();
        let fail = v.failure_value(&specs());
        assert_eq!(fail, -3.0);
        // Any real evaluation is at least as good.
        assert!(v.value(&[-1e9, -1e9, 1e9], &specs()) >= fail);
    }

    #[test]
    fn weights_scale_violations_only() {
        let specs = SpecSet::new(vec![Spec::at_least(0, "gain", 60.0), Spec::at_most(1, "power", 1.0)]);
        let uniform = ValueFn::new();
        let weighted = ValueFn::with_weights(vec![1.0, 5.0]);
        // Satisfied: both give exactly 0.
        assert_eq!(weighted.value(&[70.0, 0.5], &specs), 0.0);
        // Power violation is amplified 5×.
        let u = uniform.value(&[70.0, 2.0], &specs);
        let w = weighted.value(&[70.0, 2.0], &specs);
        assert!((w - 5.0 * u).abs() < 1e-12, "{w} vs 5×{u}");
        assert_eq!(weighted.failure_value(&specs), -6.0);
    }

    #[test]
    fn staged_switches_near_feasibility() {
        let specs = SpecSet::new(vec![Spec::at_least(0, "gain", 60.0), Spec::at_most(1, "power", 1.0)]);
        let staged = StagedValueFn::new(vec![1.0, 10.0], -0.05);
        // Far away: coarse (uniform) ranking.
        let far = staged.value(&[10.0, 5.0], &specs);
        assert_eq!(far, ValueFn::new().value(&[10.0, 5.0], &specs));
        // Near feasibility with a slight power violation: the fine stage
        // amplifies it.
        let near_coarse = ValueFn::new().value(&[61.0, 1.02], &specs);
        assert!(near_coarse > -0.05, "setup: near feasibility ({near_coarse})");
        let near = staged.value(&[61.0, 1.02], &specs);
        assert!((near - 10.0 * near_coarse).abs() < 1e-12);
        // Fully feasible is still exactly 0.
        assert_eq!(staged.value(&[61.0, 0.9], &specs), 0.0);
    }

    #[test]
    fn normalization_is_scale_free() {
        let v = ValueFn::new();
        // The same 50% shortfall scores the same regardless of units.
        let s1 = SpecSet::new(vec![Spec::at_least(0, "a", 100.0)]);
        let s2 = SpecSet::new(vec![Spec::at_least(0, "b", 1e-6)]);
        let v1 = v.value(&[50.0], &s1);
        let v2 = v.value(&[0.5e-6], &s2);
        // The ε in the denominator perturbs tiny-unit specs slightly.
        assert!((v1 - v2).abs() < 1e-5);
    }
}
