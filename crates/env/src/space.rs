//! Discrete design spaces — the CSP domains `D_i` of the paper's eq. (2).
//!
//! Each sizing parameter has a finite grid of admissible values (widths in
//! steps of the layout grid, capacitor values from a discrete menu, …).
//! Agents work in **normalized coordinates** `[0, 1]^n`; the space converts
//! to physical values by snapping to the nearest grid point, so every
//! evaluated point is a legal assignment.

use crate::error::EnvError;
use asdex_rng::Rng;

/// One sizing parameter: a name and its discrete domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name, e.g. `"w_in"`.
    pub name: String,
    /// Admissible values, strictly increasing.
    pub grid: Vec<f64>,
}

impl Param {
    /// Creates a parameter with a linear grid of `points` values in
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidSpace`] if `points < 1` or `hi < lo`.
    pub fn linear(name: &str, lo: f64, hi: f64, points: usize) -> Result<Self, EnvError> {
        if points == 0 || hi < lo || !lo.is_finite() || !hi.is_finite() {
            return Err(EnvError::InvalidSpace {
                reason: format!("linear grid for {name} needs lo <= hi and >= 1 point"),
            });
        }
        let grid = if points == 1 {
            vec![lo]
        } else {
            (0..points)
                .map(|k| lo + (hi - lo) * k as f64 / (points - 1) as f64)
                .collect()
        };
        Ok(Param { name: name.to_string(), grid })
    }

    /// Creates a parameter with a geometric (log-spaced) grid.
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidSpace`] if bounds are non-positive or inverted.
    pub fn geometric(name: &str, lo: f64, hi: f64, points: usize) -> Result<Self, EnvError> {
        if points == 0 || lo <= 0.0 || hi < lo {
            return Err(EnvError::InvalidSpace {
                reason: format!("geometric grid for {name} needs 0 < lo <= hi and >= 1 point"),
            });
        }
        let grid = if points == 1 {
            vec![lo]
        } else {
            (0..points)
                .map(|k| lo * (hi / lo).powf(k as f64 / (points - 1) as f64))
                .collect()
        };
        Ok(Param { name: name.to_string(), grid })
    }

    /// Creates a parameter from an explicit value list (sorted
    /// internally).
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidSpace`] for an empty list or non-finite values.
    pub fn explicit(name: &str, mut values: Vec<f64>) -> Result<Self, EnvError> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return Err(EnvError::InvalidSpace {
                reason: format!("explicit grid for {name} must be non-empty and finite"),
            });
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        values.dedup();
        Ok(Param { name: name.to_string(), grid: values })
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// `true` if the grid is a single point.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Index of the grid point nearest to normalized coordinate
    /// `u ∈ [0, 1]` (clamped).
    pub fn index_of_normalized(&self, u: f64) -> usize {
        let n = self.grid.len();
        if n == 1 {
            return 0;
        }
        let idx = (u.clamp(0.0, 1.0) * (n - 1) as f64).round() as usize;
        idx.min(n - 1)
    }

    /// Normalized coordinate of grid index `i`.
    pub fn normalized_of_index(&self, i: usize) -> f64 {
        let n = self.grid.len();
        if n == 1 {
            0.0
        } else {
            i.min(n - 1) as f64 / (n - 1) as f64
        }
    }
}

/// A discrete design space: the Cartesian product of parameter grids.
///
/// # Example
///
/// ```
/// use asdex_env::space::{DesignSpace, Param};
///
/// # fn main() -> Result<(), asdex_env::EnvError> {
/// let space = DesignSpace::new(vec![
///     Param::linear("w1", 1e-6, 100e-6, 100)?,
///     Param::geometric("cc", 0.1e-12, 10e-12, 40)?,
/// ])?;
/// assert_eq!(space.dim(), 2);
/// assert!(space.size_log10() > 3.0); // 100 × 40 = 4000 points
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    params: Vec<Param>,
}

impl DesignSpace {
    /// Creates a design space from its parameters.
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidSpace`] if no parameters are given.
    pub fn new(params: Vec<Param>) -> Result<Self, EnvError> {
        if params.is_empty() {
            return Err(EnvError::InvalidSpace { reason: "design space needs at least one parameter".into() });
        }
        Ok(DesignSpace { params })
    }

    /// Number of parameters (dimensions).
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Parameter names in order.
    pub fn names(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name.as_str()).collect()
    }

    /// `log10` of the number of grid points — the paper quotes space sizes
    /// like 10^14 and 10^29, which overflow `u128` at the high end.
    pub fn size_log10(&self) -> f64 {
        self.params.iter().map(|p| (p.len() as f64).log10()).sum()
    }

    /// Converts normalized coordinates `u ∈ [0,1]^n` to physical values,
    /// snapping each axis to its nearest grid point.
    ///
    /// # Errors
    ///
    /// [`EnvError::DimensionMismatch`] when `u.len() != self.dim()`.
    pub fn to_physical(&self, u: &[f64]) -> Result<Vec<f64>, EnvError> {
        self.check_dim(u)?;
        Ok(self
            .params
            .iter()
            .zip(u)
            .map(|(p, &ui)| p.grid[p.index_of_normalized(ui)])
            .collect())
    }

    /// Snaps normalized coordinates to the exact normalized position of the
    /// nearest grid point (idempotent).
    ///
    /// # Errors
    ///
    /// [`EnvError::DimensionMismatch`] when `u.len() != self.dim()`.
    pub fn snap(&self, u: &[f64]) -> Result<Vec<f64>, EnvError> {
        self.check_dim(u)?;
        Ok(self
            .params
            .iter()
            .zip(u)
            .map(|(p, &ui)| p.normalized_of_index(p.index_of_normalized(ui)))
            .collect())
    }

    /// Converts physical values back to normalized coordinates (nearest
    /// grid point per axis).
    ///
    /// # Errors
    ///
    /// [`EnvError::DimensionMismatch`] when `x.len() != self.dim()`.
    pub fn to_normalized(&self, x: &[f64]) -> Result<Vec<f64>, EnvError> {
        self.check_dim(x)?;
        Ok(self
            .params
            .iter()
            .zip(x)
            .map(|(p, &xi)| {
                let idx = p
                    .grid
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        (*a - xi).abs().partial_cmp(&(*b - xi).abs()).expect("finite grid")
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                p.normalized_of_index(idx)
            })
            .collect())
    }

    /// Uniform random point (normalized, snapped to the grid).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| {
                let idx = rng.gen_range(0..p.len());
                p.normalized_of_index(idx)
            })
            .collect()
    }

    /// Random point inside the ∞-norm ball of radius `radius` around
    /// `center` (normalized coordinates, clamped to `[0,1]`, snapped).
    pub fn sample_within<R: Rng + ?Sized>(&self, rng: &mut R, center: &[f64], radius: f64) -> Vec<f64> {
        debug_assert_eq!(center.len(), self.dim());
        self.params
            .iter()
            .zip(center)
            .map(|(p, &c)| {
                let lo = (c - radius).max(0.0);
                let hi = (c + radius).min(1.0);
                let u = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                p.normalized_of_index(p.index_of_normalized(u))
            })
            .collect()
    }

    /// Grid-step size of each axis in normalized units (the smallest
    /// meaningful trust-region radius).
    pub fn min_step(&self) -> f64 {
        self.params
            .iter()
            .map(|p| if p.len() <= 1 { 1.0 } else { 1.0 / (p.len() - 1) as f64 })
            .fold(1.0, f64::min)
    }

    fn check_dim(&self, v: &[f64]) -> Result<(), EnvError> {
        if v.len() != self.dim() {
            return Err(EnvError::DimensionMismatch { expected: self.dim(), actual: v.len() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_rng::rngs::StdRng;
    use asdex_rng::SeedableRng;

    fn space2() -> DesignSpace {
        DesignSpace::new(vec![
            Param::linear("a", 0.0, 10.0, 11).unwrap(),
            Param::geometric("b", 1.0, 100.0, 3).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn linear_grid_endpoints() {
        let p = Param::linear("w", 1.0, 5.0, 5).unwrap();
        assert_eq!(p.grid, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(Param::linear("w", 2.0, 2.0, 1).unwrap().grid, vec![2.0]);
    }

    #[test]
    fn geometric_grid() {
        let p = Param::geometric("c", 1.0, 100.0, 3).unwrap();
        assert!((p.grid[1] - 10.0).abs() < 1e-9);
        assert!((p.grid[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_grid_sorts_and_dedups() {
        let p = Param::explicit("x", vec![3.0, 1.0, 2.0, 1.0]).unwrap();
        assert_eq!(p.grid, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn invalid_grids_rejected() {
        assert!(Param::linear("w", 5.0, 1.0, 3).is_err());
        assert!(Param::linear("w", 1.0, 5.0, 0).is_err());
        assert!(Param::geometric("w", 0.0, 5.0, 3).is_err());
        assert!(Param::explicit("w", vec![]).is_err());
        assert!(Param::explicit("w", vec![f64::NAN]).is_err());
        assert!(DesignSpace::new(vec![]).is_err());
    }

    #[test]
    fn normalization_round_trip() {
        let s = space2();
        let u = vec![0.5, 1.0];
        let x = s.to_physical(&u).unwrap();
        assert_eq!(x, vec![5.0, 100.0]);
        let back = s.to_normalized(&x).unwrap();
        assert_eq!(back, vec![0.5, 1.0]);
    }

    #[test]
    fn snap_is_idempotent() {
        let s = space2();
        let u = vec![0.43, 0.77];
        let snapped = s.snap(&u).unwrap();
        assert_eq!(s.snap(&snapped).unwrap(), snapped);
        // 0.43 on an 11-point grid snaps to index 4 → 0.4.
        assert!((snapped[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dimension_checked() {
        let s = space2();
        assert!(matches!(s.to_physical(&[0.5]), Err(EnvError::DimensionMismatch { .. })));
        assert!(s.to_normalized(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn size_log10_matches_product() {
        let s = space2();
        assert!((s.size_log10() - (11.0f64 * 3.0).log10()).abs() < 1e-12);
    }

    #[test]
    fn sampling_stays_on_grid() {
        let s = space2();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let u = s.sample(&mut rng);
            assert_eq!(s.snap(&u).unwrap(), u, "samples are snapped");
        }
    }

    #[test]
    fn sample_within_respects_radius() {
        let s = space2();
        let mut rng = StdRng::seed_from_u64(7);
        let center = vec![0.5, 0.5];
        for _ in 0..200 {
            let u = s.sample_within(&mut rng, &center, 0.1);
            // Snapping can move a point at most half a grid step beyond the
            // radius.
            assert!((u[0] - 0.5).abs() <= 0.1 + 0.05 + 1e-12);
            assert!((0.0..=1.0).contains(&u[0]));
        }
    }

    #[test]
    fn sample_within_clamps_at_bounds() {
        let s = space2();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let u = s.sample_within(&mut rng, &[0.0, 1.0], 0.2);
            assert!(u[0] >= 0.0 && u[1] <= 1.0);
        }
    }

    #[test]
    fn min_step() {
        let s = space2();
        assert!((s.min_step() - 0.1).abs() < 1e-12, "11-point axis → 0.1");
    }

    #[test]
    fn single_point_axis() {
        let s = DesignSpace::new(vec![Param::linear("fixed", 3.0, 3.0, 1).unwrap()]).unwrap();
        assert_eq!(s.to_physical(&[0.7]).unwrap(), vec![3.0]);
        assert_eq!(s.min_step(), 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample(&mut rng), vec![0.0]);
    }
}
