//! The sizing problem: design space + evaluator + specs + corners.
//!
//! This is the paper's standardized API surface (§IV-F): a designer
//! supplies the tunable parameters and ranges, the measurements observed
//! from simulation, and the specs per corner; every search agent consumes
//! the same [`SizingProblem`].

use crate::corner::{PvtCorner, PvtSet};
use crate::error::EnvError;
use crate::space::DesignSpace;
use crate::spec::SpecSet;
use crate::value::ValueFn;
use std::sync::Arc;

/// Maps a physical parameter vector to a measurement vector at a PVT
/// corner — the paper's opaque `S_pice(X)` relation.
///
/// Implementations must be deterministic for a given `(x, corner)` pair;
/// agents rely on re-evaluation returning the same result.
pub trait Evaluator: Send + Sync {
    /// Names of the entries of the measurement vector, in order.
    fn measurement_names(&self) -> &[String];

    /// Evaluates physical parameters `x` at `corner`.
    ///
    /// # Errors
    ///
    /// [`EnvError::Simulation`] when the underlying simulation does not
    /// converge — agents treat this as a maximally infeasible point, not a
    /// fatal error.
    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError>;
}

/// Outcome of evaluating one design point at one corner.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The normalized (grid-snapped) coordinates that were evaluated.
    pub x_norm: Vec<f64>,
    /// Measurements, `None` when the simulation failed.
    pub measurements: Option<Vec<f64>>,
    /// Value-function score (0 ⇔ all specs met).
    pub value: f64,
    /// `true` when every spec is satisfied.
    pub feasible: bool,
}

/// A complete sizing task.
#[derive(Clone)]
pub struct SizingProblem {
    /// Problem name for reports.
    pub name: String,
    /// The discrete design space.
    pub space: DesignSpace,
    /// The simulation behind the problem.
    pub evaluator: Arc<dyn Evaluator>,
    /// Specs that must hold at every corner.
    pub specs: SpecSet,
    /// PVT corners to sign off.
    pub corners: PvtSet,
    /// Value function used to rank candidates.
    pub value_fn: ValueFn,
}

impl std::fmt::Debug for SizingProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SizingProblem")
            .field("name", &self.name)
            .field("dim", &self.space.dim())
            .field("specs", &self.specs.len())
            .field("corners", &self.corners.len())
            .finish()
    }
}

impl SizingProblem {
    /// Creates a problem, validating its pieces fit together.
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidProblem`] when a spec references a measurement
    /// index outside the evaluator's measurement vector.
    pub fn new(
        name: &str,
        space: DesignSpace,
        evaluator: Arc<dyn Evaluator>,
        specs: SpecSet,
        corners: PvtSet,
    ) -> Result<Self, EnvError> {
        let n_meas = evaluator.measurement_names().len();
        for s in specs.specs() {
            if s.measurement >= n_meas {
                return Err(EnvError::InvalidProblem {
                    reason: format!(
                        "spec {} references measurement {} but the evaluator provides {}",
                        s.name, s.measurement, n_meas
                    ),
                });
            }
        }
        Ok(SizingProblem {
            name: name.to_string(),
            space,
            evaluator,
            specs,
            corners,
            value_fn: ValueFn::default(),
        })
    }

    /// Number of design parameters.
    pub fn dim(&self) -> usize {
        self.space.dim()
    }

    /// Evaluates a normalized point at one corner (by index), translating
    /// simulation failures into worst-case values.
    ///
    /// # Panics
    ///
    /// Panics if `corner_idx` is out of range.
    pub fn evaluate_normalized(&self, u: &[f64], corner_idx: usize) -> Evaluation {
        let corner = self.corners.corners()[corner_idx];
        let x_norm = self.space.snap(u).unwrap_or_else(|_| u.to_vec());
        let x_phys = match self.space.to_physical(&x_norm) {
            Ok(x) => x,
            Err(_) => {
                return Evaluation {
                    x_norm,
                    measurements: None,
                    value: self.value_fn.failure_value(&self.specs),
                    feasible: false,
                }
            }
        };
        match self.evaluator.evaluate(&x_phys, &corner) {
            Ok(meas) => {
                let value = self.value_fn.value(&meas, &self.specs);
                let feasible = self.specs.all_satisfied(&meas);
                Evaluation { x_norm, measurements: Some(meas), value, feasible }
            }
            Err(_) => Evaluation {
                x_norm,
                measurements: None,
                value: self.value_fn.failure_value(&self.specs),
                feasible: false,
            },
        }
    }

    /// Evaluates a normalized point at every corner; `feasible` requires
    /// all corners to pass. Returns per-corner evaluations.
    pub fn evaluate_all_corners(&self, u: &[f64]) -> Vec<Evaluation> {
        (0..self.corners.len()).map(|c| self.evaluate_normalized(u, c)).collect()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::space::Param;
    use crate::spec::Spec;

    /// A 2-D analytic evaluator for tests: measurement = [x0 + x1, x0*x1].
    pub struct ToyEvaluator {
        names: Vec<String>,
    }

    impl ToyEvaluator {
        pub fn new() -> Self {
            ToyEvaluator { names: vec!["sum".into(), "prod".into()] }
        }
    }

    impl Evaluator for ToyEvaluator {
        fn measurement_names(&self) -> &[String] {
            &self.names
        }
        fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
            // Corners make the task slightly harder at low supply.
            let derate = corner.vdd_scale;
            Ok(vec![(x[0] + x[1]) * derate, x[0] * x[1] * derate])
        }
    }

    pub fn toy_problem() -> SizingProblem {
        let space = DesignSpace::new(vec![
            Param::linear("x0", 0.0, 10.0, 101).unwrap(),
            Param::linear("x1", 0.0, 10.0, 101).unwrap(),
        ])
        .unwrap();
        SizingProblem::new(
            "toy",
            space,
            Arc::new(ToyEvaluator::new()),
            SpecSet::new(vec![Spec::at_least(0, "sum", 12.0), Spec::at_least(1, "prod", 20.0)]),
            PvtSet::nominal_only(),
        )
        .unwrap()
    }

    #[test]
    fn bad_spec_index_rejected() {
        let space = DesignSpace::new(vec![Param::linear("x", 0.0, 1.0, 2).unwrap()]).unwrap();
        let err = SizingProblem::new(
            "bad",
            space,
            Arc::new(ToyEvaluator::new()),
            SpecSet::new(vec![Spec::at_least(5, "nope", 0.0)]),
            PvtSet::nominal_only(),
        )
        .unwrap_err();
        assert!(matches!(err, EnvError::InvalidProblem { .. }));
    }

    #[test]
    fn evaluation_feasibility() {
        let p = toy_problem();
        // (8, 8): sum 16 >= 12, prod 64 >= 20 → feasible, value 0.
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert!(e.feasible);
        assert_eq!(e.value, 0.0);
        assert_eq!(e.measurements.as_deref(), Some(&[16.0, 64.0][..]));
        // (1, 1): infeasible.
        let e = p.evaluate_normalized(&[0.1, 0.1], 0);
        assert!(!e.feasible);
        assert!(e.value < 0.0);
    }

    #[test]
    fn snapping_applied_before_evaluation() {
        let p = toy_problem();
        let e = p.evaluate_normalized(&[0.555, 0.0], 0);
        // 0.555 on a 101-point grid snaps to 0.56 → x = 5.6.
        assert!((e.x_norm[0] - 0.56).abs() < 1e-12);
        assert!((e.measurements.unwrap()[0] - 5.6).abs() < 1e-9);
    }

    #[test]
    fn all_corner_evaluation() {
        let mut p = toy_problem();
        p.corners = PvtSet::new(vec![
            PvtCorner::nominal(),
            PvtCorner { vdd_scale: 0.5, ..PvtCorner::nominal() },
        ]);
        let evals = p.evaluate_all_corners(&[0.8, 0.8]);
        assert_eq!(evals.len(), 2);
        assert!(evals[0].feasible);
        assert!(!evals[1].feasible, "derated corner misses the spec");
    }

    #[test]
    fn debug_format_mentions_name() {
        let p = toy_problem();
        assert!(format!("{p:?}").contains("toy"));
    }
}
