//! The sizing problem: design space + evaluator + specs + corners.
//!
//! This is the paper's standardized API surface (§IV-F): a designer
//! supplies the tunable parameters and ranges, the measurements observed
//! from simulation, and the specs per corner; every search agent consumes
//! the same [`SizingProblem`].

use crate::cancel::CancelToken;
use crate::corner::{PvtCorner, PvtSet};
use crate::dispatch::EvalDispatcher;
use crate::error::EnvError;
use crate::evalstore::{self, EvalStore, Join};
use crate::journal::Journal;
use crate::robust::{EvalEffort, RetryPolicy};
use crate::space::DesignSpace;
use crate::spec::SpecSet;
use crate::stats::FailureKind;
use crate::value::ValueFn;
use std::collections::HashSet;
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Mutex};

/// Identity of one (point, corner) job for quarantine bookkeeping: the
/// requested coordinates' IEEE-754 bits plus the corner index.
pub(crate) type JobKey = (Vec<u64>, usize);

pub(crate) fn job_key(u: &[f64], corner_idx: usize) -> JobKey {
    (u.iter().map(|v| v.to_bits()).collect(), corner_idx)
}

/// Maps a physical parameter vector to a measurement vector at a PVT
/// corner — the paper's opaque `S_pice(X)` relation.
///
/// Implementations must be deterministic for a given `(x, corner, effort)`
/// triple; agents rely on re-evaluation returning the same result.
pub trait Evaluator: Send + Sync {
    /// Names of the entries of the measurement vector, in order.
    fn measurement_names(&self) -> &[String];

    /// Evaluates physical parameters `x` at `corner`.
    ///
    /// # Errors
    ///
    /// [`EnvError::Simulation`] when the underlying simulation does not
    /// converge — agents treat this as a maximally infeasible point, not a
    /// fatal error.
    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError>;

    /// Evaluates with an explicit solver-effort level, used by the retry
    /// ladder to escalate on convergence failures. The default ignores the
    /// effort — analytic evaluators have nothing to escalate — so only
    /// simulator-backed implementations need to override this.
    ///
    /// # Errors
    ///
    /// Same contract as [`Evaluator::evaluate`].
    fn evaluate_with_effort(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        let _ = effort;
        self.evaluate(x, corner)
    }

    /// Pins the linear-solver backend for every future evaluation (see
    /// [`asdex_spice::analysis::SolverChoice`]). The default is a no-op —
    /// analytic evaluators solve no linear systems — so only MNA-backed
    /// implementations need to override this. Implementations must drop
    /// any memoized results keyed without the choice: backends agree only
    /// within solver tolerance, not bitwise.
    fn set_solver(&self, choice: asdex_spice::analysis::SolverChoice) {
        let _ = choice;
    }
}

/// Outcome of evaluating one design point at one corner.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The normalized (grid-snapped) coordinates that were evaluated.
    pub x_norm: Vec<f64>,
    /// Measurements, `None` when the simulation failed.
    pub measurements: Option<Vec<f64>>,
    /// Value-function score (0 ⇔ all specs met).
    pub value: f64,
    /// `true` when every spec is satisfied.
    pub feasible: bool,
    /// Why the final attempt failed, `None` on success. Wrong-dimension or
    /// non-finite measurement vectors are detected here and typed, so
    /// `measurements` is always well-formed when `Some`.
    pub failure: Option<FailureKind>,
    /// Budget units consumed: 1 for a plain evaluation, `1 + retries` when
    /// the retry ladder ran. Agents charge this (not a flat 1) against
    /// `SearchBudget::max_sims` so accounting stays exact under retries.
    pub sim_cost: usize,
}

impl Evaluation {
    /// `true` when the point failed at least once but the retry ladder
    /// eventually produced a valid result.
    pub fn recovered(&self) -> bool {
        self.failure.is_none() && self.sim_cost > 1
    }
}

/// A complete sizing task.
#[derive(Clone)]
pub struct SizingProblem {
    /// Problem name for reports.
    pub name: String,
    /// The discrete design space.
    pub space: DesignSpace,
    /// The simulation behind the problem.
    pub evaluator: Arc<dyn Evaluator>,
    /// Specs that must hold at every corner.
    pub specs: SpecSet,
    /// PVT corners to sign off.
    pub corners: PvtSet,
    /// Value function used to rank candidates.
    pub value_fn: ValueFn,
    /// Retry ladder applied to retryable failures (on by default; set to
    /// [`RetryPolicy::none`] to disable).
    pub retry: RetryPolicy,
    /// Worker threads for [`SizingProblem::evaluate_batch`]: 0 (the
    /// default) resolves from the `ASDEX_THREADS` environment variable,
    /// falling back to serial execution. Thread count never changes
    /// results — only wall-clock.
    pub threads: usize,
    /// Optional dynamic worker-count source, read at every
    /// [`SizingProblem::evaluate_batch`] call. A serving layer running
    /// many campaigns against one machine stores each campaign's
    /// fair share here and rebalances as campaigns start and finish;
    /// a value of 0 falls back to [`SizingProblem::threads`]. Thread
    /// count never changes results — only wall-clock — so rebalancing
    /// mid-campaign is always safe.
    pub(crate) thread_share: Option<Arc<AtomicUsize>>,
    /// Optional cooperative cancellation flag (the serving layer's drain
    /// hook). Checked at every batch boundary; see [`crate::CancelToken`].
    pub(crate) cancel: Option<CancelToken>,
    /// Optional checkpoint journal, shared across clones of the problem.
    /// Replay lookups and recording happen in request order (never
    /// concurrently inside a worker), so thread count stays invisible.
    pub(crate) journal: Option<Arc<Mutex<Journal>>>,
    /// (point, corner) jobs whose retry ladder was exhausted by worker
    /// panics. Quarantined jobs short-circuit to a typed
    /// [`FailureKind::WorkerPanic`] failure at unit cost instead of
    /// panicking the evaluator again. Shared across clones; mutated only
    /// in the ordered finalize pass so results stay thread-invariant.
    pub(crate) quarantine: Arc<Mutex<HashSet<JobKey>>>,
    /// Optional execution backend for single attempts (e.g. a sandboxed
    /// worker-process pool). `None` runs attempts in-process on the
    /// calling thread; see [`crate::EvalDispatcher`] for the equivalence
    /// contract. Dispatch never changes results — only where they run.
    pub(crate) dispatcher: Option<Arc<dyn EvalDispatcher>>,
    /// Optional cross-campaign single-flight dedup store (see
    /// [`crate::EvalStore`]). Concurrent problems sharing a store wait on
    /// each other's in-flight evaluations instead of recomputing them;
    /// attaching a store never changes results — only simulator count and
    /// wall-clock. Callers sharing one store must agree on the problem
    /// identity (benchmark, corners, solver backend).
    pub(crate) eval_store: Option<Arc<EvalStore>>,
}

impl std::fmt::Debug for SizingProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SizingProblem")
            .field("name", &self.name)
            .field("dim", &self.space.dim())
            .field("specs", &self.specs.len())
            .field("corners", &self.corners.len())
            .finish()
    }
}

impl SizingProblem {
    /// Creates a problem, validating its pieces fit together.
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidProblem`] when a spec references a measurement
    /// index outside the evaluator's measurement vector.
    pub fn new(
        name: &str,
        space: DesignSpace,
        evaluator: Arc<dyn Evaluator>,
        specs: SpecSet,
        corners: PvtSet,
    ) -> Result<Self, EnvError> {
        let n_meas = evaluator.measurement_names().len();
        for s in specs.specs() {
            if s.measurement >= n_meas {
                return Err(EnvError::InvalidProblem {
                    reason: format!(
                        "spec {} references measurement {} but the evaluator provides {}",
                        s.name, s.measurement, n_meas
                    ),
                });
            }
        }
        Ok(SizingProblem {
            name: name.to_string(),
            space,
            evaluator,
            specs,
            corners,
            value_fn: ValueFn::default(),
            retry: RetryPolicy::default(),
            threads: 0,
            thread_share: None,
            cancel: None,
            journal: None,
            quarantine: Arc::new(Mutex::new(HashSet::new())),
            dispatcher: None,
            eval_store: None,
        })
    }

    /// Sets the batch-evaluation worker count (builder style); 0 restores
    /// the `ASDEX_THREADS`/serial default.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pins the linear-solver backend on the problem's evaluator (builder
    /// style); see [`Evaluator::set_solver`]. Backend choice is part of a
    /// campaign's identity — each backend is individually deterministic,
    /// but they agree only within solver tolerance — so resumable
    /// campaigns record it and re-apply the same choice on resume.
    #[must_use]
    pub fn with_solver(self, choice: asdex_spice::analysis::SolverChoice) -> Self {
        self.evaluator.set_solver(choice);
        self
    }

    /// Attaches a dynamic worker-count source (builder style). The value
    /// is re-read at every [`SizingProblem::evaluate_batch`] call, so a
    /// scheduler can rebalance a shared thread budget across concurrent
    /// campaigns while they run; 0 falls back to the static
    /// [`SizingProblem::with_threads`] setting.
    #[must_use]
    pub fn with_thread_share(mut self, share: Arc<AtomicUsize>) -> Self {
        self.thread_share = Some(share);
        self
    }

    /// Attaches a cooperative cancellation token (builder style). Once
    /// cancelled, every subsequent batch returns typed
    /// [`FailureKind::Cancelled`] failures that charge their reserved
    /// budget without invoking the simulator or touching the journal —
    /// see [`crate::CancelToken`] for the drain semantics.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether the attached [`CancelToken`] (if any) has been pulled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Attaches a checkpoint journal (builder style): every non-replayed
    /// evaluation is recorded, and any outcomes already in the journal
    /// (after [`Journal::resume`]) are served back in request order
    /// without invoking the evaluator.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = Some(Arc::new(Mutex::new(journal)));
        self
    }

    /// Routes single evaluator attempts through `dispatcher` (builder
    /// style) — typically a worker-process pool. The retry ladder, budget
    /// accounting, journal, and quarantine stay in this process; only the
    /// raw attempt execution moves. Passing the problem's own evaluator
    /// semantics through the dispatcher is the implementer's contract
    /// (see [`crate::EvalDispatcher`]); when it holds, results are
    /// bitwise identical to the in-process path.
    #[must_use]
    pub fn with_dispatcher(mut self, dispatcher: Arc<dyn EvalDispatcher>) -> Self {
        self.dispatcher = Some(dispatcher);
        self
    }

    /// The attached attempt dispatcher, if any.
    pub fn dispatcher(&self) -> Option<Arc<dyn EvalDispatcher>> {
        self.dispatcher.clone()
    }

    /// Attaches a cross-campaign single-flight dedup store (builder
    /// style): live evaluations first consult the store, and the first
    /// caller for a given (point-bits, corner, attempt-cap) key computes
    /// the result while concurrent callers wait for it. See
    /// [`crate::EvalStore`] for the determinism and crash-safety
    /// contract. Journal replay always takes precedence over the store.
    #[must_use]
    pub fn with_eval_store(mut self, store: Arc<EvalStore>) -> Self {
        self.eval_store = Some(store);
        self
    }

    /// The attached dedup store, if any.
    pub fn eval_store(&self) -> Option<Arc<EvalStore>> {
        self.eval_store.clone()
    }

    /// A handle to the attached journal, if any — lets a supervisor force
    /// a [`Journal::checkpoint`] on graceful shutdown or read replay
    /// telemetry after a campaign.
    pub fn journal_handle(&self) -> Option<Arc<Mutex<Journal>>> {
        self.journal.clone()
    }

    /// Number of design parameters.
    pub fn dim(&self) -> usize {
        self.space.dim()
    }

    /// An infeasible worst-case outcome with a typed failure kind.
    pub(crate) fn failed_eval(
        &self,
        x_norm: Vec<f64>,
        kind: FailureKind,
        sim_cost: usize,
    ) -> Evaluation {
        Evaluation {
            x_norm,
            measurements: None,
            value: self.value_fn.failure_value(&self.specs),
            feasible: false,
            failure: Some(kind),
            sim_cost,
        }
    }

    /// Evaluates a normalized point at one corner (by index), translating
    /// simulation failures into worst-case values with a typed
    /// [`FailureKind`]. An out-of-range `corner_idx` is reported as an
    /// [`FailureKind::InvalidInput`] failure, not a panic.
    ///
    /// Retryable failures run the retry ladder (see
    /// [`SizingProblem::evaluate_with_budget`] to cap its attempts when
    /// the simulation budget is nearly spent).
    pub fn evaluate_normalized(&self, u: &[f64], corner_idx: usize) -> Evaluation {
        self.evaluate_with_budget(u, corner_idx, usize::MAX)
    }

    /// Evaluates a normalized point at one corner with at most `remaining`
    /// simulator attempts available. The retry ladder never issues more
    /// attempts than `remaining`, so charging the returned
    /// [`Evaluation::sim_cost`] against a budget can never overshoot it.
    ///
    /// When a journal is attached (see [`SizingProblem::with_journal`]) a
    /// recorded outcome for `(u, corner_idx, cap)` is served back without
    /// touching the evaluator, and fresh outcomes are recorded.
    pub fn evaluate_with_budget(
        &self,
        u: &[f64],
        corner_idx: usize,
        remaining: usize,
    ) -> Evaluation {
        let cap = self.retry.max_attempts().min(remaining.max(1));
        if self.is_cancelled() {
            return self.cancelled_eval(u, cap);
        }
        let (eval, replayed) = match self.take_replayed(u, corner_idx, cap) {
            Some(e) => (e, true),
            None => (self.evaluate_shared(u, corner_idx, cap), false),
        };
        self.finalize_evaluation(u, corner_idx, cap, eval, replayed)
    }

    /// Pops the journaled outcome for this job, if a journal is attached
    /// and holds one. Callers must invoke this in request order (the batch
    /// pipeline does it in a serial pre-pass) so duplicate requests are
    /// served in their original sequence.
    pub(crate) fn take_replayed(
        &self,
        u: &[f64],
        corner_idx: usize,
        cap: usize,
    ) -> Option<Evaluation> {
        let journal = self.journal.as_ref()?;
        let mut journal = journal.lock().ok()?;
        journal.take_replay(u, corner_idx, cap)
    }

    /// The quarantine short-circuit outcome: a typed
    /// [`FailureKind::WorkerPanic`] failure at unit cost.
    fn quarantine_eval(&self, u: &[f64]) -> Evaluation {
        let x_norm = self.space.snap(u).unwrap_or_else(|_| u.to_vec());
        self.failed_eval(x_norm, FailureKind::WorkerPanic, 1)
    }

    /// The drain short-circuit outcome: a typed
    /// [`FailureKind::Cancelled`] failure that charges the request's full
    /// reserved attempt cap, so a cancelled agent burns through its
    /// remaining budget in one pass and terminates. Never journaled.
    pub(crate) fn cancelled_eval(&self, u: &[f64], cap: usize) -> Evaluation {
        let x_norm = self.space.snap(u).unwrap_or_else(|_| u.to_vec());
        self.failed_eval(x_norm, FailureKind::Cancelled, cap.max(1))
    }

    /// Whether this job is quarantined after repeated worker panics.
    fn is_quarantined(&self, u: &[f64], corner_idx: usize) -> bool {
        self.quarantine
            .lock()
            .map(|q| q.contains(&job_key(u, corner_idx)))
            .unwrap_or(false)
    }

    /// The live evaluation path: quarantine snapshot check, then the retry
    /// ladder with panic isolation, **without** journal replay/recording
    /// or quarantine updates (the batch pipeline runs those in an ordered
    /// finalize pass; see [`SizingProblem::finalize_evaluation`]).
    ///
    /// Each evaluator call runs under `catch_unwind` (or through the
    /// attached [`crate::EvalDispatcher`]): a panicking evaluator — or a
    /// dying worker process — is converted into a typed
    /// [`FailureKind::WorkerPanic`] failure that flows through the normal
    /// retry machinery instead of unwinding across (and poisoning) the
    /// worker pool.
    pub(crate) fn evaluate_unjournaled(
        &self,
        u: &[f64],
        corner_idx: usize,
        max_attempts: usize,
    ) -> Evaluation {
        if self.is_quarantined(u, corner_idx) {
            return self.quarantine_eval(u);
        }
        let Some(corner) = self.corners.corners().get(corner_idx).copied() else {
            return self.failed_eval(u.to_vec(), FailureKind::InvalidInput, 1);
        };
        // A failed snap (wrong dimension) is typed instead of silently
        // evaluating the raw point; callers can count it via EvalStats.
        let x_norm = match self.space.snap(u) {
            Ok(x) => x,
            Err(_) => return self.failed_eval(u.to_vec(), FailureKind::InvalidInput, 1),
        };
        let x_phys = match self.space.to_physical(&x_norm) {
            Ok(x) => x,
            Err(_) => return self.failed_eval(x_norm, FailureKind::InvalidInput, 1),
        };
        let n_meas = self.evaluator.measurement_names().len();
        let mut attempt = 0;
        loop {
            // One attempt, either in-process (the reference semantics) or
            // through the attached dispatcher. Shape and finiteness checks
            // are applied here, uniformly, to whatever comes back.
            let outcome = match &self.dispatcher {
                None => {
                    crate::dispatch::run_attempt(self.evaluator.as_ref(), &x_phys, &corner, attempt)
                }
                Some(d) => d.dispatch(&x_phys, corner_idx, attempt),
            };
            let kind = match outcome {
                Err(kind) => kind,
                Ok(meas) if meas.len() != n_meas => FailureKind::InvalidInput,
                Ok(meas) if meas.iter().any(|v| !v.is_finite()) => FailureKind::NonFinite,
                Ok(meas) => {
                    let value = self.value_fn.value(&meas, &self.specs);
                    let feasible = self.specs.all_satisfied(&meas);
                    return Evaluation {
                        x_norm,
                        measurements: Some(meas),
                        value,
                        feasible,
                        failure: None,
                        sim_cost: attempt + 1,
                    };
                }
            };
            if kind.is_retryable() && attempt + 1 < max_attempts {
                attempt += 1;
            } else {
                return self.failed_eval(x_norm, kind, attempt + 1);
            }
        }
    }

    /// The live evaluation path behind the optional dedup store: without
    /// a store this is exactly [`SizingProblem::evaluate_unjournaled`];
    /// with one, the call joins the single flight for
    /// `(u-bits, corner_idx, cap)` — computing and publishing as the
    /// owner, receiving a published clone as a waiter, or re-dispatching
    /// when an owner abandons the key. Only pure results are published
    /// (never [`FailureKind::Cancelled`] or [`FailureKind::WorkerPanic`];
    /// see [`crate::evalstore`] for why), so attaching a store never
    /// changes any campaign's results.
    pub(crate) fn evaluate_shared(
        &self,
        u: &[f64],
        corner_idx: usize,
        max_attempts: usize,
    ) -> Evaluation {
        let Some(store) = &self.eval_store else {
            return self.evaluate_unjournaled(u, corner_idx, max_attempts);
        };
        let key = evalstore::store_key(u, corner_idx, max_attempts);
        // Waiters on a slot an owner abandoned re-claim *inside* `join`,
        // so every arm here is terminal.
        match store.join(&key, || self.is_cancelled()) {
            Join::Done(e) => e,
            Join::Owner(guard) => {
                let e = self.evaluate_unjournaled(u, corner_idx, max_attempts);
                if Self::publishable(&e) {
                    guard.publish(e.clone());
                }
                // An unpublishable result drops the guard, vacating
                // the slot so a waiter re-dispatches.
                e
            }
            // A full store degrades to plain local evaluation.
            Join::Bypass => self.evaluate_unjournaled(u, corner_idx, max_attempts),
            Join::Cancelled => self.cancelled_eval(u, max_attempts),
        }
    }

    /// Whether an evaluation is a pure function of its store key and may
    /// be published for other campaigns to reuse.
    fn publishable(e: &Evaluation) -> bool {
        !matches!(e.failure, Some(FailureKind::Cancelled) | Some(FailureKind::WorkerPanic))
    }

    /// The ordered finalize pass for one evaluation, applied in request
    /// order (the serial path does it inline; the threaded batch path
    /// after its workers join). Three steps, in this order:
    ///
    /// 1. A fresh (non-replayed) result whose job was quarantined by an
    ///    *earlier* request in the same batch is replaced with the
    ///    quarantine short-circuit — exactly what the serial interleaving
    ///    would have produced.
    /// 2. A terminal [`FailureKind::WorkerPanic`] quarantines the job.
    /// 3. A fresh result is recorded to the journal (replays are already
    ///    on disk).
    pub(crate) fn finalize_evaluation(
        &self,
        u: &[f64],
        corner_idx: usize,
        cap: usize,
        mut eval: Evaluation,
        replayed: bool,
    ) -> Evaluation {
        if !replayed && self.is_quarantined(u, corner_idx) {
            eval = self.quarantine_eval(u);
        }
        if eval.failure == Some(FailureKind::WorkerPanic) {
            if let Ok(mut quarantine) = self.quarantine.lock() {
                quarantine.insert(job_key(u, corner_idx));
            }
        }
        // Cancelled placeholders are not real simulator outcomes: keeping
        // them out of the journal is what makes a drained campaign resume
        // to the same outcome as an uninterrupted run.
        if eval.failure == Some(FailureKind::Cancelled) {
            return eval;
        }
        if !replayed {
            if let Some(journal) = &self.journal {
                if let Ok(mut journal) = journal.lock() {
                    // A failed append never fails the evaluation — the
                    // journal degrades to a shorter resume point, and the
                    // drop is tallied in `Journal::dropped` so campaign
                    // telemetry surfaces it as `journal_drops`.
                    let _ = journal.record(u, corner_idx, cap, &eval);
                }
            }
        }
        eval
    }

    /// Evaluates a normalized point at every corner, as one batch through
    /// [`SizingProblem::evaluate_batch`] (parallel when the problem has a
    /// worker pool configured). Returns the raw per-corner evaluations in
    /// corner order; each entry's `feasible` flag covers *that corner
    /// only*, so sign-off across corners is
    /// `evals.iter().all(|e| e.feasible)`.
    pub fn evaluate_all_corners(&self, u: &[f64]) -> Vec<Evaluation> {
        let requests = crate::batch::EvalRequest::fan_out(u, self.corners.len());
        self.evaluate_batch(&requests, usize::MAX)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::space::Param;
    use crate::spec::Spec;

    /// A 2-D analytic evaluator for tests: measurement = [x0 + x1, x0*x1].
    pub struct ToyEvaluator {
        names: Vec<String>,
    }

    impl ToyEvaluator {
        pub fn new() -> Self {
            ToyEvaluator { names: vec!["sum".into(), "prod".into()] }
        }
    }

    impl Evaluator for ToyEvaluator {
        fn measurement_names(&self) -> &[String] {
            &self.names
        }
        fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
            // Corners make the task slightly harder at low supply.
            let derate = corner.vdd_scale;
            Ok(vec![(x[0] + x[1]) * derate, x[0] * x[1] * derate])
        }
    }

    pub fn toy_problem() -> SizingProblem {
        let space = DesignSpace::new(vec![
            Param::linear("x0", 0.0, 10.0, 101).unwrap(),
            Param::linear("x1", 0.0, 10.0, 101).unwrap(),
        ])
        .unwrap();
        SizingProblem::new(
            "toy",
            space,
            Arc::new(ToyEvaluator::new()),
            SpecSet::new(vec![Spec::at_least(0, "sum", 12.0), Spec::at_least(1, "prod", 20.0)]),
            PvtSet::nominal_only(),
        )
        .unwrap()
    }

    #[test]
    fn bad_spec_index_rejected() {
        let space = DesignSpace::new(vec![Param::linear("x", 0.0, 1.0, 2).unwrap()]).unwrap();
        let err = SizingProblem::new(
            "bad",
            space,
            Arc::new(ToyEvaluator::new()),
            SpecSet::new(vec![Spec::at_least(5, "nope", 0.0)]),
            PvtSet::nominal_only(),
        )
        .unwrap_err();
        assert!(matches!(err, EnvError::InvalidProblem { .. }));
    }

    #[test]
    fn evaluation_feasibility() {
        let p = toy_problem();
        // (8, 8): sum 16 >= 12, prod 64 >= 20 → feasible, value 0.
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert!(e.feasible);
        assert_eq!(e.value, 0.0);
        assert_eq!(e.measurements.as_deref(), Some(&[16.0, 64.0][..]));
        // (1, 1): infeasible.
        let e = p.evaluate_normalized(&[0.1, 0.1], 0);
        assert!(!e.feasible);
        assert!(e.value < 0.0);
    }

    #[test]
    fn snapping_applied_before_evaluation() {
        let p = toy_problem();
        let e = p.evaluate_normalized(&[0.555, 0.0], 0);
        // 0.555 on a 101-point grid snaps to 0.56 → x = 5.6.
        assert!((e.x_norm[0] - 0.56).abs() < 1e-12);
        assert!((e.measurements.unwrap()[0] - 5.6).abs() < 1e-9);
    }

    #[test]
    fn all_corner_evaluation() {
        let mut p = toy_problem();
        p.corners = PvtSet::new(vec![
            PvtCorner::nominal(),
            PvtCorner { vdd_scale: 0.5, ..PvtCorner::nominal() },
        ]);
        let evals = p.evaluate_all_corners(&[0.8, 0.8]);
        assert_eq!(evals.len(), 2);
        assert!(evals[0].feasible);
        assert!(!evals[1].feasible, "derated corner misses the spec");
    }

    #[test]
    fn debug_format_mentions_name() {
        let p = toy_problem();
        assert!(format!("{p:?}").contains("toy"));
    }

    /// An evaluator that always reports NaN measurements.
    pub struct NanEvaluator {
        names: Vec<String>,
    }

    impl NanEvaluator {
        pub fn new() -> Self {
            NanEvaluator { names: vec!["sum".into(), "prod".into()] }
        }
    }

    impl Evaluator for NanEvaluator {
        fn measurement_names(&self) -> &[String] {
            &self.names
        }
        fn evaluate(&self, _x: &[f64], _corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
            Ok(vec![f64::NAN, f64::NAN])
        }
    }

    #[test]
    fn nan_measurements_are_typed_infeasible() {
        let mut p = toy_problem();
        p.evaluator = Arc::new(NanEvaluator::new());
        let e = p.evaluate_normalized(&[0.5, 0.5], 0);
        assert!(!e.feasible);
        assert_eq!(e.failure, Some(crate::stats::FailureKind::NonFinite));
        assert!(e.measurements.is_none(), "NaN never reaches the value function");
        assert_eq!(e.value, p.value_fn.failure_value(&p.specs));
        assert_eq!(e.sim_cost, 1, "non-finite results are not retried");
    }

    #[test]
    fn out_of_range_corner_is_typed_not_a_panic() {
        let p = toy_problem();
        let e = p.evaluate_normalized(&[0.5, 0.5], 99);
        assert!(!e.feasible);
        assert_eq!(e.failure, Some(crate::stats::FailureKind::InvalidInput));
        assert_eq!(e.sim_cost, 1);
    }

    #[test]
    fn wrong_dimension_point_is_typed_not_silently_snapped() {
        let p = toy_problem();
        let e = p.evaluate_normalized(&[0.5], 0);
        assert!(!e.feasible);
        assert_eq!(e.failure, Some(crate::stats::FailureKind::InvalidInput));
    }

    #[test]
    fn successful_evaluation_has_no_failure_and_unit_cost() {
        let p = toy_problem();
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(e.failure, None);
        assert_eq!(e.sim_cost, 1);
        assert!(!e.recovered());
    }

    #[test]
    fn retry_ladder_recovers_flaky_points_within_budget() {
        use crate::robust::EvalEffort;
        /// Fails with NoConvergence below a per-point attempt threshold.
        struct FlakyUntil {
            names: Vec<String>,
            succeed_at: usize,
        }
        impl Evaluator for FlakyUntil {
            fn measurement_names(&self) -> &[String] {
                &self.names
            }
            fn evaluate(&self, x: &[f64], c: &PvtCorner) -> Result<Vec<f64>, EnvError> {
                self.evaluate_with_effort(x, c, EvalEffort::default())
            }
            fn evaluate_with_effort(
                &self,
                x: &[f64],
                _c: &PvtCorner,
                effort: EvalEffort,
            ) -> Result<Vec<f64>, EnvError> {
                if effort.attempt < self.succeed_at {
                    Err(asdex_spice::SpiceError::NoConvergence { analysis: "op", iterations: 150 }
                        .into())
                } else {
                    Ok(vec![x[0] + x[1], x[0] * x[1]])
                }
            }
        }

        let mut p = toy_problem();
        p.evaluator =
            Arc::new(FlakyUntil { names: vec!["sum".into(), "prod".into()], succeed_at: 2 });
        // Default policy: 1 try + 2 retries → succeeds on the third attempt.
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert!(e.feasible);
        assert_eq!(e.sim_cost, 3);
        assert!(e.recovered());

        // With only 2 attempts of budget left, the ladder is cut short.
        let e = p.evaluate_with_budget(&[0.8, 0.8], 0, 2);
        assert!(!e.feasible);
        assert_eq!(e.failure, Some(crate::stats::FailureKind::NoConvergence));
        assert_eq!(e.sim_cost, 2, "never exceeds the remaining budget");

        // With the ladder disabled, the first failure is terminal.
        p.retry = crate::robust::RetryPolicy::none();
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(e.sim_cost, 1);
        assert_eq!(e.failure, Some(crate::stats::FailureKind::NoConvergence));
    }

    /// Panics below a per-point attempt threshold, then succeeds; counts
    /// raw evaluator invocations.
    pub struct PanickyUntil {
        names: Vec<String>,
        succeed_at: usize,
        pub calls: std::sync::atomic::AtomicUsize,
    }

    impl PanickyUntil {
        pub fn new(succeed_at: usize) -> Self {
            PanickyUntil {
                names: vec!["sum".into(), "prod".into()],
                succeed_at,
                calls: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl Evaluator for PanickyUntil {
        fn measurement_names(&self) -> &[String] {
            &self.names
        }
        fn evaluate(&self, x: &[f64], c: &PvtCorner) -> Result<Vec<f64>, EnvError> {
            self.evaluate_with_effort(x, c, EvalEffort::default())
        }
        fn evaluate_with_effort(
            &self,
            x: &[f64],
            _c: &PvtCorner,
            effort: EvalEffort,
        ) -> Result<Vec<f64>, EnvError> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            assert!(effort.attempt >= self.succeed_at, "injected worker panic");
            Ok(vec![x[0] + x[1], x[0] * x[1]])
        }
    }

    #[test]
    fn panicking_evaluator_is_caught_and_typed() {
        let mut p = toy_problem();
        p.evaluator = Arc::new(PanickyUntil::new(usize::MAX));
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert!(!e.feasible);
        assert_eq!(e.failure, Some(FailureKind::WorkerPanic));
        assert_eq!(e.sim_cost, 3, "the full ladder ran before giving up");
    }

    #[test]
    fn panic_recovers_within_the_ladder() {
        let mut p = toy_problem();
        p.evaluator = Arc::new(PanickyUntil::new(1));
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert!(e.feasible, "second attempt succeeds");
        assert_eq!(e.sim_cost, 2);
        assert!(e.recovered());
        // A recovered panic never quarantines the job.
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(e.sim_cost, 2);
    }

    #[test]
    fn repeated_panics_quarantine_the_job() {
        let mut p = toy_problem();
        let evaluator = Arc::new(PanickyUntil::new(usize::MAX));
        p.evaluator = evaluator.clone();
        let first = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(first.failure, Some(FailureKind::WorkerPanic));
        assert_eq!(first.sim_cost, 3);
        let calls_after_first = evaluator.calls.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(calls_after_first, 3);
        // Second request for the same job short-circuits at unit cost
        // without touching the evaluator again.
        let second = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(second.failure, Some(FailureKind::WorkerPanic));
        assert_eq!(second.sim_cost, 1);
        assert_eq!(evaluator.calls.load(std::sync::atomic::Ordering::Relaxed), calls_after_first);
        // A different corner (or point) is a different job.
        let other_point = p.evaluate_normalized(&[0.2, 0.8], 0);
        assert!(evaluator.calls.load(std::sync::atomic::Ordering::Relaxed) > calls_after_first);
        assert_eq!(other_point.failure, Some(FailureKind::WorkerPanic));
    }

    #[test]
    fn journal_replays_without_touching_the_evaluator() {
        use crate::journal::{Journal, JournalMeta};
        let dir = std::env::temp_dir();
        let path = dir.join(format!("asdex-problem-journal-{}.log", std::process::id()));

        let journal = Journal::create(&path, JournalMeta::new().with("problem", "toy"), 1).unwrap();
        let p = toy_problem().with_journal(journal);
        let points = [[0.8, 0.8], [0.1, 0.1], [0.8, 0.8], [0.555, 0.0]];
        let original: Vec<Evaluation> =
            points.iter().map(|u| p.evaluate_normalized(u, 0)).collect();
        if let Some(j) = p.journal_handle() {
            j.lock().unwrap().checkpoint().unwrap();
        }
        drop(p);

        // Resume with an evaluator that would fail every request: replay
        // must serve all four outcomes and never call it.
        let journal = Journal::resume(&path, 1).unwrap();
        let mut p2 = toy_problem();
        let evaluator = Arc::new(PanickyUntil::new(usize::MAX));
        p2.evaluator = evaluator.clone();
        let p2 = p2.with_journal(journal);
        let resumed: Vec<Evaluation> =
            points.iter().map(|u| p2.evaluate_normalized(u, 0)).collect();
        assert_eq!(resumed, original, "replayed outcomes are bitwise identical");
        assert_eq!(evaluator.calls.load(std::sync::atomic::Ordering::Relaxed), 0);
        let handle = p2.journal_handle().unwrap();
        let j = handle.lock().unwrap();
        assert_eq!(j.replayed(), 4);
        assert_eq!(j.unconsumed(), 0);
        drop(j);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_record_tracks_retries_and_recoveries() {
        use crate::stats::{EvalStats, FailureKind};
        let p = toy_problem();
        let mut stats = EvalStats::new();
        stats.record(&p.evaluate_normalized(&[0.8, 0.8], 0));
        assert_eq!(stats.sims, 1);
        assert_eq!(stats.total_failures(), 0);
        let mut nan_p = toy_problem();
        nan_p.evaluator = Arc::new(NanEvaluator::new());
        stats.record(&nan_p.evaluate_normalized(&[0.5, 0.5], 0));
        assert_eq!(stats.sims, 2);
        assert_eq!(stats.failures_of(FailureKind::NonFinite), 1);
    }
}
