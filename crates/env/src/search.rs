//! The common search-agent interface every ASDEX agent implements.
//!
//! The paper's experiments (Tables I–V) all run the same protocol: an
//! agent gets a [`SizingProblem`] and a simulation budget, and reports how
//! many SPICE calls it spent before finding a consistent assignment. This
//! module pins that protocol down so the trust-region agent and every
//! baseline are measured identically.

use crate::health::HealthStats;
use crate::problem::SizingProblem;
use crate::stats::EvalStats;

/// Simulation budget for one search run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of simulator invocations (the paper's 10k-step cap
    /// for Table I).
    pub max_sims: usize,
}

impl SearchBudget {
    /// Creates a budget.
    pub fn new(max_sims: usize) -> Self {
        SearchBudget { max_sims }
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget { max_sims: 10_000 }
    }
}

/// Outcome of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// `true` when a point satisfying every spec (at every corner the
    /// search was asked to cover) was found within budget.
    pub success: bool,
    /// Simulator invocations spent. On success this is the paper's
    /// "iterations" metric; on failure it equals the budget.
    pub simulations: usize,
    /// Best point found (normalized coordinates).
    pub best_point: Vec<f64>,
    /// Value of the best point (0 ⇔ feasible).
    pub best_value: f64,
    /// Measurements of the best point, when its simulation succeeded.
    pub best_measurements: Option<Vec<f64>>,
    /// Evaluation telemetry: simulator calls, failures by kind, retry and
    /// recovery counts.
    pub stats: EvalStats,
    /// Self-healing telemetry: rollbacks, clipped/skipped updates,
    /// trust-region re-seeds, surrogate fallbacks.
    pub health: HealthStats,
}

impl SearchOutcome {
    /// A failure outcome that exhausted the budget.
    pub fn exhausted(budget: SearchBudget, best_point: Vec<f64>, best_value: f64) -> Self {
        SearchOutcome {
            success: false,
            simulations: budget.max_sims,
            best_point,
            best_value,
            best_measurements: None,
            stats: EvalStats::new(),
            health: HealthStats::new(),
        }
    }

    /// The same outcome with telemetry attached.
    pub fn with_stats(mut self, stats: EvalStats) -> Self {
        self.stats = stats;
        self
    }

    /// The same outcome with self-healing telemetry attached.
    pub fn with_health(mut self, health: HealthStats) -> Self {
        self.health = health;
        self
    }
}

/// A search agent: consumes a problem and a budget, returns an outcome.
///
/// Implementations must be deterministic given `seed`.
pub trait Searcher {
    /// Short agent name for report tables (`"random"`, `"ppo"`, `"trm"`).
    fn name(&self) -> &str;

    /// Runs one search on the problem's **first corner** (single-condition
    /// protocol, as in Table I). Multi-corner strategies are exercised
    /// through their own APIs.
    fn search(&mut self, problem: &SizingProblem, budget: SearchBudget, seed: u64) -> SearchOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_cap() {
        assert_eq!(SearchBudget::default().max_sims, 10_000);
    }

    #[test]
    fn exhausted_outcome() {
        let o = SearchOutcome::exhausted(SearchBudget::new(100), vec![0.5], -1.0);
        assert!(!o.success);
        assert_eq!(o.simulations, 100);
        assert_eq!(o.best_value, -1.0);
        assert_eq!(o.health.total(), 0);
    }
}
