//! Error type for sizing environments.

use asdex_spice::SpiceError;
use std::error::Error;
use std::fmt;

/// Errors produced while defining or evaluating a sizing problem.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvError {
    /// The underlying circuit simulation failed (non-convergence, singular
    /// system). Sizing agents typically treat this as an infeasible point
    /// rather than aborting the search.
    Simulation(SpiceError),
    /// A parameter vector had the wrong dimension for the design space.
    DimensionMismatch {
        /// Expected number of parameters.
        expected: usize,
        /// Provided number.
        actual: usize,
    },
    /// A design-space axis was defined with no grid points or a bad range.
    InvalidSpace {
        /// Human-readable description.
        reason: String,
    },
    /// A problem was configured inconsistently (no corners, no specs, …).
    InvalidProblem {
        /// Human-readable description.
        reason: String,
    },
    /// A fault injected by a chaos-testing wrapper (see
    /// [`crate::fault::FaultInjectingEvaluator`]). Never produced by real
    /// simulations.
    Injected {
        /// Which fault mode fired (`"no-convergence"`, …).
        mode: &'static str,
    },
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::Simulation(e) => write!(f, "simulation failed: {e}"),
            EnvError::DimensionMismatch { expected, actual } => {
                write!(f, "parameter vector has length {actual}, expected {expected}")
            }
            EnvError::InvalidSpace { reason } => write!(f, "invalid design space: {reason}"),
            EnvError::InvalidProblem { reason } => write!(f, "invalid problem: {reason}"),
            EnvError::Injected { mode } => write!(f, "injected fault: {mode}"),
        }
    }
}

impl Error for EnvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnvError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for EnvError {
    fn from(e: SpiceError) -> Self {
        EnvError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EnvError::DimensionMismatch { expected: 3, actual: 2 };
        assert!(e.to_string().contains("expected 3"));
        let e: EnvError = SpiceError::NoConvergence { analysis: "op", iterations: 10 }.into();
        assert!(Error::source(&e).is_some());
    }
}
