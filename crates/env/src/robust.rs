//! The retry/recovery ladder: escalating solver effort for flaky points.
//!
//! Analog simulators fail routinely — a bias point that does not converge
//! at default Newton–Raphson settings often converges with more
//! iterations, tighter damping, or a perturbed initial guess. The ladder
//! encodes that escalation: attempt 0 runs at stock options, each further
//! attempt raises [`EvalEffort`] one notch, and every attempt is charged
//! against the simulation budget so accounting stays exact.

use crate::corner::PvtCorner;
use crate::error::EnvError;
use crate::problem::Evaluator;
use crate::stats::FailureKind;
use asdex_spice::analysis::OpOptions;

/// Solver-effort level for one evaluation attempt. Attempt 0 is the stock
/// configuration; higher attempts escalate iterations, damping, and the
/// initial guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalEffort {
    /// Zero-based attempt index within the retry ladder.
    pub attempt: usize,
}

impl EvalEffort {
    /// Effort for the given attempt index.
    pub fn attempt(attempt: usize) -> Self {
        EvalEffort { attempt }
    }

    /// Whether this is the first (stock-options) attempt.
    pub fn is_first(&self) -> bool {
        self.attempt == 0
    }

    /// Escalates Newton–Raphson options in place: each rung doubles the
    /// iteration allowance and halves the per-iteration step clamp
    /// (tighter damping trades speed for robustness). The solve watchdog
    /// budget scales along, so an escalated attempt that legitimately
    /// needs more iterations is not cut off by a stock deadline.
    pub fn apply(&self, opts: &mut OpOptions) {
        opts.max_iter *= 1 + self.attempt;
        opts.max_step /= (1 + self.attempt) as f64;
        opts.budget = opts.budget.escalated(self.attempt);
    }

    /// A deterministic perturbed initial guess for an MNA system of
    /// dimension `dim`, or `None` on the first attempt (engine default
    /// start). The perturbation is a small per-unknown offset that varies
    /// with the attempt index, nudging Newton out of a basin that traps
    /// the default start.
    pub fn initial_guess(&self, dim: usize) -> Option<Vec<f64>> {
        if self.attempt == 0 {
            return None;
        }
        let mut state = 0x9E37_79B9u64 ^ (self.attempt as u64);
        Some(
            (0..dim)
                .map(|_| {
                    let z = asdex_rng::splitmix64(&mut state);
                    // ±0.05 V per rung, deterministic in (attempt, index).
                    let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    (u - 0.5) * 0.1 * self.attempt as f64
                })
                .collect(),
        )
    }
}

/// How many escalated attempts the ladder may spend on a retryable
/// failure before declaring the point infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts beyond the first (0 disables the ladder).
    pub max_retries: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0 }
    }

    /// A policy with the given number of extra attempts.
    pub fn with_retries(max_retries: usize) -> Self {
        RetryPolicy { max_retries }
    }

    /// Total attempts allowed per point (first try + retries).
    pub fn max_attempts(&self) -> usize {
        1 + self.max_retries
    }

    /// Whether a failure of `kind` at zero-based `attempt` should be
    /// retried under this policy.
    pub fn should_retry(&self, kind: FailureKind, attempt: usize) -> bool {
        kind.is_retryable() && attempt + 1 < self.max_attempts()
    }
}

/// An [`Evaluator`] wrapper that runs the retry ladder *inside* a single
/// `evaluate` call: on a retryable failure it re-invokes the inner
/// evaluator with escalated [`EvalEffort`] until the policy's budget is
/// spent.
///
/// [`crate::SizingProblem::evaluate_with_budget`] runs the same ladder
/// with per-attempt budget accounting; this wrapper is for callers that
/// use the raw [`Evaluator`] interface (custom harnesses, one-off probes)
/// and want recovery without telemetry.
pub struct RobustEvaluator<E> {
    inner: E,
    policy: RetryPolicy,
}

impl<E: Evaluator> RobustEvaluator<E> {
    /// Wraps `inner` with the default policy.
    pub fn new(inner: E) -> Self {
        RobustEvaluator { inner, policy: RetryPolicy::default() }
    }

    /// Wraps `inner` with an explicit policy.
    pub fn with_policy(inner: E, policy: RetryPolicy) -> Self {
        RobustEvaluator { inner, policy }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Evaluator> Evaluator for RobustEvaluator<E> {
    fn measurement_names(&self) -> &[String] {
        self.inner.measurement_names()
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        let mut attempt = 0;
        loop {
            match self.inner.evaluate_with_effort(x, corner, EvalEffort::attempt(attempt)) {
                Ok(meas) => return Ok(meas),
                Err(e) => {
                    let kind = FailureKind::classify(&e);
                    if !self.policy.should_retry(kind, attempt) {
                        return Err(e);
                    }
                    attempt += 1;
                }
            }
        }
    }

    fn evaluate_with_effort(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        self.inner.evaluate_with_effort(x, corner, effort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_spice::SpiceError;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Fails with NoConvergence until `succeed_at` attempts have been made
    /// for the current point.
    struct FlakyEvaluator {
        names: Vec<String>,
        succeed_at: usize,
        calls: AtomicUsize,
    }

    impl FlakyEvaluator {
        fn new(succeed_at: usize) -> Self {
            FlakyEvaluator {
                names: vec!["m".into()],
                succeed_at,
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl Evaluator for FlakyEvaluator {
        fn measurement_names(&self) -> &[String] {
            &self.names
        }
        fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
            self.evaluate_with_effort(x, corner, EvalEffort::default())
        }
        fn evaluate_with_effort(
            &self,
            x: &[f64],
            _corner: &PvtCorner,
            effort: EvalEffort,
        ) -> Result<Vec<f64>, EnvError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if effort.attempt < self.succeed_at {
                Err(SpiceError::NoConvergence { analysis: "op", iterations: 150 }.into())
            } else {
                Ok(vec![x[0]])
            }
        }
    }

    #[test]
    fn effort_escalates_solver_options() {
        let base = OpOptions::default();
        let mut opts = base;
        EvalEffort::attempt(0).apply(&mut opts);
        assert_eq!(opts.max_iter, base.max_iter);
        assert_eq!(opts.max_step, base.max_step);
        let mut opts = base;
        EvalEffort::attempt(2).apply(&mut opts);
        assert_eq!(opts.max_iter, 3 * base.max_iter);
        assert!((opts.max_step - base.max_step / 3.0).abs() < 1e-12);
        assert_eq!(
            opts.budget.max_newton_iters_total,
            3 * base.budget.max_newton_iters_total,
            "watchdog budget escalates with the ladder"
        );
    }

    #[test]
    fn initial_guess_deterministic_and_small() {
        assert!(EvalEffort::attempt(0).initial_guess(5).is_none());
        let a = EvalEffort::attempt(1).initial_guess(5).unwrap();
        let b = EvalEffort::attempt(1).initial_guess(5).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 0.05 + 1e-12));
        let c = EvalEffort::attempt(2).initial_guess(5).unwrap();
        assert_ne!(a, c, "each rung perturbs differently");
    }

    #[test]
    fn robust_evaluator_recovers_within_budget() {
        let e = RobustEvaluator::new(FlakyEvaluator::new(2));
        let m = e.evaluate(&[1.5], &PvtCorner::nominal()).expect("recovers on attempt 2");
        assert_eq!(m, vec![1.5]);
        assert_eq!(e.inner().calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn robust_evaluator_gives_up_past_budget() {
        let e = RobustEvaluator::with_policy(FlakyEvaluator::new(5), RetryPolicy::with_retries(2));
        let err = e.evaluate(&[1.5], &PvtCorner::nominal()).unwrap_err();
        assert!(matches!(err, EnvError::Simulation(SpiceError::NoConvergence { .. })));
        assert_eq!(e.inner().calls.load(Ordering::Relaxed), 3, "1 try + 2 retries");
    }

    #[test]
    fn non_retryable_failures_fail_fast() {
        struct NanEvaluator(Vec<String>);
        impl Evaluator for NanEvaluator {
            fn measurement_names(&self) -> &[String] {
                &self.0
            }
            fn evaluate(&self, _x: &[f64], _c: &PvtCorner) -> Result<Vec<f64>, EnvError> {
                Err(SpiceError::NonFinite { what: "m".into() }.into())
            }
        }
        let e = RobustEvaluator::new(NanEvaluator(vec!["m".into()]));
        let err = e.evaluate(&[0.0], &PvtCorner::nominal()).unwrap_err();
        assert_eq!(FailureKind::classify(&err), FailureKind::NonFinite);
    }
}
