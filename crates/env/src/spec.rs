//! Specifications — the constraints `C_i = (t_i, r_i)` of the paper's
//! CSP formulation (eq. 2).


/// Direction of a specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecKind {
    /// Measurement must be at least the target (e.g. gain ≥ 60 dB).
    AtLeast,
    /// Measurement must be at most the target (e.g. power ≤ 1 mW).
    AtMost,
}

/// One specification on one measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Index of the measurement this spec constrains (into the problem's
    /// measurement vector).
    pub measurement: usize,
    /// Human-readable measurement name (for reports).
    pub name: String,
    /// Constraint direction.
    pub kind: SpecKind,
    /// Target value.
    pub target: f64,
}

impl Spec {
    /// Creates a `measurement ≥ target` spec.
    pub fn at_least(measurement: usize, name: &str, target: f64) -> Self {
        Spec { measurement, name: name.to_string(), kind: SpecKind::AtLeast, target }
    }

    /// Creates a `measurement ≤ target` spec.
    pub fn at_most(measurement: usize, name: &str, target: f64) -> Self {
        Spec { measurement, name: name.to_string(), kind: SpecKind::AtMost, target }
    }

    /// `true` when measurement `m` satisfies this spec.
    pub fn satisfied_by(&self, m: f64) -> bool {
        match self.kind {
            SpecKind::AtLeast => m >= self.target,
            SpecKind::AtMost => m <= self.target,
        }
    }

    /// Signed slack: positive when satisfied, negative when violated, in
    /// the measurement's own units.
    pub fn slack(&self, m: f64) -> f64 {
        match self.kind {
            SpecKind::AtLeast => m - self.target,
            SpecKind::AtMost => self.target - m,
        }
    }
}

/// A set of specifications evaluated against one measurement vector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecSet {
    specs: Vec<Spec>,
}

impl SpecSet {
    /// Creates a spec set.
    pub fn new(specs: Vec<Spec>) -> Self {
        SpecSet { specs }
    }

    /// The specs.
    pub fn specs(&self) -> &[Spec] {
        &self.specs
    }

    /// Number of specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the set is empty (trivially satisfied).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// `true` when every spec is satisfied by the measurement vector.
    ///
    /// # Panics
    ///
    /// Panics if a spec's measurement index is out of range.
    pub fn all_satisfied(&self, measurements: &[f64]) -> bool {
        self.specs.iter().all(|s| s.satisfied_by(measurements[s.measurement]))
    }

    /// Names of the specs violated by the measurement vector.
    pub fn violations(&self, measurements: &[f64]) -> Vec<&str> {
        self.specs
            .iter()
            .filter(|s| !s.satisfied_by(measurements[s.measurement]))
            .map(|s| s.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions() {
        let gain = Spec::at_least(0, "gain", 60.0);
        assert!(gain.satisfied_by(60.0));
        assert!(gain.satisfied_by(75.0));
        assert!(!gain.satisfied_by(59.9));
        let power = Spec::at_most(1, "power", 1e-3);
        assert!(power.satisfied_by(0.5e-3));
        assert!(!power.satisfied_by(2e-3));
    }

    #[test]
    fn slack_signs() {
        let gain = Spec::at_least(0, "gain", 60.0);
        assert_eq!(gain.slack(65.0), 5.0);
        assert_eq!(gain.slack(55.0), -5.0);
        let power = Spec::at_most(0, "power", 1.0);
        assert_eq!(power.slack(0.4), 0.6);
        assert!(power.slack(1.5) < 0.0);
    }

    #[test]
    fn set_checks_all() {
        let set = SpecSet::new(vec![Spec::at_least(0, "gain", 60.0), Spec::at_most(1, "power", 1.0)]);
        assert!(set.all_satisfied(&[62.0, 0.9]));
        assert!(!set.all_satisfied(&[62.0, 1.1]));
        assert_eq!(set.violations(&[50.0, 2.0]), vec!["gain", "power"]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn empty_set_trivially_satisfied() {
        let set = SpecSet::default();
        assert!(set.is_empty());
        assert!(set.all_satisfied(&[]));
    }
}
