//! Cross-campaign evaluation dedup: a shared single-flight result store.
//!
//! Concurrent sizing campaigns on the same benchmark frequently request
//! the same evaluation — duplicate submissions, mirrored seeds, or agents
//! converging on the same optimum. The journal already proved that an
//! evaluation's identity is exactly `(point-bits, corner, attempt-cap)`:
//! a result is a pure function of that key for a fixed problem. The
//! [`EvalStore`] is the serving-side payoff of those bitwise keys — a
//! process-wide map from key to [`Evaluation`] with **single-flight**
//! semantics:
//!
//! * the first caller to ask for a key becomes its *owner* and runs the
//!   evaluation,
//! * concurrent callers for the same key *wait* on the in-flight owner
//!   and receive a clone of the published result (a *hit*),
//! * an owner that abandons the evaluation — campaign cancellation,
//!   worker crash, evaluator panic unwinding through the batch pipeline —
//!   vacates the slot and wakes every waiter; one of them claims
//!   ownership and re-dispatches. Waiters never hang on a dead owner.
//!
//! # Determinism contract
//!
//! The store must be invisible in campaign outcomes: attaching it (or
//! racing any number of campaigns against it) never changes any
//! campaign's results versus running alone. That holds because only
//! *pure* results are published:
//!
//! * [`FailureKind::Cancelled`] placeholders are per-campaign drain
//!   artifacts, never published (mirroring the journal, which never
//!   records them),
//! * [`FailureKind::WorkerPanic`] results are never published: a
//!   quarantine short-circuit depends on the owning campaign's quarantine
//!   history, and excluding the whole kind keeps the publish rule
//!   state-free,
//! * everything else — successes, typed simulator failures, the retry
//!   ladder's terminal outcomes — is a pure function of the key and is
//!   shared bit for bit.
//!
//! Waiters fold a hit into their own stats/journal/quarantine exactly as
//! if they had computed it, so per-campaign telemetry and resume
//! behavior are unchanged; only wall-clock and simulator invocations
//! shrink. Callers sharing one store must agree on the problem identity
//! (benchmark, corner set, solver backend) — the serving scheduler keys
//! stores by that triple.

use crate::problem::Evaluation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Identity of one evaluation: the requested coordinates' IEEE-754 bits,
/// the corner index, and the admitted attempt cap — the same triple the
/// journal keys replay on.
pub type StoreKey = (Vec<u64>, usize, usize);

/// Builds the store key for a request.
pub fn store_key(u: &[f64], corner_idx: usize, cap: usize) -> StoreKey {
    (u.iter().map(|v| v.to_bits()).collect(), corner_idx, cap)
}

/// Default entry capacity: beyond this many live entries new keys bypass
/// the store (evaluated locally, not published) so memory stays bounded.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

enum Slot {
    /// An owner is computing this key; waiters sleep on the condvar.
    InFlight,
    /// Published result, cloned out to every subsequent caller.
    Done(Evaluation),
}

/// Counters describing store effectiveness; see [`EvalStore::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStoreStats {
    /// Results served from the store (either already published or after
    /// waiting on an in-flight owner) — each hit is one avoided
    /// evaluation.
    pub hits: u64,
    /// Ownership claims: evaluations actually computed through the store.
    pub misses: u64,
    /// Owners that abandoned a key without publishing (cancellation,
    /// panic, unpublishable result); each abort woke the key's waiters.
    pub aborts: u64,
    /// Requests that skipped the store because it was at capacity.
    pub bypasses: u64,
    /// Live entries (in-flight + published).
    pub entries: u64,
}

/// A shared single-flight evaluation result store. Cheap to clone via
/// `Arc`; see the module docs for the contract.
pub struct EvalStore {
    slots: Mutex<HashMap<StoreKey, Slot>>,
    wake: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    aborts: AtomicU64,
    bypasses: AtomicU64,
}

impl std::fmt::Debug for EvalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("EvalStore")
            .field("capacity", &self.capacity)
            .field("stats", &s)
            .finish()
    }
}

impl Default for EvalStore {
    fn default() -> Self {
        EvalStore::with_capacity(DEFAULT_CAPACITY)
    }
}

/// Outcome of [`EvalStore::join`].
pub enum Join<'a> {
    /// The caller owns this key: evaluate, then
    /// [`OwnerGuard::publish`] (or drop the guard to vacate the slot and
    /// wake waiters).
    Owner(OwnerGuard<'a>),
    /// Another caller already published this key's result.
    Done(Evaluation),
    /// The store is at capacity: evaluate locally, nothing is shared.
    Bypass,
    /// The caller's own cancellation predicate fired while waiting.
    Cancelled,
}

impl EvalStore {
    /// A store admitting at most `capacity` live entries.
    pub fn with_capacity(capacity: usize) -> Self {
        EvalStore {
            slots: Mutex::new(HashMap::new()),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// A fresh store behind an `Arc`, ready to hand to several problems.
    pub fn shared() -> Arc<Self> {
        Arc::new(EvalStore::default())
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<StoreKey, Slot>> {
        // A poisoned map only means some owner panicked between claim and
        // publish; its guard's Drop already vacated the slot, so the map
        // itself is consistent and safe to keep using.
        self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Joins the single flight for `key`: returns ownership, a published
    /// result, a capacity bypass, or — when `cancelled()` reports true
    /// while waiting on an in-flight owner — [`Join::Cancelled`].
    ///
    /// Waiting is robust to owner death: a vacated slot wakes every
    /// waiter and the first to re-check claims ownership (re-dispatch),
    /// so no caller ever blocks on an owner that will never publish.
    pub fn join(&self, key: &StoreKey, cancelled: impl Fn() -> bool) -> Join<'_> {
        let mut slots = self.lock();
        loop {
            match slots.get(key) {
                Some(Slot::Done(e)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Join::Done(e.clone());
                }
                Some(Slot::InFlight) => {
                    if cancelled() {
                        return Join::Cancelled;
                    }
                    // Bounded wait: publish/abort notify immediately; the
                    // timeout only bounds how stale a missed cancellation
                    // check can get.
                    let (guard, _) = self
                        .wake
                        .wait_timeout(slots, Duration::from_millis(25))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    slots = guard;
                }
                None => {
                    if slots.len() >= self.capacity {
                        self.bypasses.fetch_add(1, Ordering::Relaxed);
                        return Join::Bypass;
                    }
                    slots.insert(key.clone(), Slot::InFlight);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Join::Owner(OwnerGuard { store: self, key: key.clone(), done: false });
                }
            }
        }
    }

    /// Current effectiveness counters (monotonic except `entries`).
    pub fn stats(&self) -> EvalStoreStats {
        let entries = self.lock().len() as u64;
        EvalStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            entries,
        }
    }

    fn publish(&self, key: &StoreKey, eval: Evaluation) {
        let mut slots = self.lock();
        slots.insert(key.clone(), Slot::Done(eval));
        drop(slots);
        self.wake.notify_all();
    }

    fn vacate(&self, key: &StoreKey) {
        let mut slots = self.lock();
        slots.remove(key);
        drop(slots);
        self.aborts.fetch_add(1, Ordering::Relaxed);
        self.wake.notify_all();
    }
}

/// Ownership of one in-flight key. Publish the computed result with
/// [`OwnerGuard::publish`]; dropping the guard without publishing (early
/// return, cancellation, panic unwind) vacates the slot and wakes every
/// waiter so one of them re-dispatches — the crash-safety half of the
/// single-flight contract.
pub struct OwnerGuard<'a> {
    store: &'a EvalStore,
    key: StoreKey,
    done: bool,
}

impl OwnerGuard<'_> {
    /// Publishes `eval` for this key and wakes every waiter.
    pub fn publish(mut self, eval: Evaluation) {
        self.done = true;
        self.store.publish(&self.key, eval);
    }
}

impl Drop for OwnerGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.store.vacate(&self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::FailureKind;

    fn eval(v: f64) -> Evaluation {
        Evaluation {
            x_norm: vec![v],
            measurements: Some(vec![v]),
            value: v,
            feasible: true,
            failure: None,
            sim_cost: 1,
        }
    }

    fn key(v: f64) -> StoreKey {
        store_key(&[v], 0, 3)
    }

    #[test]
    fn first_caller_owns_then_others_hit() {
        let store = EvalStore::default();
        let k = key(0.5);
        match store.join(&k, || false) {
            Join::Owner(g) => g.publish(eval(0.5)),
            _ => panic!("first join must own"),
        }
        match store.join(&k, || false) {
            Join::Done(e) => assert_eq!(e, eval(0.5)),
            _ => panic!("second join must hit"),
        }
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn waiters_block_until_publish_and_get_the_result() {
        let store = Arc::new(EvalStore::default());
        let k = key(0.25);
        let Join::Owner(guard) = store.join(&k, || false) else { panic!("own") };
        let waiter = {
            let store = store.clone();
            let k = k.clone();
            std::thread::spawn(move || match store.join(&k, || false) {
                Join::Done(e) => e,
                _ => panic!("waiter must receive the published result"),
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        guard.publish(eval(0.25));
        assert_eq!(waiter.join().unwrap(), eval(0.25));
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn dropped_owner_wakes_waiters_who_redispatch() {
        let store = Arc::new(EvalStore::default());
        let k = key(0.75);
        let guard = match store.join(&k, || false) {
            Join::Owner(g) => g,
            _ => panic!("own"),
        };
        let waiter = {
            let store = store.clone();
            let k = k.clone();
            std::thread::spawn(move || match store.join(&k, || false) {
                // The vacated slot promotes the waiter to owner: the
                // re-dispatch path.
                Join::Owner(g) => g.publish(eval(0.75)),
                Join::Done(_) => panic!("nothing was published"),
                _ => panic!("waiter must re-dispatch"),
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(guard); // owner dies without publishing
        waiter.join().unwrap();
        let s = store.stats();
        assert_eq!(s.aborts, 1);
        assert_eq!(s.misses, 2, "both the dead owner and the waiter claimed");
        match store.join(&k, || false) {
            Join::Done(e) => assert_eq!(e, eval(0.75)),
            _ => panic!("the waiter's publish must be visible"),
        };
    }

    #[test]
    fn cancelled_waiter_returns_instead_of_hanging() {
        let store = Arc::new(EvalStore::default());
        let k = key(0.1);
        let _guard = match store.join(&k, || false) {
            Join::Owner(g) => g,
            _ => panic!("own"),
        };
        // The owner never publishes; a cancelled waiter must still return.
        let start = std::time::Instant::now();
        match store.join(&k, || true) {
            Join::Cancelled => {}
            _ => panic!("cancelled waiter must get the typed escape"),
        }
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn capacity_overflow_bypasses_without_blocking() {
        let store = EvalStore::with_capacity(1);
        match store.join(&key(0.1), || false) {
            Join::Owner(g) => g.publish(eval(0.1)),
            _ => panic!("own"),
        }
        match store.join(&key(0.2), || false) {
            Join::Bypass => {}
            _ => panic!("full store must bypass"),
        }
        let s = store.stats();
        assert_eq!((s.bypasses, s.entries), (1, 1));
    }

    #[test]
    fn keys_distinguish_point_corner_and_cap() {
        let a = store_key(&[0.5], 0, 3);
        let b = store_key(&[0.5], 1, 3);
        let c = store_key(&[0.5], 0, 2);
        let d = store_key(&[0.5 + 1e-17], 0, 3); // rounds back to exactly 0.5
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, d, "bitwise-equal floats share a key");
        // -0.0 and 0.0 compare equal but are different evaluations bitwise.
        assert_ne!(store_key(&[0.0], 0, 3), store_key(&[-0.0], 0, 3));
    }

    #[test]
    fn publish_failure_results_round_trip() {
        let store = EvalStore::default();
        let k = key(0.9);
        let failed = Evaluation {
            x_norm: vec![0.9],
            measurements: None,
            value: -10.0,
            feasible: false,
            failure: Some(FailureKind::NoConvergence),
            sim_cost: 3,
        };
        match store.join(&k, || false) {
            Join::Owner(g) => g.publish(failed.clone()),
            _ => panic!("own"),
        }
        match store.join(&k, || false) {
            Join::Done(e) => assert_eq!(e, failed),
            _ => panic!("hit"),
        };
    }
}
