//! Netlist-defined sizing benches: the deck → [`SizingProblem`] compiler.
//!
//! Every built-in ASDEX bench is a hard-coded Rust constructor, so
//! scenario diversity is gated on recompiling. This module removes that
//! gate: a SPICE deck plus a **sizing stanza** compiles into a complete,
//! first-class sizing problem — space, specs, figure of merit, PVT
//! corners, and an MNA-backed evaluator — equivalent *by construction* to
//! the built-in benches (same engine pool, same simulation cache, same
//! measurement pipeline, bit for bit).
//!
//! # The sizing stanza
//!
//! ```text
//! .process 45                            ; 45 | 22 | n6 | n5
//! .corners nominal                       ; nominal | signoff5
//! .sizeparam w_in 1e-6 100e-6 STEP 100   ; geometric grid (default)
//! .sizeparam rz  1k 100k STEP 20 LIN     ; linear grid
//! .sizeparam cz  VALUES 1e-12,2e-12      ; explicit value menu
//! .goal gain_db >= 65                    ; maps a measurement to a Spec
//! .goal power_w <= 3e-4
//! .fom ugf_hz 2                          ; weight the objective (optional)
//! .param vcm=0.55*{vdd}                  ; derived constant (parser-level)
//! VIP inp 0 DC {vcm} AC 1
//! M1 x1 fb tail 0 nch W={w_in} L=1.8e-7
//! ```
//!
//! `{NAME}` references are substituted **textually** at stamp time: design
//! axes and the built-in `{vdd}` binding (the process supply scaled by the
//! corner) are replaced by this compiler, `.param` constants by the
//! parser. Substituted values are formatted with `{:e}`, which round-trips
//! `f64`s exactly through [`asdex_spice::units::parse_value`], so a
//! rendered deck stamps bit-identically to a hand-built circuit.
//!
//! # Measurements
//!
//! Every netlist bench measures the same five-element vector as the
//! built-in amplifier benches, in this order: `gain_db`, `ugf_hz`,
//! `pm_deg`, `power_w`, `area_m2`. The deck must define an `out` node (the
//! AC response probe) and a `VDD` supply source (the static-power branch).
//!
//! # Determinism contract
//!
//! Node and element order follow deck card order, the parser appends cards
//! into a model-seeded circuit deterministically, and the evaluator reuses
//! the shared [`EnginePool`]/[`SimCache`] machinery, so results are
//! deterministic in `(deck, x, corner, effort)` and independent of thread
//! or worker count. The FNV-1a [`netlist_digest`] over the deck source is
//! the identity used by journals, manifests, and worker processes to
//! guarantee a resumed campaign re-compiles the identical bench.

use crate::circuits::pool::{EnginePool, EngineSlot, SimCache};
use crate::corner::{PvtCorner, PvtSet};
use crate::error::EnvError;
use crate::problem::{Evaluator, SizingProblem};
use crate::robust::EvalEffort;
use crate::space::{DesignSpace, Param};
use crate::spec::{Spec, SpecSet};
use crate::value::ValueFn;
use asdex_spice::analysis::{ac_analysis_with_op_in, Engine, OpOptions, Sweep};
use asdex_spice::measure::{checked_frequency_response, ensure_finite};
use asdex_spice::parser::{parse_netlist_into, read_deck_source};
use asdex_spice::process::ProcessNode;
use asdex_spice::units::parse_value;
use asdex_spice::Circuit;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// The measurement vector every netlist bench produces, in order.
pub const MEASUREMENT_NAMES: [&str; 5] = ["gain_db", "ugf_hz", "pm_deg", "power_w", "area_m2"];

/// Short spec aliases parallel to [`MEASUREMENT_NAMES`] (the names the
/// built-in benches use for the same quantities).
const SPEC_NAMES: [&str; 5] = ["gain", "ugf", "pm", "power", "area"];

/// Default grid size for a `.sizeparam` without an explicit `STEP`.
const DEFAULT_GRID_POINTS: usize = 64;

/// FNV-1a hash of a deck source — the bench identity recorded in journal
/// metadata, the serve write-ahead manifest, and worker handshakes, so
/// that resume and boot recovery re-compile the identical bench.
pub fn netlist_digest(source: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in source.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A typed error from compiling a sizing deck. `line == 0` means the
/// error is not tied to a specific deck line.
#[derive(Debug, Clone, PartialEq)]
pub struct NetbenchError {
    /// 1-based deck line of the offending card (0 when file-level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for NetbenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "netlist bench: {}", self.message)
        } else {
            write!(f, "netlist bench: line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for NetbenchError {}

impl From<asdex_spice::ParseNetlistError> for NetbenchError {
    fn from(e: asdex_spice::ParseNetlistError) -> Self {
        NetbenchError { line: e.line, message: e.message }
    }
}

fn berr(line: usize, message: impl Into<String>) -> NetbenchError {
    NetbenchError { line, message: message.into() }
}

/// A compiled netlist bench: the deck template plus its sizing stanza.
#[derive(Debug, Clone)]
pub struct NetlistBench {
    name: String,
    source: String,
    digest: u64,
    node: ProcessNode,
    corners: PvtSet,
    axes: Vec<Param>,
    specs: SpecSet,
    fom: Option<(usize, f64)>,
}

impl NetlistBench {
    /// Compiles a deck source (title line first, `.end` last) into a
    /// bench.
    ///
    /// # Errors
    ///
    /// [`NetbenchError`] on a malformed sizing stanza, a missing
    /// `.process`, no axes or goals, or a template that fails to render,
    /// parse, and compile at the nominal corner — everything a serving
    /// daemon must reject at admission time.
    pub fn compile(source: &str) -> Result<Self, NetbenchError> {
        let digest = netlist_digest(source);
        let name = slug(source.lines().next().unwrap_or(""));
        let mut node: Option<(usize, ProcessNode)> = None;
        let mut corners: Option<PvtSet> = None;
        let mut axes: Vec<Param> = Vec::new();
        let mut goals: Vec<Spec> = Vec::new();
        let mut fom: Option<(usize, f64)> = None;

        for (line, card) in stanza_cards(source) {
            let tokens: Vec<&str> = card.split_whitespace().collect();
            match tokens[0].to_ascii_lowercase().as_str() {
                ".process" => {
                    let arg = tokens.get(1).copied().ok_or_else(|| {
                        berr(line, ".process needs a node: 45 | 22 | n6 | n5")
                    })?;
                    let picked = match arg.to_ascii_lowercase().as_str() {
                        "45" | "bsim45" => ProcessNode::bsim45(),
                        "22" | "bsim22" => ProcessNode::bsim22(),
                        "n6" => ProcessNode::n6(),
                        "n5" => ProcessNode::n5(),
                        other => {
                            return Err(berr(line, format!("unknown process node {other:?}")))
                        }
                    };
                    if node.is_some() {
                        return Err(berr(line, "duplicate .process card"));
                    }
                    node = Some((line, picked));
                }
                ".corners" => {
                    let arg = tokens
                        .get(1)
                        .copied()
                        .ok_or_else(|| berr(line, ".corners needs nominal | signoff5"))?;
                    let set = match arg.to_ascii_lowercase().as_str() {
                        "nominal" => PvtSet::nominal_only(),
                        "signoff5" => PvtSet::signoff5(),
                        other => return Err(berr(line, format!("unknown corner set {other:?}"))),
                    };
                    corners = Some(set);
                }
                ".sizeparam" => {
                    axes.push(parse_sizeparam(line, &tokens, &axes)?);
                }
                ".goal" => {
                    goals.push(parse_goal(line, &tokens)?);
                }
                ".fom" => {
                    let meas = tokens
                        .get(1)
                        .copied()
                        .ok_or_else(|| berr(line, ".fom needs a measurement name"))?;
                    let idx = measurement_index(line, meas)?;
                    let weight = match tokens.get(2) {
                        Some(tok) => parse_value(tok)
                            .filter(|w| w.is_finite() && *w > 0.0)
                            .ok_or_else(|| {
                                berr(line, format!("cannot parse .fom weight {tok:?}"))
                            })?,
                        None => 2.0,
                    };
                    fom = Some((idx, weight));
                }
                _ => {}
            }
        }

        let (_, node) = node.ok_or_else(|| {
            berr(0, "sizing deck needs a .process card (45 | 22 | n6 | n5)")
        })?;
        if axes.is_empty() {
            return Err(berr(0, "sizing deck declares no .sizeparam axes"));
        }
        if goals.is_empty() {
            return Err(berr(0, "sizing deck declares no .goal cards"));
        }

        let bench = NetlistBench {
            name,
            source: source.to_string(),
            digest,
            node,
            corners: corners.unwrap_or_else(PvtSet::nominal_only),
            axes,
            specs: SpecSet::new(goals),
            fom,
        };
        bench.validate_template()?;
        Ok(bench)
    }

    /// Loads and compiles a deck from disk, expanding `.include` lines
    /// (see [`read_deck_source`]).
    ///
    /// # Errors
    ///
    /// Typed errors from include resolution or from [`Self::compile`].
    pub fn load(path: &Path) -> Result<Self, NetbenchError> {
        let source = read_deck_source(path)?;
        Self::compile(&source)
    }

    /// Bench name, slugged from the deck title line.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The post-include deck source this bench was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// FNV-1a digest of the deck source (the resume/recovery identity).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The process node selected by `.process`.
    pub fn process(&self) -> &ProcessNode {
        &self.node
    }

    /// The PVT corners selected by `.corners` (nominal by default).
    pub fn corners(&self) -> &PvtSet {
        &self.corners
    }

    /// Design axes in declaration order.
    pub fn axes(&self) -> &[Param] {
        &self.axes
    }

    /// The figure-of-merit measurement index and weight, when `.fom` was
    /// declared.
    pub fn fom(&self) -> Option<(usize, f64)> {
        self.fom
    }

    /// Errors unless the bench digest matches `want` — the typed guard
    /// resume paths use instead of silently diverging on an edited deck.
    ///
    /// # Errors
    ///
    /// [`NetbenchError`] naming both digests on mismatch.
    pub fn expect_digest(&self, want: u64) -> Result<(), NetbenchError> {
        if self.digest != want {
            return Err(berr(
                0,
                format!(
                    "netlist digest mismatch: deck compiles to {:016x}, campaign was admitted \
                     with {:016x} (the deck was edited since admission)",
                    self.digest, want
                ),
            ));
        }
        Ok(())
    }

    /// Builds the sizing problem with the deck's own `.corners` set.
    ///
    /// # Errors
    ///
    /// Propagates design-space or problem-validation errors.
    pub fn problem(&self) -> Result<SizingProblem, EnvError> {
        self.problem_with(self.corners.clone())
    }

    /// Builds the sizing problem with an explicit corner set (campaign
    /// submissions carry their own corners field, like the built-ins).
    ///
    /// # Errors
    ///
    /// Propagates design-space or problem-validation errors.
    pub fn problem_with(&self, corners: PvtSet) -> Result<SizingProblem, EnvError> {
        let space = DesignSpace::new(self.axes.clone())?;
        let eval = NetlistEvaluator::new(self.clone());
        let mut problem = SizingProblem::new(
            &format!("netlist-{}", self.name),
            space,
            Arc::new(eval),
            self.specs.clone(),
            corners,
        )?;
        if let Some((meas_idx, weight)) = self.fom {
            let weights: Vec<f64> = self
                .specs
                .specs()
                .iter()
                .map(|s| if s.measurement == meas_idx { weight } else { 1.0 })
                .collect();
            problem.value_fn = ValueFn::with_weights(weights);
        }
        Ok(problem)
    }

    /// Renders the deck for physical parameters `x` at `corner`:
    /// substitutes each `{axis}` reference and the built-in `{vdd}`
    /// binding, leaving `.param`-defined references for the parser.
    fn render(&self, x: &[f64], corner: &PvtCorner) -> String {
        let vdd_v = self.node.vdd * corner.vdd_scale;
        let mut table: Vec<(&str, String)> = Vec::with_capacity(x.len() + 1);
        for (param, value) in self.axes.iter().zip(x) {
            table.push((param.name.as_str(), format!("{value:e}")));
        }
        table.push(("vdd", format!("{vdd_v:e}")));

        let mut out = String::with_capacity(self.source.len());
        let mut rest = self.source.as_str();
        while let Some(open) = rest.find('{') {
            let after = &rest[open + 1..];
            match after.find('}') {
                Some(close) => {
                    let name = &after[..close];
                    match table.iter().find(|(n, _)| *n == name) {
                        Some((_, value)) => {
                            out.push_str(&rest[..open]);
                            out.push_str(value);
                            rest = &after[close + 1..];
                        }
                        None => {
                            // Not ours (a `.param` constant): copy through.
                            out.push_str(&rest[..open + 1]);
                            rest = after;
                        }
                    }
                }
                None => break,
            }
        }
        out.push_str(rest);
        out
    }

    /// Seeds a circuit with the corner's models and temperature, then
    /// parses the rendered deck into it. Node and element order follow
    /// deck card order, so the MNA structure is a pure function of the
    /// deck.
    fn stamp(&self, x: &[f64], corner: &PvtCorner) -> Result<Circuit, EnvError> {
        if x.len() != self.axes.len() {
            return Err(EnvError::DimensionMismatch { expected: self.axes.len(), actual: x.len() });
        }
        let rendered = self.render(x, corner);
        let (nmos, pmos) = self.node.models_at(corner.process, corner.temp_celsius);
        let mut circuit = Circuit::new();
        circuit.temp_celsius = corner.temp_celsius;
        circuit.add_mos_model("nch", nmos);
        circuit.add_mos_model("pch", pmos);
        parse_netlist_into(&rendered, &mut circuit).map_err(|e| EnvError::InvalidProblem {
            reason: format!("netlist bench {:?} failed to stamp: {e}", self.name),
        })?;
        Ok(circuit)
    }

    /// Admission-time template validation: the deck must render, parse,
    /// and compile at the nominal corner and grid midpoint, and must
    /// define the `out` probe node and the `VDD` supply the measurement
    /// pipeline reads.
    fn validate_template(&self) -> Result<(), NetbenchError> {
        let midpoint: Vec<f64> =
            self.axes.iter().map(|p| p.grid[(p.grid.len() - 1) / 2]).collect();
        let corner = PvtCorner::nominal();
        let circuit = self
            .stamp(&midpoint, &corner)
            .map_err(|e| berr(0, e.to_string()))?;
        if circuit.find_node("out").is_none() {
            return Err(berr(0, "sizing deck defines no 'out' node (the AC response probe)"));
        }
        let engine = Engine::compile(&circuit)
            .map_err(|e| berr(0, format!("template does not compile: {e}")))?;
        if engine.branch_of("VDD").is_none() {
            return Err(berr(0, "sizing deck defines no 'VDD' source (the supply branch)"));
        }
        Ok(())
    }
}

/// Slugs a deck title into a bench name: lowercase alphanumerics with
/// single dashes.
fn slug(title: &str) -> String {
    let mut out = String::new();
    for ch in title.trim().chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else if !out.is_empty() && !out.ends_with('-') {
            out.push('-');
        }
    }
    let out = out.trim_end_matches('-').to_string();
    if out.is_empty() {
        "bench".to_string()
    } else {
        out
    }
}

/// Iterates the deck's cards with continuation lines joined, skipping the
/// title, comments, and blanks — the same card shape the circuit parser
/// sees, so the stanza and the template agree on line numbers.
fn stanza_cards(source: &str) -> Vec<(usize, String)> {
    let mut cards: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        if line_no == 1 {
            continue;
        }
        let end = raw.find([';', '$']).unwrap_or(raw.len());
        let trimmed = raw[..end].trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            if let Some((_, card)) = cards.last_mut() {
                card.push(' ');
                card.push_str(rest.trim());
            }
        } else {
            if trimmed.eq_ignore_ascii_case(".end") {
                break;
            }
            cards.push((line_no, trimmed.to_string()));
        }
    }
    cards
}

/// Index of a measurement name in [`MEASUREMENT_NAMES`].
fn measurement_index(line: usize, name: &str) -> Result<usize, NetbenchError> {
    MEASUREMENT_NAMES
        .iter()
        .position(|m| m.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            berr(
                line,
                format!(
                    "unknown measurement {name:?} (expected one of: {})",
                    MEASUREMENT_NAMES.join(", ")
                ),
            )
        })
}

/// Parses one `.sizeparam` card into a design-space axis.
fn parse_sizeparam(
    line: usize,
    tokens: &[&str],
    axes: &[Param],
) -> Result<Param, NetbenchError> {
    let usage = ".sizeparam NAME MIN MAX [STEP n] [LIN] | .sizeparam NAME VALUES v1,v2,…";
    let name = *tokens.get(1).ok_or_else(|| berr(line, usage))?;
    let valid = !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if !valid {
        return Err(berr(line, format!("invalid axis name {name:?}")));
    }
    if name.eq_ignore_ascii_case("vdd") {
        return Err(berr(line, "axis name 'vdd' is reserved for the supply binding"));
    }
    if axes.iter().any(|p| p.name == name) {
        return Err(berr(line, format!("duplicate axis {name:?}")));
    }
    let rest = &tokens[2..];
    if rest.first().is_some_and(|t| t.eq_ignore_ascii_case("values")) {
        let list = rest[1..].join("");
        let values: Vec<f64> = list
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                parse_value(s.trim())
                    .ok_or_else(|| berr(line, format!("cannot parse axis value {s:?}")))
            })
            .collect::<Result<_, _>>()?;
        return Param::explicit(name, values).map_err(|e| berr(line, e.to_string()));
    }
    if rest.len() < 2 {
        return Err(berr(line, usage));
    }
    let lo = parse_value(rest[0])
        .ok_or_else(|| berr(line, format!("cannot parse axis minimum {:?}", rest[0])))?;
    let hi = parse_value(rest[1])
        .ok_or_else(|| berr(line, format!("cannot parse axis maximum {:?}", rest[1])))?;
    let mut points = DEFAULT_GRID_POINTS;
    let mut linear = false;
    let mut i = 2;
    while i < rest.len() {
        let key = rest[i].to_ascii_lowercase();
        match key.as_str() {
            "step" => {
                let n = rest
                    .get(i + 1)
                    .and_then(|t| t.parse::<usize>().ok())
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| berr(line, "STEP needs a positive integer count"))?;
                points = n;
                i += 2;
            }
            "lin" => {
                linear = true;
                i += 1;
            }
            "log" => {
                linear = false;
                i += 1;
            }
            other => return Err(berr(line, format!("unknown .sizeparam keyword {other:?}"))),
        }
    }
    let param = if linear {
        Param::linear(name, lo, hi, points)
    } else {
        Param::geometric(name, lo, hi, points)
    };
    param.map_err(|e| berr(line, e.to_string()))
}

/// Parses one `.goal MEAS >=|<= TARGET` card into a [`Spec`].
fn parse_goal(line: usize, tokens: &[&str]) -> Result<Spec, NetbenchError> {
    let usage = ".goal MEAS >=|<= TARGET";
    if tokens.len() != 4 {
        return Err(berr(line, usage));
    }
    let idx = measurement_index(line, tokens[1])?;
    let target = parse_value(tokens[3])
        .filter(|t| t.is_finite())
        .ok_or_else(|| berr(line, format!("cannot parse goal target {:?}", tokens[3])))?;
    let spec_name = SPEC_NAMES[idx];
    match tokens[2] {
        ">=" => Ok(Spec::at_least(idx, spec_name, target)),
        "<=" => Ok(Spec::at_most(idx, spec_name, target)),
        other => Err(berr(line, format!("unknown goal relation {other:?} (use >= or <=)"))),
    }
}

/// The MNA-backed evaluator behind a [`NetlistBench`] — structurally
/// identical to the built-in opamp evaluator: pooled engine slots,
/// restamp-in-place, and the bounded simulation cache.
pub struct NetlistEvaluator {
    bench: NetlistBench,
    names: Vec<String>,
    pool: EnginePool,
    cache: SimCache,
}

impl NetlistEvaluator {
    /// Wraps a compiled bench.
    pub fn new(bench: NetlistBench) -> Self {
        NetlistEvaluator {
            bench,
            names: MEASUREMENT_NAMES.iter().map(|s| (*s).to_string()).collect(),
            pool: EnginePool::default(),
            cache: SimCache::default(),
        }
    }

    /// The solve proper, running inside a pooled engine/workspace slot.
    /// This mirrors the built-in opamp evaluator operation for operation,
    /// which is what makes a netlist clone of a built-in bench bitwise
    /// equivalent.
    fn evaluate_in_slot(
        &self,
        slot: &mut EngineSlot,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        let circuit = self.bench.stamp(x, corner)?;
        let EngineSlot { engine, ws } = slot;
        let engine = match engine.as_mut() {
            Some(eng) => {
                eng.restamp(&circuit)?;
                eng
            }
            None => engine.insert(Engine::compile(&circuit)?),
        };
        let mut opts = OpOptions::default();
        effort.apply(&mut opts);
        let initial = effort.initial_guess(engine.dim());
        let op = engine.operating_point_with(&opts, initial.as_deref(), ws)?;

        let sweep = Sweep::Decade { fstart: 10.0, fstop: 10e9, points_per_decade: 10 };
        let out = circuit.find_node("out").ok_or_else(|| EnvError::InvalidProblem {
            reason: "netlist bench defines no 'out' node".into(),
        })?;
        let vdd_branch = engine.branch_of("VDD").ok_or_else(|| EnvError::InvalidProblem {
            reason: "netlist bench defines no 'VDD' source".into(),
        })?;
        let supply_current = op.branch_current(vdd_branch).abs();
        let vdd_v = self.bench.node.vdd * corner.vdd_scale;

        let ac = ac_analysis_with_op_in(engine, op, sweep, ws)?;
        let fr = checked_frequency_response(&ac, out)?;

        let meas = vec![
            fr.dc_gain_db,
            fr.unity_gain_freq.unwrap_or(0.0),
            fr.phase_margin_deg.unwrap_or(0.0),
            supply_current * vdd_v,
            circuit.total_gate_area(),
        ];
        ensure_finite(&meas, "netlist bench measurements")?;
        Ok(meas)
    }
}

impl Evaluator for NetlistEvaluator {
    fn measurement_names(&self) -> &[String] {
        &self.names
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        self.evaluate_with_effort(x, corner, EvalEffort::default())
    }

    fn evaluate_with_effort(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        let key = SimCache::key(x, corner, effort);
        if let Some(meas) = self.cache.get(&key) {
            return Ok(meas);
        }
        let mut slot = self.pool.take();
        let result = self.evaluate_in_slot(&mut slot, x, corner, effort);
        self.pool.put(slot);
        if let Ok(meas) = &result {
            self.cache.put(key, meas.clone());
        }
        result
    }

    fn set_solver(&self, choice: asdex_spice::analysis::SolverChoice) {
        self.pool.set_choice(choice);
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::opamp::{OpampEvaluator, TwoStageOpamp};

    /// A minimal valid sizing deck: an RC low-pass inside a supply rail.
    fn rc_deck() -> String {
        "rc sizing demo
.process 45
.corners nominal
.sizeparam rser 1k 100k STEP 10
.goal gain_db >= -10
.goal power_w <= 1e-2
.param rl=2*1k
VDD vdd 0 {vdd}
RL vdd 0 {rl}
VIN in 0 DC 0.5 AC 1
RS in out {rser}
C1 out 0 1e-9
.end
"
        .to_string()
    }

    #[test]
    fn digest_is_fnv1a() {
        // Classic FNV-1a vectors.
        assert_eq!(netlist_digest(""), 0xcbf29ce484222325);
        assert_eq!(netlist_digest("a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn compiles_minimal_deck() {
        let bench = NetlistBench::compile(&rc_deck()).unwrap();
        assert_eq!(bench.name(), "rc-sizing-demo");
        assert_eq!(bench.axes().len(), 1);
        assert_eq!(bench.axes()[0].name, "rser");
        assert_eq!(bench.axes()[0].grid.len(), 10);
        assert_eq!(bench.corners().corners().len(), 1);
        assert_eq!(bench.digest(), netlist_digest(&rc_deck()));
    }

    #[test]
    fn problem_evaluates_deterministically() {
        let bench = NetlistBench::compile(&rc_deck()).unwrap();
        let p = bench.problem().unwrap();
        assert_eq!(p.dim(), 1);
        let e1 = p.evaluate_normalized(&[0.5], 0);
        let e2 = p.evaluate_normalized(&[0.5], 0);
        let m1 = e1.measurements.expect("rc deck solves");
        let m2 = e2.measurements.expect("rc deck solves");
        for (a, b) in m1.iter().zip(&m2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Static power through RL: vdd²/2k = 1.62 mW.
        assert!((m1[3] - 1.8 * 1.8 / 2e3).abs() < 1e-6, "power {}", m1[3]);
    }

    #[test]
    fn goals_map_to_specs() {
        let bench = NetlistBench::compile(&rc_deck()).unwrap();
        let specs = bench.specs.specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].measurement, 0);
        assert_eq!(specs[0].name, "gain");
        assert_eq!(specs[1].measurement, 3);
        assert_eq!(specs[1].name, "power");
    }

    #[test]
    fn fom_weights_value_fn() {
        let deck = rc_deck().replace(".goal power_w <= 1e-2", ".goal power_w <= 1e-2\n.fom power_w 3");
        let bench = NetlistBench::compile(&deck).unwrap();
        assert_eq!(bench.fom(), Some((3, 3.0)));
        let p = bench.problem().unwrap();
        assert_eq!(p.value_fn.weights, Some(vec![1.0, 3.0]));
        // Without .fom the value function is the uniform default.
        let p0 = NetlistBench::compile(&rc_deck()).unwrap().problem().unwrap();
        assert_eq!(p0.value_fn.weights, None);
    }

    #[test]
    fn grid_variants() {
        let deck = rc_deck().replace(
            ".sizeparam rser 1k 100k STEP 10",
            ".sizeparam rser 1k 100k STEP 4 LIN\n.sizeparam cpar VALUES 2e-12,1e-12,2e-12",
        );
        let bench = NetlistBench::compile(&deck).unwrap();
        assert_eq!(bench.axes()[0].grid, vec![1e3, 34e3, 67e3, 100e3]);
        assert_eq!(bench.axes()[1].grid, vec![1e-12, 2e-12], "sorted + deduped");
    }

    #[test]
    fn stanza_errors_are_typed() {
        let cases: Vec<(String, &str)> = vec![
            (rc_deck().replace(".process 45", ""), "needs a .process"),
            (rc_deck().replace(".process 45", ".process 7"), "unknown process node"),
            (rc_deck().replace(".corners nominal", ".corners all"), "unknown corner set"),
            (
                rc_deck().replace(".sizeparam rser 1k 100k STEP 10", ".sizeparam rser xx 100k STEP 10"),
                "cannot parse axis",
            ),
            (
                rc_deck()
                    .replace(".sizeparam rser 1k 100k STEP 10", ".sizeparam rser 1k 100k STEP 0"),
                "positive integer",
            ),
            (
                rc_deck().replace(
                    ".sizeparam rser 1k 100k STEP 10",
                    ".sizeparam rser 1k 100k STEP 10\n.sizeparam rser 1k 2k STEP 2",
                ),
                "duplicate axis",
            ),
            (
                rc_deck()
                    .replace(".sizeparam rser 1k 100k STEP 10", ".sizeparam vdd 1k 2k STEP 2"),
                "reserved",
            ),
            (rc_deck().replace(".goal gain_db >= -10", ".goal snr_db >= 10"), "unknown measurement"),
            (rc_deck().replace(".goal gain_db >= -10", ".goal gain_db == -10"), "unknown goal relation"),
            (rc_deck().replace(".goal gain_db >= -10", ".goal gain_db >="), ".goal MEAS"),
            (
                rc_deck().replace(".goal gain_db >= -10\n.goal power_w <= 1e-2", ""),
                "no .goal",
            ),
            (rc_deck().replace(" out ", " o2 "), "no 'out' node"),
            (rc_deck().replace("VDD vdd 0 {vdd}", "VX vdd 0 {vdd}"), "no 'VDD' source"),
            (rc_deck().replace("{rl}", "{nope}"), "unresolved parameter"),
        ];
        for (deck, needle) in cases {
            let e = NetlistBench::compile(&deck).expect_err(needle);
            assert!(e.to_string().contains(needle), "{needle:?} not in {e}");
        }
    }

    #[test]
    fn digest_guard_is_typed() {
        let bench = NetlistBench::compile(&rc_deck()).unwrap();
        assert!(bench.expect_digest(bench.digest()).is_ok());
        let e = bench.expect_digest(bench.digest() ^ 1).unwrap_err();
        assert!(e.to_string().contains("digest mismatch"), "{e}");
    }

    /// The keystone at the evaluator level: the shipped netlist clone of
    /// the built-in opamp45 bench must measure bit-identically.
    #[test]
    fn opamp_clone_is_bitwise_identical() {
        let deck = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../decks/two_stage_opamp_sized.sp"),
        )
        .expect("scenario deck ships with the repo");
        let bench = NetlistBench::compile(&deck).unwrap();
        let amp = TwoStageOpamp::bsim45();

        // Space: same axes, same grids, bit for bit.
        let builtin_space = amp.space().unwrap();
        assert_eq!(bench.axes().len(), builtin_space.params().len());
        for (a, b) in bench.axes().iter().zip(builtin_space.params()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.grid.len(), b.grid.len());
            for (x, y) in a.grid.iter().zip(&b.grid) {
                assert_eq!(x.to_bits(), y.to_bits(), "axis {}", a.name);
            }
        }
        // Specs: same measurements, kinds, and targets.
        let (ours, theirs) = (bench.specs.specs(), amp.specs());
        let theirs = theirs.specs();
        assert_eq!(ours.len(), theirs.len());
        for (a, b) in ours.iter().zip(theirs) {
            assert_eq!((a.measurement, a.kind, a.target.to_bits()), (b.measurement, b.kind, b.target.to_bits()));
            assert_eq!(a.name, b.name);
        }

        // Measurements: bit-identical across corners and solver backends.
        let net_eval = NetlistEvaluator::new(bench);
        let amp_eval = OpampEvaluator::new(amp);
        let x = vec![20e-6, 10e-6, 10e-6, 60e-6, 20e-6, 1.5e-12, 10e-6];
        let corners = PvtSet::signoff5();
        for choice in [
            asdex_spice::analysis::SolverChoice::Dense,
            asdex_spice::analysis::SolverChoice::Sparse,
        ] {
            net_eval.set_solver(choice);
            amp_eval.set_solver(choice);
            for corner in corners.corners() {
                let a = net_eval.evaluate(&x, corner).unwrap();
                let b = amp_eval.evaluate(&x, corner).unwrap();
                for (va, vb) in a.iter().zip(&b) {
                    assert_eq!(va.to_bits(), vb.to_bits(), "corner {corner:?} {choice:?}");
                }
            }
        }
    }

    #[test]
    fn load_resolves_includes() {
        let dir = std::env::temp_dir().join(format!("asdex_netbench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let deck = rc_deck();
        let (head, tail) = deck.split_once("VDD").unwrap();
        std::fs::write(dir.join("body.inc"), format!("VDD{tail}")).unwrap();
        std::fs::write(dir.join("main.sp"), format!("{head}.include body.inc\n")).unwrap();
        let bench = NetlistBench::load(&dir.join("main.sp")).unwrap();
        assert_eq!(bench.axes().len(), 1);
        // Digest covers the *expanded* source, so editing the include is
        // caught by the resume guard too.
        assert_eq!(bench.digest(), netlist_digest(bench.source()));
        let missing = NetlistBench::load(&dir.join("nope.sp")).unwrap_err();
        assert!(missing.to_string().contains("cannot read deck"), "{missing}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
