//! Append-only checkpoint journal for crash-safe search campaigns.
//!
//! A search campaign is a deterministic function of `(problem, agent,
//! seed)` — every evaluator is required to be deterministic in
//! `(x, corner, effort)` and every agent is seeded. The journal exploits
//! that: instead of snapshotting agent state (fragile across versions), it
//! records every *evaluation outcome* the campaign consumed, keyed by
//! `(point, corner, attempt cap)`. Resuming re-runs the agent from its
//! seed; journaled evaluations are served back verbatim (no simulator
//! calls), and the campaign continues live exactly where it died —
//! producing a [`crate::SearchOutcome`] bitwise identical to an
//! uninterrupted run.
//!
//! # File format (version 1)
//!
//! A plain text file, one record per line, dependency-free:
//!
//! ```text
//! asdex-journal v1
//! M problem=opamp45 seed=7 budget=500 ...
//! E c=0 cap=3 u=3fe0...,3fe8... x=3fe0...,3fe8... m=4010...,c008... v=0000000000000000 fz=1 k=- s=1
//! ```
//!
//! * Line 1 is the version header.
//! * Line 2 (`M …`) carries campaign metadata as whitespace-free
//!   `key=value` pairs — enough for a CLI to rebuild the same problem,
//!   agent, and seed without any other input.
//! * Each `E …` line is one evaluation: corner index `c`, admitted attempt
//!   cap `cap`, the requested normalized point `u`, and the full
//!   [`Evaluation`] (snapped point `x`, measurements `m` (`-` when the
//!   simulation failed), value `v`, feasibility `fz`, terminal failure
//!   kind `k` (`-` on success), and simulator cost `s`). Every `f64` is
//!   serialized as the 16-hex-digit big-endian form of its IEEE-754 bits,
//!   so round-trips are exact and replay is bitwise faithful.
//!
//! Records are appended with a single `write` each and fsync'd every
//! `checkpoint_every` records (and on [`Journal::checkpoint`]), so a
//! `SIGKILL` can tear at most the final line. [`Journal::resume`]
//! tolerates exactly that: an unterminated final line is truncated away
//! before appending continues.

use crate::problem::Evaluation;
use crate::stats::FailureKind;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Version header on the first line of every journal file.
const VERSION_HEADER: &str = "asdex-journal v1";

/// Which storage operation a seeded [`DiskFault`] sabotages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The append fails outright before any byte lands (ENOSPC-style).
    WriteError,
    /// The append writes a prefix of the record and then fails — the
    /// on-disk shape of a torn tail, produced while the process lives.
    ShortWrite,
    /// `fsync` fails; buffered bytes may or may not be durable.
    FsyncError,
}

impl DiskFaultKind {
    /// Stable label for error messages and metrics.
    pub fn label(self) -> &'static str {
        match self {
            DiskFaultKind::WriteError => "write-error",
            DiskFaultKind::ShortWrite => "short-write",
            DiskFaultKind::FsyncError => "fsync-error",
        }
    }
}

/// A seeded, deterministic disk-fault injector for the journal and
/// manifest write paths.
///
/// Whether an operation fails is a pure function of `(seed, salt, op
/// index)` — the same campaign with the same fault config fails at the
/// same operations on every run, so chaos tests are reproducible. `salt`
/// is derived from the file name, so two journals under one config fail
/// on *different* schedules (one campaign's storage can die while its
/// neighbors stay healthy).
#[derive(Debug, Clone, Copy)]
pub struct DiskFault {
    /// Which operation class to sabotage.
    pub kind: DiskFaultKind,
    /// Probability in `[0, 1]` that a given operation fails.
    pub rate: f64,
    /// Seed for the per-operation decision hash.
    pub seed: u64,
}

impl DiskFault {
    /// A fault of `kind` firing at `rate` under `seed`.
    pub fn new(kind: DiskFaultKind, rate: f64, seed: u64) -> DiskFault {
        DiskFault { kind, rate, seed }
    }

    /// Deterministic per-operation decision (splitmix64 over seed, salt,
    /// and the operation index).
    pub fn fires(&self, salt: u64, op: u64) -> bool {
        let mut z = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(salt.rotate_left(17))
            .wrapping_add(op.wrapping_mul(0xbf58476d1ce4e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.rate
    }

    /// The injected error for a firing operation.
    fn error(&self) -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            format!("injected disk fault ({})", self.kind.label()),
        )
    }
}

/// FNV-1a over a path's file name: the per-file salt for [`DiskFault`].
pub fn path_salt(path: &Path) -> u64 {
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let mut hash = 0xcbf29ce484222325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Campaign metadata stored on the journal's second line: ordered
/// `key=value` string pairs (keys and values are sanitized to be
/// whitespace-free). The environment layer treats this as opaque — the
/// CLI uses it to rebuild the problem, agent, and seed on `--resume`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalMeta {
    pairs: Vec<(String, String)>,
}

impl JournalMeta {
    /// An empty metadata record.
    pub fn new() -> Self {
        JournalMeta::default()
    }

    /// Sets `key` to `value` (replacing an existing entry). Whitespace in
    /// either is replaced with `_` so the on-disk line stays parseable.
    pub fn set(&mut self, key: &str, value: &str) {
        let clean = |s: &str| {
            s.chars().map(|c| if c.is_whitespace() || c == '=' { '_' } else { c }).collect::<String>()
        };
        let key = clean(key);
        let value = clean(value);
        if let Some(entry) = self.pairs.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = value;
        } else {
            self.pairs.push((key, value));
        }
    }

    /// Builder-style [`JournalMeta::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: &str) -> Self {
        self.set(key, value);
        self
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The `M …` line (without trailing newline).
    fn to_line(&self) -> String {
        let mut line = String::from("M");
        for (k, v) in &self.pairs {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(v);
        }
        line
    }

    /// Parses an `M …` line.
    fn parse(line: &str) -> Option<JournalMeta> {
        let mut parts = line.split_whitespace();
        if parts.next()? != "M" {
            return None;
        }
        let mut meta = JournalMeta::new();
        for tok in parts {
            let (k, v) = tok.split_once('=')?;
            meta.pairs.push((k.to_string(), v.to_string()));
        }
        Some(meta)
    }
}

/// Why a journal could not be created or resumed.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file's version header is missing or from an unknown version.
    Version {
        /// What the first line actually contained.
        found: String,
    },
    /// A line in the interior of the file (i.e. not a torn tail) did not
    /// parse.
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A write or fsync on an *open* journal failed — the typed surface
    /// for mid-campaign storage trouble (disk full, injected fault),
    /// carrying which operation failed.
    Storage {
        /// The operation that failed (`append`, `fsync`).
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Version { found } => {
                write!(f, "not an asdex journal (expected `{VERSION_HEADER}`, found `{found}`)")
            }
            JournalError::Format { line, reason } => {
                write!(f, "corrupt journal at line {line}: {reason}")
            }
            JournalError::Storage { op, source } => {
                write!(f, "journal storage error during {op}: {source}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Replay key: the requested point's IEEE-754 bits, the corner index, and
/// the admitted attempt cap (the cap changes the retry ladder's depth and
/// therefore the outcome, so it is part of the identity).
type ReplayKey = (Vec<u64>, usize, usize);

/// An append-only, fsync'd evaluation journal (see the module docs for
/// the format and the determinism contract).
///
/// Attach one to a [`crate::SizingProblem`] via
/// [`crate::SizingProblem::with_journal`]: every non-replayed evaluation
/// is recorded, and after [`Journal::resume`] the recorded outcomes are
/// served back in request order without touching the simulator.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    meta: JournalMeta,
    replay: HashMap<ReplayKey, VecDeque<Evaluation>>,
    replayed: usize,
    recorded: usize,
    pending: usize,
    checkpoint_every: usize,
    disk_fault: Option<DiskFault>,
    salt: u64,
    write_ops: u64,
    sync_ops: u64,
    dropped: usize,
}

fn fmt_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn fmt_list(xs: &[f64]) -> String {
    xs.iter().map(|v| fmt_f64(*v)).collect::<Vec<_>>().join(",")
}

fn parse_list(s: &str) -> Option<Vec<f64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(parse_hex_f64).collect()
}

fn fmt_eval_line(u: &[f64], corner_idx: usize, cap: usize, e: &Evaluation) -> String {
    format!(
        "E c={} cap={} u={} x={} m={} v={} fz={} k={} s={}\n",
        corner_idx,
        cap,
        fmt_list(u),
        fmt_list(&e.x_norm),
        e.measurements.as_deref().map_or_else(|| "-".to_string(), fmt_list),
        fmt_f64(e.value),
        usize::from(e.feasible),
        e.failure.map_or("-", FailureKind::label),
        e.sim_cost,
    )
}

fn parse_eval_line(line: &str) -> Option<(ReplayKey, Evaluation)> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "E" {
        return None;
    }
    let mut corner = None;
    let mut cap = None;
    let mut u = None;
    let mut x = None;
    let mut m = None;
    let mut v = None;
    let mut fz = None;
    let mut k = None;
    let mut s = None;
    for tok in parts {
        let (key, val) = tok.split_once('=')?;
        match key {
            "c" => corner = Some(val.parse::<usize>().ok()?),
            "cap" => cap = Some(val.parse::<usize>().ok()?),
            "u" => u = Some(parse_list(val)?),
            "x" => x = Some(parse_list(val)?),
            "m" => {
                m = Some(if val == "-" { None } else { Some(parse_list(val)?) });
            }
            "v" => v = Some(parse_hex_f64(val)?),
            "fz" => {
                fz = Some(match val {
                    "0" => false,
                    "1" => true,
                    _ => return None,
                })
            }
            "k" => {
                k = Some(if val == "-" { None } else { Some(FailureKind::from_label(val)?) });
            }
            "s" => s = Some(val.parse::<usize>().ok()?),
            _ => return None,
        }
    }
    let key = (u?.iter().map(|f| f.to_bits()).collect(), corner?, cap?);
    let eval = Evaluation {
        x_norm: x?,
        measurements: m?,
        value: v?,
        feasible: fz?,
        failure: k?,
        sim_cost: s?,
    };
    Some((key, eval))
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file),
    /// writing the version header and `meta` immediately and fsync'ing
    /// them. Subsequent records are fsync'd every `checkpoint_every`
    /// appends (minimum 1).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be created or written.
    pub fn create(
        path: &Path,
        meta: JournalMeta,
        checkpoint_every: usize,
    ) -> Result<Journal, JournalError> {
        let mut file =
            OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        file.write_all(format!("{VERSION_HEADER}\n{}\n", meta.to_line()).as_bytes())?;
        file.sync_data()?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            meta,
            replay: HashMap::new(),
            replayed: 0,
            recorded: 0,
            pending: 0,
            checkpoint_every: checkpoint_every.max(1),
            disk_fault: None,
            salt: path_salt(path),
            write_ops: 0,
            sync_ops: 0,
            dropped: 0,
        })
    }

    /// Opens an existing journal for resumption: parses every record into
    /// the replay map, truncates a torn final line (the signature of a
    /// `SIGKILL` mid-append) and reopens the file for appending.
    ///
    /// # Errors
    ///
    /// * [`JournalError::Io`] when the file cannot be read or reopened.
    /// * [`JournalError::Version`] when the header is missing or unknown.
    /// * [`JournalError::Format`] when an interior line is corrupt (torn
    ///   tails are repaired, interior corruption is not).
    pub fn resume(path: &Path, checkpoint_every: usize) -> Result<Journal, JournalError> {
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        let mut replay: HashMap<ReplayKey, VecDeque<Evaluation>> = HashMap::new();
        let mut meta: Option<JournalMeta> = None;
        let mut valid_end = 0usize;
        let mut offset = 0usize;
        let mut line_no = 0usize;
        let mut entries = 0usize;
        for raw in text.split_inclusive('\n') {
            offset += raw.len();
            line_no += 1;
            let complete = raw.ends_with('\n');
            let body = raw.trim_end_matches(['\n', '\r']);
            let last = offset == text.len();
            let ok = match line_no {
                1 => {
                    if body != VERSION_HEADER {
                        return Err(JournalError::Version { found: body.to_string() });
                    }
                    true
                }
                2 => match JournalMeta::parse(body) {
                    Some(m) => {
                        if complete {
                            meta = Some(m);
                        }
                        true
                    }
                    None => false,
                },
                // A line torn at a field boundary can still parse (e.g. a
                // measurement list cut at a chunk edge reads as a shorter
                // valid list), so a record is only committed to the
                // replay map once its newline proves the write finished.
                _ => match parse_eval_line(body) {
                    Some((key, eval)) => {
                        if complete {
                            replay.entry(key).or_default().push_back(eval);
                            entries += 1;
                        }
                        true
                    }
                    None => false,
                },
            };
            if ok && complete {
                valid_end = offset;
            } else if !complete && last {
                // Torn tail from a crash mid-append: drop it.
                break;
            } else {
                return Err(JournalError::Format {
                    line: line_no,
                    reason: format!("unparseable record `{body}`"),
                });
            }
        }
        let meta = meta.ok_or(JournalError::Format {
            line: 2,
            reason: "missing campaign metadata".to_string(),
        })?;
        let file = OpenOptions::new().write(true).append(false).open(path)?;
        file.set_len(valid_end as u64)?;
        let file = OpenOptions::new().append(true).open(path)?;
        let mut journal = Journal {
            path: path.to_path_buf(),
            file,
            meta,
            replay,
            replayed: 0,
            recorded: 0,
            pending: 0,
            checkpoint_every: checkpoint_every.max(1),
            disk_fault: None,
            salt: path_salt(path),
            write_ops: 0,
            sync_ops: 0,
            dropped: 0,
        };
        journal.recorded = entries;
        Ok(journal)
    }

    /// Attaches a seeded [`DiskFault`] injector to this journal's write
    /// and fsync paths (chaos testing).
    #[must_use]
    pub fn with_disk_fault(mut self, fault: DiskFault) -> Journal {
        self.disk_fault = Some(fault);
        self
    }

    /// Pops the recorded outcome for `(u, corner_idx, cap)`, if this
    /// journal holds one that has not been served yet. Duplicate requests
    /// are served in recording order, exactly as the original run produced
    /// them.
    pub fn take_replay(&mut self, u: &[f64], corner_idx: usize, cap: usize) -> Option<Evaluation> {
        let key: ReplayKey = (u.iter().map(|v| v.to_bits()).collect(), corner_idx, cap);
        let queue = self.replay.get_mut(&key)?;
        let eval = queue.pop_front()?;
        if queue.is_empty() {
            self.replay.remove(&key);
        }
        self.replayed += 1;
        Some(eval)
    }

    /// Appends one evaluation record, fsync'ing when `checkpoint_every`
    /// records have accumulated since the last sync.
    ///
    /// A failed append is also tallied in [`Journal::dropped`]: in-tree
    /// callers degrade by dropping the record (a shorter resume point, not
    /// a failed evaluation), and the tally keeps that degradation visible
    /// in campaign telemetry instead of silent.
    ///
    /// # Errors
    ///
    /// [`JournalError::Storage`] when the append or the periodic fsync
    /// fails (or a [`DiskFault`] fires).
    pub fn record(
        &mut self,
        u: &[f64],
        corner_idx: usize,
        cap: usize,
        eval: &Evaluation,
    ) -> Result<(), JournalError> {
        let before = self.recorded;
        let result = self.try_record(u, corner_idx, cap, eval);
        // A failed periodic fsync is not a drop: the append itself landed.
        if result.is_err() && self.recorded == before {
            self.dropped += 1;
        }
        result
    }

    fn try_record(
        &mut self,
        u: &[f64],
        corner_idx: usize,
        cap: usize,
        eval: &Evaluation,
    ) -> Result<(), JournalError> {
        let line = fmt_eval_line(u, corner_idx, cap, eval);
        let bytes = line.as_bytes();
        let op = self.write_ops;
        self.write_ops += 1;
        if let Some(fault) = self.disk_fault {
            if fault.fires(self.salt, op) {
                match fault.kind {
                    DiskFaultKind::WriteError => {
                        return Err(JournalError::Storage { op: "append", source: fault.error() });
                    }
                    DiskFaultKind::ShortWrite => {
                        // Land a prefix so the file genuinely tears, then
                        // fail the append like a half-completed write.
                        let cut = bytes.len() / 2;
                        self.file
                            .write_all(&bytes[..cut])
                            .map_err(|e| JournalError::Storage { op: "append", source: e })?;
                        return Err(JournalError::Storage { op: "append", source: fault.error() });
                    }
                    DiskFaultKind::FsyncError => {}
                }
            }
        }
        self.file
            .write_all(bytes)
            .map_err(|e| JournalError::Storage { op: "append", source: e })?;
        self.recorded += 1;
        self.pending += 1;
        if self.pending >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Forces an fsync now (graceful-shutdown path: called on `SIGINT` and
    /// at the end of a campaign so the tail of the journal is durable).
    ///
    /// # Errors
    ///
    /// [`JournalError::Storage`] when the sync fails (or a [`DiskFault`]
    /// fires).
    pub fn checkpoint(&mut self) -> Result<(), JournalError> {
        let op = self.sync_ops;
        self.sync_ops += 1;
        if let Some(fault) = self.disk_fault {
            if fault.kind == DiskFaultKind::FsyncError && fault.fires(self.salt, op) {
                return Err(JournalError::Storage { op: "fsync", source: fault.error() });
            }
        }
        self.file.sync_data().map_err(|e| JournalError::Storage { op: "fsync", source: e })?;
        self.pending = 0;
        Ok(())
    }

    /// Appends that failed and were degraded to a shorter resume point.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Where the journal lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The campaign metadata from the header.
    pub fn meta(&self) -> &JournalMeta {
        &self.meta
    }

    /// Evaluations served from the replay map so far.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Evaluation records in the file (parsed on resume + appended since).
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// Recorded evaluations not yet served back — nonzero after a resumed
    /// campaign diverges (e.g. a different seed), which a CLI should warn
    /// about.
    pub fn unconsumed(&self) -> usize {
        self.replay.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("asdex-journal-test-{}-{name}.log", std::process::id()));
        p
    }

    fn sample_eval(ok: bool) -> Evaluation {
        if ok {
            Evaluation {
                x_norm: vec![0.5, 0.25],
                measurements: Some(vec![1.5, -2.25]),
                value: -0.125,
                feasible: true,
                failure: None,
                sim_cost: 1,
            }
        } else {
            Evaluation {
                x_norm: vec![0.5, 0.25],
                measurements: None,
                value: -100.0,
                feasible: false,
                failure: Some(FailureKind::WorkerPanic),
                sim_cost: 3,
            }
        }
    }

    #[test]
    fn eval_lines_round_trip_bitwise() {
        for eval in [sample_eval(true), sample_eval(false)] {
            let u = [0.5000000000000001, 0.25];
            let line = fmt_eval_line(&u, 2, 3, &eval);
            let (key, parsed) = parse_eval_line(line.trim_end()).expect("round trip");
            assert_eq!(key.0, u.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
            assert_eq!(key.1, 2);
            assert_eq!(key.2, 3);
            assert_eq!(parsed, eval);
        }
        // NaN measurements never reach a journal (they are typed failures
        // first), but the encoding still round-trips special values.
        assert_eq!(parse_hex_f64(&fmt_f64(f64::INFINITY)), Some(f64::INFINITY));
    }

    #[test]
    fn create_resume_replays_in_order() {
        let path = tmp_path("order");
        let meta = JournalMeta::new().with("problem", "toy").with("seed", "7");
        let mut j = Journal::create(&path, meta, 2).unwrap();
        let a = sample_eval(true);
        let b = sample_eval(false);
        // Two records under the SAME key: replay must preserve order.
        j.record(&[0.5, 0.25], 0, 3, &a).unwrap();
        j.record(&[0.5, 0.25], 0, 3, &b).unwrap();
        j.checkpoint().unwrap();
        drop(j);

        let mut j = Journal::resume(&path, 2).unwrap();
        assert_eq!(j.meta().get("problem"), Some("toy"));
        assert_eq!(j.meta().get("seed"), Some("7"));
        assert_eq!(j.recorded(), 2);
        assert_eq!(j.unconsumed(), 2);
        assert_eq!(j.take_replay(&[0.5, 0.25], 0, 3), Some(a));
        assert_eq!(j.take_replay(&[0.5, 0.25], 0, 3), Some(b));
        assert_eq!(j.take_replay(&[0.5, 0.25], 0, 3), None);
        assert_eq!(j.replayed(), 2);
        // A different cap is a different identity.
        assert_eq!(j.take_replay(&[0.5, 0.25], 0, 1), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp_path("torn");
        let meta = JournalMeta::new().with("problem", "toy");
        let mut j = Journal::create(&path, meta, 1).unwrap();
        j.record(&[0.5, 0.25], 0, 3, &sample_eval(true)).unwrap();
        j.record(&[0.5, 0.25], 1, 3, &sample_eval(true)).unwrap();
        drop(j);
        // Tear the final line as a SIGKILL mid-write would.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 7];
        assert!(!torn.ends_with('\n'));
        std::fs::write(&path, torn).unwrap();

        let mut j = Journal::resume(&path, 1).unwrap();
        assert_eq!(j.recorded(), 1, "torn record dropped");
        assert!(j.take_replay(&[0.5, 0.25], 0, 3).is_some());
        assert!(j.take_replay(&[0.5, 0.25], 1, 3).is_none());
        // The file is valid again: appending + resuming works.
        j.record(&[0.75, 0.25], 1, 3, &sample_eval(false)).unwrap();
        j.checkpoint().unwrap();
        drop(j);
        let j = Journal::resume(&path, 1).unwrap();
        assert_eq!(j.recorded(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_that_still_parses_is_dropped_not_replayed() {
        let path = tmp_path("torn-parseable");
        let mut j = Journal::create(&path, JournalMeta::new(), 1).unwrap();
        j.record(&[0.5, 0.25], 0, 3, &sample_eval(true)).unwrap();
        let mut expensive = sample_eval(true);
        expensive.sim_cost = 12;
        j.record(&[0.5, 0.25], 1, 3, &expensive).unwrap();
        drop(j);
        // Cut the final line inside its trailing `s=12` field: "s=1" is a
        // valid (wrong!) record, but the missing newline proves the write
        // never finished — it must be dropped, not served truncated.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().len() - 1;
        assert!(text[..cut].ends_with("s=1"), "cut must leave a parseable prefix");
        std::fs::write(&path, &text[..cut]).unwrap();

        let mut j = Journal::resume(&path, 1).unwrap();
        assert_eq!(j.recorded(), 1, "the parseable torn record must still be dropped");
        assert!(j.take_replay(&[0.5, 0.25], 1, 3).is_none(), "phantom record served");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_a_typed_error() {
        let path = tmp_path("interior");
        let meta = JournalMeta::new();
        let mut j = Journal::create(&path, meta, 1).unwrap();
        j.record(&[0.5, 0.25], 0, 3, &sample_eval(true)).unwrap();
        drop(j);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(text.find("E ").unwrap(), "garbage line\n");
        std::fs::write(&path, &text).unwrap();
        assert!(matches!(
            Journal::resume(&path, 1),
            Err(JournalError::Format { line: 3, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = tmp_path("version");
        std::fs::write(&path, "asdex-journal v99\nM\n").unwrap();
        assert!(matches!(Journal::resume(&path, 1), Err(JournalError::Version { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_write_error_is_typed_counted_and_leaves_the_file_intact() {
        let path = tmp_path("fault-write");
        let j = Journal::create(&path, JournalMeta::new(), 100).unwrap();
        let mut j = j.with_disk_fault(DiskFault::new(DiskFaultKind::WriteError, 1.0, 7));
        let before = std::fs::metadata(&path).unwrap().len();
        let err = j.record(&[0.5, 0.25], 0, 3, &sample_eval(true)).unwrap_err();
        assert!(matches!(err, JournalError::Storage { op: "append", .. }), "got {err}");
        assert_eq!(j.dropped(), 1);
        assert_eq!(j.recorded(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before, "no bytes landed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_short_write_tears_the_tail_and_resume_repairs_it() {
        let path = tmp_path("fault-short");
        let mut j = Journal::create(&path, JournalMeta::new(), 100).unwrap();
        j.record(&[0.5, 0.25], 0, 3, &sample_eval(true)).unwrap();
        j.checkpoint().unwrap();
        let mut j = j.with_disk_fault(DiskFault::new(DiskFaultKind::ShortWrite, 1.0, 7));
        let err = j.record(&[0.75, 0.25], 1, 3, &sample_eval(false)).unwrap_err();
        assert!(matches!(err, JournalError::Storage { op: "append", .. }), "got {err}");
        assert_eq!(j.dropped(), 1);
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.ends_with('\n'), "the short write must actually tear the file");
        let j = Journal::resume(&path, 1).unwrap();
        assert_eq!(j.recorded(), 1, "torn half-record dropped, intact record kept");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_fsync_failure_is_typed_and_does_not_drop_records() {
        let path = tmp_path("fault-fsync");
        let j = Journal::create(&path, JournalMeta::new(), 1).unwrap();
        let mut j = j.with_disk_fault(DiskFault::new(DiskFaultKind::FsyncError, 1.0, 7));
        // checkpoint_every=1: the periodic fsync inside record fails, but
        // the append itself landed — an error, not a drop.
        let err = j.record(&[0.5, 0.25], 0, 3, &sample_eval(true)).unwrap_err();
        assert!(matches!(err, JournalError::Storage { op: "fsync", .. }), "got {err}");
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.recorded(), 1);
        let err = j.checkpoint().unwrap_err();
        assert!(matches!(err, JournalError::Storage { op: "fsync", .. }), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_fault_decisions_are_deterministic_and_salted() {
        let fault = DiskFault::new(DiskFaultKind::WriteError, 0.5, 42);
        let a: Vec<bool> = (0..64).map(|op| fault.fires(1, op)).collect();
        let b: Vec<bool> = (0..64).map(|op| fault.fires(1, op)).collect();
        assert_eq!(a, b, "same (seed, salt, op) must decide identically");
        let c: Vec<bool> = (0..64).map(|op| fault.fires(2, op)).collect();
        assert_ne!(a, c, "different salts must fail on different schedules");
        assert!(a.iter().any(|f| *f) && a.iter().any(|f| !*f), "rate 0.5 mixes outcomes");
        let never = DiskFault::new(DiskFaultKind::WriteError, 0.0, 42);
        assert!((0..64).all(|op| !never.fires(1, op)));
        let always = DiskFault::new(DiskFaultKind::WriteError, 1.0, 42);
        assert!((0..64).all(|op| always.fires(1, op)));
    }

    #[test]
    fn meta_sanitizes_whitespace() {
        let meta = JournalMeta::new().with("agent name", "trm ppo=x");
        assert_eq!(meta.get("agent_name"), Some("trm_ppo_x"));
        let line = meta.to_line();
        let parsed = JournalMeta::parse(&line).unwrap();
        assert_eq!(parsed, meta);
    }
}
