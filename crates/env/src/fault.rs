//! Deterministic fault injection for chaos-testing search agents.
//!
//! [`FaultInjectingEvaluator`] wraps any [`Evaluator`] and corrupts a
//! configurable fraction of evaluations with the failure modes a real
//! simulator exhibits: non-convergence, NaN/Inf measurements, and
//! wrong-dimension output vectors. The injection is a pure function of
//! `(seed, point, corner, attempt)` — re-running a chaos test reproduces
//! the exact same fault sequence, and because the attempt index enters the
//! hash, the retry ladder can *recover* injected non-convergence exactly
//! as it would a flaky bias point.

use crate::corner::PvtCorner;
use crate::error::EnvError;
use crate::problem::Evaluator;
use crate::robust::EvalEffort;
use asdex_rng::splitmix64;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Whether process-level fault modes ([`FaultMode::WorkerAbort`],
/// [`FaultMode::WorkerHang`], [`FaultMode::WorkerKill`]) actually take the
/// process down. Armed only inside a sacrificial worker process (the
/// `asdex worker` loop calls [`arm_process_faults`] at startup); everywhere
/// else the modes degrade to their exact in-process analogues, so a chaos
/// stream classifies identically whether it runs in-process or on a worker
/// pool:
///
/// * abort/kill → an evaluator panic → [`crate::FailureKind::WorkerPanic`]
///   (a dead worker is detected by its supervisor and typed the same way);
/// * hang → a solve-deadline expiry → [`crate::FailureKind::Timeout`]
///   (a hung worker is killed by the supervisor's per-attempt deadline and
///   typed the same way).
static PROCESS_FAULTS_ARMED: AtomicBool = AtomicBool::new(false);

/// Arms process-level fault modes for this process. Call only from a
/// sacrificial worker process — once armed, an injected
/// [`FaultMode::WorkerAbort`]/[`FaultMode::WorkerKill`] terminates the
/// process and a [`FaultMode::WorkerHang`] sleeps until killed.
pub fn arm_process_faults() {
    PROCESS_FAULTS_ARMED.store(true, Ordering::SeqCst);
}

/// Whether [`arm_process_faults`] has been called in this process.
pub fn process_faults_armed() -> bool {
    PROCESS_FAULTS_ARMED.load(Ordering::SeqCst)
}

/// Which corruption an injected fault applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// A typed non-convergence error ([`EnvError::Injected`]) — retryable,
    /// so the ladder can recover it.
    NoConvergence,
    /// All measurements replaced with NaN.
    NanMeasurements,
    /// All measurements replaced with +Inf.
    InfMeasurements,
    /// A measurement vector one entry too long.
    WrongDimension,
    /// A raw `panic!` from inside the evaluator — exercises the worker
    /// panic-isolation boundary ([`crate::FailureKind::WorkerPanic`]).
    Panic,
    /// All measurements replaced with a huge-but-finite value (−1e30).
    /// Unlike NaN/Inf this passes the finiteness checks, reaches the
    /// learning loop, and poisons surrogate/policy training — the case the
    /// self-healing sentinels exist for. Negative, so threshold specs
    /// cannot mistake it for a pass.
    ExtremeMeasurements,
    /// Process-level: `std::process::abort()` when armed (see
    /// [`arm_process_faults`]) — the worker dies without unwinding, the
    /// supervisor sees EOF. Unarmed it degrades to a plain panic, which
    /// classifies identically ([`crate::FailureKind::WorkerPanic`]).
    WorkerAbort,
    /// Process-level: the attempt never returns when armed — the worker
    /// hangs until the supervisor's per-attempt deadline kills it. Unarmed
    /// it degrades to a solve-deadline expiry, which classifies identically
    /// ([`crate::FailureKind::Timeout`]).
    WorkerHang,
    /// Process-level: `std::process::exit(9)` when armed — the worker
    /// vanishes mid-request as if `SIGKILL`ed, without flushing a reply.
    /// Unarmed it degrades to a plain panic, which classifies identically
    /// ([`crate::FailureKind::WorkerPanic`]).
    WorkerKill,
}

impl FaultMode {
    /// All modes, in declaration (weight-index) order.
    pub const ALL: [FaultMode; 9] = [
        FaultMode::NoConvergence,
        FaultMode::NanMeasurements,
        FaultMode::InfMeasurements,
        FaultMode::WrongDimension,
        FaultMode::Panic,
        FaultMode::ExtremeMeasurements,
        FaultMode::WorkerAbort,
        FaultMode::WorkerHang,
        FaultMode::WorkerKill,
    ];

    /// Stable lowercase label, used by CLI flags (`--fault-mode`) so a
    /// supervisor can forward a fault plan to its worker processes.
    pub fn label(self) -> &'static str {
        match self {
            FaultMode::NoConvergence => "no-convergence",
            FaultMode::NanMeasurements => "nan",
            FaultMode::InfMeasurements => "inf",
            FaultMode::WrongDimension => "wrong-dimension",
            FaultMode::Panic => "panic",
            FaultMode::ExtremeMeasurements => "extreme",
            FaultMode::WorkerAbort => "worker-abort",
            FaultMode::WorkerHang => "worker-hang",
            FaultMode::WorkerKill => "worker-kill",
        }
    }

    /// Inverse of [`FaultMode::label`].
    pub fn from_label(label: &str) -> Option<FaultMode> {
        FaultMode::ALL.iter().copied().find(|m| m.label() == label)
    }
}

/// Configuration for [`FaultInjectingEvaluator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that any single attempt is faulted.
    pub rate: f64,
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// When `true` (default) each retry attempt draws an independent fault
    /// decision, so injected non-convergence can clear under the retry
    /// ladder. When `false` a faulted point stays faulted at every
    /// attempt.
    pub recover_on_retry: bool,
    /// Relative weights of the nine modes, in [`FaultMode`] declaration
    /// order: no-convergence, NaN, Inf, wrong-dimension, panic, extreme,
    /// worker-abort, worker-hang, worker-kill.
    pub mode_weights: [u32; 9],
}

impl FaultConfig {
    /// Faults at `rate` with the given `seed` and default mode mix
    /// (half non-convergence, the rest split between NaN/Inf/wrong-dim;
    /// panics, extreme measurements, and the process-level modes are
    /// opt-in via [`FaultConfig::only`] or explicit weights, so a default
    /// chaos stream stays panic-free and bit-identical to prior releases).
    pub fn new(rate: f64, seed: u64) -> Self {
        FaultConfig { rate, seed, recover_on_retry: true, mode_weights: [5, 2, 1, 2, 0, 0, 0, 0, 0] }
    }

    /// Restricts injection to a single mode.
    pub fn only(mode: FaultMode, rate: f64, seed: u64) -> Self {
        let mut w = [0u32; 9];
        w[mode as usize] = 1;
        FaultConfig { rate, seed, recover_on_retry: true, mode_weights: w }
    }
}

/// A chaos-testing wrapper that injects deterministic, seeded faults into
/// a fraction of evaluations. See the module docs for the determinism
/// contract.
pub struct FaultInjectingEvaluator {
    inner: Arc<dyn Evaluator>,
    config: FaultConfig,
    injected: AtomicUsize,
}

impl FaultInjectingEvaluator {
    /// Wraps `inner`, faulting per `config`.
    pub fn new(inner: Arc<dyn Evaluator>, config: FaultConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.rate),
            "fault rate {} outside [0, 1]",
            config.rate
        );
        assert!(
            config.mode_weights.iter().any(|w| *w > 0),
            "at least one fault mode must have non-zero weight"
        );
        FaultInjectingEvaluator { inner, config, injected: AtomicUsize::new(0) }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &Arc<dyn Evaluator> {
        &self.inner
    }

    /// The fault decision for one attempt: `None` (pass through) or the
    /// mode to inject. Pure in `(config, x, corner, attempt)`.
    fn decide(&self, x: &[f64], corner: &PvtCorner, attempt: usize) -> Option<FaultMode> {
        let mut h = self.config.seed ^ 0xC2B2_AE3D_27D4_EB4F;
        splitmix64(&mut h);
        for v in x {
            h ^= v.to_bits();
            splitmix64(&mut h);
        }
        h ^= corner.process as u64;
        splitmix64(&mut h);
        h ^= corner.vdd_scale.to_bits();
        splitmix64(&mut h);
        h ^= corner.temp_celsius.to_bits();
        splitmix64(&mut h);
        if self.config.recover_on_retry {
            h ^= attempt as u64;
            splitmix64(&mut h);
        }
        let draw = splitmix64(&mut h);
        let u = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u >= self.config.rate {
            return None;
        }
        let total: u64 = self.config.mode_weights.iter().map(|w| u64::from(*w)).sum();
        let mut pick = splitmix64(&mut h) % total;
        for (k, w) in self.config.mode_weights.iter().enumerate() {
            let w = u64::from(*w);
            if pick < w {
                return Some(match k {
                    0 => FaultMode::NoConvergence,
                    1 => FaultMode::NanMeasurements,
                    2 => FaultMode::InfMeasurements,
                    3 => FaultMode::WrongDimension,
                    4 => FaultMode::Panic,
                    5 => FaultMode::ExtremeMeasurements,
                    6 => FaultMode::WorkerAbort,
                    7 => FaultMode::WorkerHang,
                    _ => FaultMode::WorkerKill,
                });
            }
            pick -= w;
        }
        unreachable!("pick < total by construction")
    }
}

impl Evaluator for FaultInjectingEvaluator {
    fn measurement_names(&self) -> &[String] {
        self.inner.measurement_names()
    }

    fn evaluate(&self, x: &[f64], corner: &PvtCorner) -> Result<Vec<f64>, EnvError> {
        self.evaluate_with_effort(x, corner, EvalEffort::default())
    }

    fn evaluate_with_effort(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        effort: EvalEffort,
    ) -> Result<Vec<f64>, EnvError> {
        match self.decide(x, corner, effort.attempt) {
            None => self.inner.evaluate_with_effort(x, corner, effort),
            Some(mode) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let n = self.inner.measurement_names().len();
                match mode {
                    FaultMode::NoConvergence => Err(EnvError::Injected { mode: "no-convergence" }),
                    FaultMode::NanMeasurements => Ok(vec![f64::NAN; n]),
                    FaultMode::InfMeasurements => Ok(vec![f64::INFINITY; n]),
                    FaultMode::WrongDimension => Ok(vec![0.0; n + 1]),
                    FaultMode::Panic => panic!("injected worker panic"),
                    FaultMode::ExtremeMeasurements => Ok(vec![-1e30; n]),
                    FaultMode::WorkerAbort => {
                        if process_faults_armed() {
                            std::process::abort();
                        }
                        panic!("injected worker abort");
                    }
                    FaultMode::WorkerHang => {
                        if process_faults_armed() {
                            // Hang until the supervisor's deadline kills us.
                            loop {
                                std::thread::sleep(std::time::Duration::from_secs(3600));
                            }
                        }
                        Err(asdex_spice::SpiceError::Timeout { analysis: "op", iterations: 0 }
                            .into())
                    }
                    FaultMode::WorkerKill => {
                        if process_faults_armed() {
                            // Vanish without a reply, as a SIGKILL would.
                            std::process::exit(9);
                        }
                        panic!("injected worker kill");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::{toy_problem, ToyEvaluator};
    use crate::stats::FailureKind;

    fn wrapped(rate: f64, seed: u64) -> FaultInjectingEvaluator {
        FaultInjectingEvaluator::new(Arc::new(ToyEvaluator::new()), FaultConfig::new(rate, seed))
    }

    #[test]
    fn zero_rate_never_faults() {
        let e = wrapped(0.0, 1);
        for k in 0..50 {
            let x = vec![k as f64, 1.0];
            assert!(e.evaluate(&x, &PvtCorner::nominal()).is_ok());
        }
        assert_eq!(e.injected(), 0);
    }

    #[test]
    fn fault_rate_is_respected() {
        let e = wrapped(0.3, 7);
        let mut faulted = 0;
        for k in 0..1000 {
            let x = vec![k as f64 * 0.01, 0.5];
            let r = e.evaluate(&x, &PvtCorner::nominal());
            let bad = match &r {
                Err(_) => true,
                Ok(m) => m.len() != 2 || m.iter().any(|v| !v.is_finite()),
            };
            faulted += usize::from(bad);
        }
        assert!((200..400).contains(&faulted), "30% of 1000, got {faulted}");
        assert_eq!(e.injected(), faulted);
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = wrapped(0.5, 42);
        let b = wrapped(0.5, 42);
        // NaN-carrying results compare unequal under ==; compare the debug
        // form, which renders NaN stably.
        for k in 0..100 {
            let x = vec![k as f64 * 0.1, 2.0];
            let ra = format!("{:?}", a.evaluate(&x, &PvtCorner::nominal()));
            let rb = format!("{:?}", b.evaluate(&x, &PvtCorner::nominal()));
            assert_eq!(ra, rb);
        }
        // A different seed produces a different fault pattern.
        let c = wrapped(0.5, 43);
        let diff = (0..100).any(|k| {
            let x = vec![k as f64 * 0.1, 2.0];
            format!("{:?}", a.evaluate(&x, &PvtCorner::nominal()))
                != format!("{:?}", c.evaluate(&x, &PvtCorner::nominal()))
        });
        assert!(diff);
    }

    #[test]
    fn retry_attempts_redraw_the_fault() {
        let e = wrapped(0.5, 3);
        // Find a point that faults at attempt 0 but clears at some later
        // attempt — this is what makes ladder recoveries possible.
        let mut recovered = false;
        for k in 0..200 {
            let x = vec![k as f64 * 0.05, 1.0];
            let first = e.evaluate_with_effort(&x, &PvtCorner::nominal(), EvalEffort::attempt(0));
            let is_fault = |r: &Result<Vec<f64>, EnvError>| match r {
                Err(_) => true,
                Ok(m) => m.len() != 2 || m.iter().any(|v| !v.is_finite()),
            };
            if is_fault(&first) {
                let second =
                    e.evaluate_with_effort(&x, &PvtCorner::nominal(), EvalEffort::attempt(1));
                if !is_fault(&second) {
                    recovered = true;
                    break;
                }
            }
        }
        assert!(recovered, "some faulted point must clear on retry at 50% rate");
    }

    #[test]
    fn single_mode_injection() {
        let e = FaultInjectingEvaluator::new(
            Arc::new(ToyEvaluator::new()),
            FaultConfig::only(FaultMode::NanMeasurements, 1.0, 9),
        );
        let m = e.evaluate(&[1.0, 2.0], &PvtCorner::nominal()).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|v| v.is_nan()));
        let e = FaultInjectingEvaluator::new(
            Arc::new(ToyEvaluator::new()),
            FaultConfig::only(FaultMode::NoConvergence, 1.0, 9),
        );
        let err = e.evaluate(&[1.0, 2.0], &PvtCorner::nominal()).unwrap_err();
        assert_eq!(FailureKind::classify(&err), FailureKind::Injected);
    }

    #[test]
    fn extreme_measurements_are_finite_and_hostile() {
        let e = FaultInjectingEvaluator::new(
            Arc::new(ToyEvaluator::new()),
            FaultConfig::only(FaultMode::ExtremeMeasurements, 1.0, 11),
        );
        let m = e.evaluate(&[1.0, 2.0], &PvtCorner::nominal()).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|v| v.is_finite()), "extremes must pass finiteness checks");
        assert!(m.iter().all(|v| *v == -1e30));
    }

    #[test]
    fn default_mix_never_injects_extremes() {
        // The default chaos stream must stay bit-identical to prior
        // releases: extreme measurements are strictly opt-in.
        let e = wrapped(1.0, 13);
        for k in 0..200 {
            let x = vec![k as f64 * 0.03, 1.0];
            if let Ok(m) = e.evaluate(&x, &PvtCorner::nominal()) {
                assert!(m.iter().all(|v| *v != -1e30));
            }
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in FaultMode::ALL {
            assert_eq!(FaultMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(FaultMode::from_label("nope"), None);
    }

    #[test]
    fn unarmed_process_faults_degrade_to_typed_analogues() {
        // In a normal (supervisor/test) process the process-level modes
        // must NOT take the process down; they classify exactly like the
        // failure their armed counterpart produces at a supervisor.
        assert!(!process_faults_armed());
        let mut p = toy_problem();
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::only(FaultMode::WorkerAbort, 1.0, 17),
        ));
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(e.failure, Some(FailureKind::WorkerPanic));

        let mut p = toy_problem();
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::only(FaultMode::WorkerKill, 1.0, 17),
        ));
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(e.failure, Some(FailureKind::WorkerPanic));

        let mut p = toy_problem();
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::only(FaultMode::WorkerHang, 1.0, 17),
        ));
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert_eq!(e.failure, Some(FailureKind::Timeout));
    }

    #[test]
    fn default_mix_never_draws_process_faults() {
        // Same guarantee as extremes: the default stream is bit-identical
        // to prior releases, so zero-weight modes never fire.
        let e = wrapped(1.0, 29);
        let cfg = FaultConfig::new(1.0, 29);
        assert_eq!(&cfg.mode_weights[5..], &[0, 0, 0, 0]);
        for k in 0..200 {
            let x = vec![k as f64 * 0.03, 1.0];
            // Would abort/hang/kill the test process if ever drawn armed —
            // and is caught as a panic or typed error when unarmed. A
            // normal result or one of the four default corruptions is the
            // only acceptable outcome.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                e.evaluate(&x, &PvtCorner::nominal())
            }));
            match r.expect("default mix never panics") {
                Ok(m) => assert!(m.iter().all(|v| *v != -1e30)),
                Err(err) => assert!(
                    !matches!(FailureKind::classify(&err), FailureKind::Timeout),
                    "default mix drew a worker-hang"
                ),
            }
        }
    }

    #[test]
    fn wrapping_a_problem_classifies_injections() {
        let mut p = toy_problem();
        p.evaluator = Arc::new(FaultInjectingEvaluator::new(
            p.evaluator.clone(),
            FaultConfig::only(FaultMode::WrongDimension, 1.0, 5),
        ));
        let e = p.evaluate_normalized(&[0.8, 0.8], 0);
        assert!(!e.feasible);
        assert_eq!(e.failure, Some(FailureKind::InvalidInput), "wrong-dim output is typed");
    }
}
