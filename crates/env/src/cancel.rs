//! Cooperative cancellation for long-running campaigns — the drain hook
//! the serving layer pulls when it must stop a campaign *now* without
//! corrupting its checkpoint journal.
//!
//! A [`CancelToken`] is a cheap shared flag. Attach one to a
//! [`crate::SizingProblem`] with [`crate::SizingProblem::with_cancel_token`]
//! and every subsequent [`crate::SizingProblem::evaluate_batch`] call
//! checks it *at batch entry*: once cancelled, no further simulator calls
//! are issued — instead each admitted request comes back as a typed
//! [`crate::FailureKind::Cancelled`] failure that **charges its reserved
//! budget**. Charging matters: every agent terminates through its own
//! `sims < max_sims` accounting, so draining budget (rather than
//! returning an empty batch) winds any agent down within one pass over
//! its remaining budget instead of spinning forever.
//!
//! Two properties make cancellation safe to combine with crash-safe
//! journals:
//!
//! 1. Cancelled evaluations are **never recorded to a journal** — the
//!    journal only ever holds real simulator outcomes, so resuming a
//!    drained campaign replays exactly the work that was done and then
//!    continues live, reaching the same [`crate::SearchOutcome`] an
//!    uninterrupted run produces.
//! 2. Cancellation only takes effect at batch boundaries — a batch that
//!    already started completes and is journaled normally, so there is no
//!    half-finalized state to reason about.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag (clone-cheap, thread-safe).
///
/// Cancellation is one-way: once [`CancelToken::cancel`] is called the
/// token stays cancelled for every clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Flips the token; every holder observes it on their next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_is_shared_and_one_way() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled(), "clones share the flag");
        assert!(b.is_cancelled());
    }
}
