//! Failure taxonomy and evaluation telemetry.
//!
//! Every simulation attempt either succeeds or fails for a *typed* reason
//! ([`FailureKind`]). Agents accumulate an [`EvalStats`] record as they
//! search so outcomes can report exactly how many simulator calls were
//! spent, how many failed and why, and how many failing points were
//! recovered by the retry ladder — the telemetry a production deployment
//! needs to distinguish a hostile corner of the design space from a broken
//! simulator.

use crate::error::EnvError;
use asdex_spice::SpiceError;
use std::fmt;

/// Why a simulation attempt failed. Classified from the underlying error
/// so callers never need to match on error internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The Newton–Raphson iteration did not converge (even after gmin and
    /// source stepping). Often transient — the retry ladder re-attempts
    /// these with escalated options.
    NoConvergence,
    /// The MNA system was singular (floating node, source loop). Retried
    /// once with a perturbed initial guess, since near-singular systems can
    /// be an artifact of the starting point.
    Singular,
    /// The solve watchdog (`asdex_spice::SolveBudget`) expired before the
    /// analysis converged. Retried — the ladder escalates the budget
    /// together with the solver effort, so a later rung gets more headroom.
    Timeout,
    /// A solution or measurement contained NaN/Inf. Not retried — the same
    /// inputs deterministically produce the same non-finite result.
    NonFinite,
    /// The inputs were malformed (wrong dimension, out-of-range corner
    /// index, un-snappable point). Never retried.
    InvalidInput,
    /// A fault injected by a chaos-testing wrapper.
    Injected,
    /// The evaluator panicked inside a worker. The panic is caught at the
    /// isolation boundary (it never poisons the thread pool) and converted
    /// into this kind; retried, and quarantined after repeated panics.
    WorkerPanic,
    /// The campaign's [`crate::CancelToken`] was pulled before this
    /// request ran. The reserved budget is charged (so agents wind down
    /// through their normal accounting) but the simulator is never
    /// invoked and the outcome is never journaled — resuming the campaign
    /// re-runs this request live. Never retried.
    Cancelled,
    /// Any other evaluator-specific failure.
    Other,
}

impl FailureKind {
    /// Classifies an environment error into the taxonomy.
    pub fn classify(err: &EnvError) -> FailureKind {
        match err {
            EnvError::Simulation(s) => FailureKind::classify_spice(s),
            EnvError::Injected { .. } => FailureKind::Injected,
            EnvError::DimensionMismatch { .. }
            | EnvError::InvalidSpace { .. }
            | EnvError::InvalidProblem { .. } => FailureKind::InvalidInput,
        }
    }

    /// Classifies a simulator error into the taxonomy.
    pub fn classify_spice(err: &SpiceError) -> FailureKind {
        match err {
            SpiceError::NoConvergence { .. } => FailureKind::NoConvergence,
            SpiceError::Singular(_) => FailureKind::Singular,
            SpiceError::Timeout { .. } => FailureKind::Timeout,
            SpiceError::NonFinite { .. } => FailureKind::NonFinite,
            SpiceError::UnknownModel { .. }
            | SpiceError::InvalidParameter { .. }
            | SpiceError::Parse(_)
            | SpiceError::UnknownNode { .. }
            | SpiceError::BadSweep { .. } => FailureKind::InvalidInput,
        }
    }

    /// Whether the retry ladder should re-attempt this failure with
    /// escalated solver effort.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            FailureKind::NoConvergence
                | FailureKind::Singular
                | FailureKind::Timeout
                | FailureKind::Injected
                | FailureKind::WorkerPanic
        )
    }

    /// Stable lowercase label for reports and the checkpoint journal.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::NoConvergence => "no-convergence",
            FailureKind::Singular => "singular",
            FailureKind::Timeout => "timeout",
            FailureKind::NonFinite => "non-finite",
            FailureKind::InvalidInput => "invalid-input",
            FailureKind::Injected => "injected",
            FailureKind::WorkerPanic => "worker-panic",
            FailureKind::Cancelled => "cancelled",
            FailureKind::Other => "other",
        }
    }

    /// Inverse of [`FailureKind::label`], used when replaying a checkpoint
    /// journal. `None` for an unknown label (e.g. a journal written by a
    /// newer taxonomy).
    pub fn from_label(label: &str) -> Option<FailureKind> {
        FailureKind::ALL.iter().copied().find(|k| k.label() == label)
    }

    /// All kinds, in display order.
    pub const ALL: [FailureKind; 9] = [
        FailureKind::NoConvergence,
        FailureKind::Singular,
        FailureKind::Timeout,
        FailureKind::NonFinite,
        FailureKind::InvalidInput,
        FailureKind::Injected,
        FailureKind::WorkerPanic,
        FailureKind::Cancelled,
        FailureKind::Other,
    ];
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Telemetry accumulated over a search: simulator calls, failures by kind,
/// retry-ladder activity, and silent-fallback counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Total simulator calls issued, **including** retries. This is the
    /// quantity budgeted by `SearchBudget::max_sims`.
    pub sims: usize,
    /// Design points whose final (post-retry) outcome was a failure,
    /// bucketed by kind (indexed as [`FailureKind::ALL`]).
    failures: [usize; 9],
    /// Extra attempts issued by the retry ladder beyond the first try.
    pub retries: usize,
    /// Points that failed at least once but succeeded within the ladder.
    pub recoveries: usize,
    /// Out-of-grid points silently snapped to a fallback location instead
    /// of surfacing the snap error.
    pub snap_fallbacks: usize,
    /// Journal appends that failed and were degraded to a shorter resume
    /// point instead of failing the evaluation. Zero on healthy storage.
    pub journal_drops: usize,
}

impl EvalStats {
    /// A zeroed record.
    pub fn new() -> Self {
        EvalStats::default()
    }

    /// Counts one terminal failure of `kind`.
    pub fn count_failure(&mut self, kind: FailureKind) {
        let idx = FailureKind::ALL.iter().position(|k| *k == kind).expect("kind in ALL");
        self.failures[idx] += 1;
    }

    /// Terminal failures of one kind.
    pub fn failures_of(&self, kind: FailureKind) -> usize {
        let idx = FailureKind::ALL.iter().position(|k| *k == kind).expect("kind in ALL");
        self.failures[idx]
    }

    /// Terminal failures across all kinds.
    pub fn total_failures(&self) -> usize {
        self.failures.iter().sum()
    }

    /// Folds one evaluation outcome into the record: its simulator cost,
    /// its terminal failure kind (if any), and its retry/recovery tally.
    pub fn record(&mut self, e: &crate::problem::Evaluation) {
        self.sims += e.sim_cost.max(1);
        self.retries += e.sim_cost.saturating_sub(1);
        if let Some(kind) = e.failure {
            self.count_failure(kind);
        } else if e.sim_cost > 1 {
            self.recoveries += 1;
        }
    }

    /// Merges another record into this one (e.g. per-corner sub-searches).
    pub fn merge(&mut self, other: &EvalStats) {
        self.sims += other.sims;
        for (a, b) in self.failures.iter_mut().zip(other.failures.iter()) {
            *a += b;
        }
        self.retries += other.retries;
        self.recoveries += other.recoveries;
        self.snap_fallbacks += other.snap_fallbacks;
        self.journal_drops += other.journal_drops;
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sims {} | failures {} | retries {} | recoveries {} | snap-fallbacks {}",
            self.sims,
            self.total_failures(),
            self.retries,
            self.recoveries,
            self.snap_fallbacks
        )?;
        if self.journal_drops > 0 {
            write!(f, " | journal-drops {}", self.journal_drops)?;
        }
        let by_kind: Vec<String> = FailureKind::ALL
            .iter()
            .filter(|k| self.failures_of(**k) > 0)
            .map(|k| format!("{}: {}", k.label(), self.failures_of(*k)))
            .collect();
        if !by_kind.is_empty() {
            write!(f, " [{}]", by_kind.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_spice::SolveError;

    #[test]
    fn classification_covers_the_taxonomy() {
        let nc = SpiceError::NoConvergence { analysis: "op", iterations: 99 };
        assert_eq!(FailureKind::classify_spice(&nc), FailureKind::NoConvergence);
        let sg = SpiceError::Singular(SolveError::Singular { step: 0 });
        assert_eq!(FailureKind::classify_spice(&sg), FailureKind::Singular);
        let nf = SpiceError::NonFinite { what: "op solution".into() };
        assert_eq!(FailureKind::classify_spice(&nf), FailureKind::NonFinite);
        let dim = EnvError::DimensionMismatch { expected: 3, actual: 2 };
        assert_eq!(FailureKind::classify(&dim), FailureKind::InvalidInput);
        let sim: EnvError = nc.into();
        assert_eq!(FailureKind::classify(&sim), FailureKind::NoConvergence);
    }

    #[test]
    fn retryability() {
        assert!(FailureKind::NoConvergence.is_retryable());
        assert!(FailureKind::Singular.is_retryable());
        assert!(FailureKind::Timeout.is_retryable());
        assert!(FailureKind::Injected.is_retryable());
        assert!(FailureKind::WorkerPanic.is_retryable());
        assert!(!FailureKind::NonFinite.is_retryable());
        assert!(!FailureKind::InvalidInput.is_retryable());
    }

    #[test]
    fn labels_round_trip() {
        for kind in FailureKind::ALL {
            assert_eq!(FailureKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FailureKind::from_label("not-a-kind"), None);
    }

    #[test]
    fn timeout_classifies_from_spice() {
        let to = SpiceError::Timeout { analysis: "op", iterations: 42 };
        assert_eq!(FailureKind::classify_spice(&to), FailureKind::Timeout);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = EvalStats::new();
        a.sims = 3;
        a.count_failure(FailureKind::NoConvergence);
        let mut b = EvalStats::new();
        b.sims = 2;
        b.retries = 1;
        b.count_failure(FailureKind::NoConvergence);
        b.count_failure(FailureKind::NonFinite);
        a.merge(&b);
        assert_eq!(a.sims, 5);
        assert_eq!(a.retries, 1);
        assert_eq!(a.failures_of(FailureKind::NoConvergence), 2);
        assert_eq!(a.total_failures(), 3);
    }

    #[test]
    fn display_lists_nonzero_kinds() {
        let mut s = EvalStats::new();
        s.sims = 10;
        s.count_failure(FailureKind::Injected);
        let text = s.to_string();
        assert!(text.contains("sims 10"));
        assert!(text.contains("injected: 1"));
        assert!(!text.contains("singular:"));
    }
}
