//! Sizing environments for analog design-space exploration.
//!
//! `asdex-env` implements the problem-formulation layer of the DAC 2021
//! paper (§III, §IV-A, §IV-D, §IV-E):
//!
//! * [`space::DesignSpace`] — discrete per-parameter grids, the CSP
//!   domains of eq. (2), with normalized-coordinate maps,
//! * [`spec::SpecSet`] — the constraints `C = (t, r)`,
//! * [`value::ValueFn`] — the sum-of-normalized-measurements value
//!   function (§IV-D),
//! * [`corner::PvtSet`] — process/voltage/temperature corners (§IV-E),
//! * [`problem::SizingProblem`] — the standardized API every agent
//!   consumes (§IV-F),
//! * [`circuits`] — the paper's benchmark circuits: the two-stage Miller
//!   opamp (45/22 nm), the LDO (n6), the ICO (n5), and synthetic
//!   landscapes for fast tests, and
//! * the fault-tolerant evaluation layer: [`stats::FailureKind`] /
//!   [`stats::EvalStats`] (failure taxonomy + telemetry),
//!   [`robust::RetryPolicy`] (the escalating retry ladder), and
//!   [`fault::FaultInjectingEvaluator`] (deterministic chaos testing), and
//! * the batched evaluation pipeline: [`batch::EvalRequest`] /
//!   [`problem::SizingProblem::evaluate_batch`], a deterministic
//!   scoped-thread worker pool (`ASDEX_THREADS`) with budget-exact
//!   admission,
//! * the cross-campaign dedup layer: [`evalstore::EvalStore`], a shared
//!   single-flight result store keyed by the journal's bitwise replay key
//!   ((point-bits, corner, attempt-cap)) so concurrent campaigns wait on
//!   in-flight evaluations instead of recomputing them, and
//! * the crash-safety layer: [`journal::Journal`] (append-only
//!   checkpoint/resume journal with bitwise-faithful replay), worker
//!   panic isolation with quarantine
//!   ([`stats::FailureKind::WorkerPanic`]), and the solve watchdog
//!   surfaced as [`stats::FailureKind::Timeout`].
//!
//! # Example
//!
//! ```no_run
//! use asdex_env::circuits::opamp::TwoStageOpamp;
//!
//! # fn main() -> Result<(), asdex_env::EnvError> {
//! let problem = TwoStageOpamp::bsim45().problem()?;
//! let eval = problem.evaluate_normalized(&vec![0.5; problem.dim()], 0);
//! println!("value = {}", eval.value);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cancel;
pub mod circuits;
pub mod corner;
pub mod dispatch;
mod error;
pub mod evalstore;
pub mod fault;
pub mod health;
pub mod journal;
pub mod netbench;
pub mod problem;
pub mod robust;
pub mod search;
pub mod space;
pub mod spec;
pub mod stats;
pub mod value;

pub use batch::EvalRequest;
pub use cancel::CancelToken;
pub use corner::{PvtCorner, PvtSet};
pub use dispatch::{run_attempt, EvalDispatcher};
pub use error::EnvError;
pub use evalstore::{EvalStore, EvalStoreStats};
pub use fault::{
    arm_process_faults, process_faults_armed, FaultConfig, FaultInjectingEvaluator, FaultMode,
};
pub use health::HealthStats;
pub use journal::{path_salt, DiskFault, DiskFaultKind, Journal, JournalError, JournalMeta};
pub use netbench::{netlist_digest, NetbenchError, NetlistBench, NetlistEvaluator};
pub use problem::{Evaluation, Evaluator, SizingProblem};
pub use robust::{EvalEffort, RetryPolicy, RobustEvaluator};
pub use search::{SearchBudget, SearchOutcome, Searcher};
pub use space::{DesignSpace, Param};
pub use spec::{Spec, SpecKind, SpecSet};
pub use stats::{EvalStats, FailureKind};
pub use value::{StagedValueFn, ValueFn};
