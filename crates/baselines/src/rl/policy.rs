//! Multi-discrete softmax policy and value heads shared by A2C, PPO, and
//! TRPO.
//!
//! The policy network maps an observation to `3 × n_heads` logits — one
//! {down, stay, up} categorical per sizing parameter. Head log-probs sum
//! into the joint action log-prob; gradients w.r.t. the logits are
//! assembled per head and pushed through the shared [`Mlp`].

use asdex_nn::{
    entropy, entropy_grad, kl_divergence, kl_grad_new, log_prob_grad, log_softmax,
    sample_categorical, Activation, Gradients, Mlp,
};
use asdex_rng::Rng;

/// Number of moves per head (down / stay / up).
pub const MOVES: usize = 3;

/// A sampled action with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionSample {
    /// One move index per head.
    pub actions: Vec<usize>,
    /// Joint log-probability under the sampling policy.
    pub log_prob: f64,
    /// The raw logits (needed by PPO/TRPO as the "old" distribution).
    pub logits: Vec<f64>,
}

/// The multi-discrete policy.
#[derive(Debug, Clone)]
pub struct Policy {
    net: Mlp,
    n_heads: usize,
}

impl Policy {
    /// Creates a policy for `obs_dim` observations and `n_heads` action
    /// heads with the given hidden width.
    pub fn new<R: Rng + ?Sized>(obs_dim: usize, n_heads: usize, hidden: usize, rng: &mut R) -> Self {
        Policy {
            net: Mlp::new(&[obs_dim, hidden, hidden, n_heads * MOVES], Activation::Tanh, rng),
            n_heads,
        }
    }

    /// Number of action heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Raw logits for an observation.
    pub fn logits(&self, obs: &[f64]) -> Vec<f64> {
        self.net.forward(obs)
    }

    /// Samples an action.
    pub fn act<R: Rng + ?Sized>(&self, obs: &[f64], rng: &mut R) -> ActionSample {
        let logits = self.logits(obs);
        let mut actions = Vec::with_capacity(self.n_heads);
        let mut log_prob = 0.0;
        for h in 0..self.n_heads {
            let head = &logits[h * MOVES..(h + 1) * MOVES];
            let a = sample_categorical(head, rng);
            log_prob += log_softmax(head)[a];
            actions.push(a);
        }
        ActionSample { actions, log_prob, logits }
    }

    /// Deterministic (argmax) action — used by the paper-style evaluation
    /// protocol where a *trained* policy must solve the task.
    pub fn act_greedy(&self, obs: &[f64]) -> Vec<usize> {
        let logits = self.logits(obs);
        (0..self.n_heads)
            .map(|h| {
                let head = &logits[h * MOVES..(h + 1) * MOVES];
                head.iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("nonempty head")
            })
            .collect()
    }

    /// Joint log-probability of `actions` under the logits produced for
    /// `obs`.
    pub fn log_prob(&self, obs: &[f64], actions: &[usize]) -> f64 {
        Self::log_prob_of(&self.logits(obs), actions)
    }

    /// Joint log-probability given precomputed logits.
    pub fn log_prob_of(logits: &[f64], actions: &[usize]) -> f64 {
        actions
            .iter()
            .enumerate()
            .map(|(h, &a)| log_softmax(&logits[h * MOVES..(h + 1) * MOVES])[a])
            .sum()
    }

    /// Mean per-head entropy of the policy at `obs`.
    pub fn entropy(&self, obs: &[f64]) -> f64 {
        let logits = self.logits(obs);
        (0..self.n_heads)
            .map(|h| entropy(&logits[h * MOVES..(h + 1) * MOVES]))
            .sum::<f64>()
            / self.n_heads as f64
    }

    /// Joint KL between an old logits vector and the current policy at
    /// `obs` (sum over heads).
    pub fn kl_from(&self, obs: &[f64], old_logits: &[f64]) -> f64 {
        let logits = self.logits(obs);
        (0..self.n_heads)
            .map(|h| {
                kl_divergence(
                    &old_logits[h * MOVES..(h + 1) * MOVES],
                    &logits[h * MOVES..(h + 1) * MOVES],
                )
            })
            .sum()
    }

    /// Gradient of a scalar loss w.r.t. parameters, where the caller
    /// supplies `dL/dlogits` as a closure over the forward logits.
    pub fn grad_with<F>(&self, obs: &[f64], make_dlogits: F) -> Gradients
    where
        F: FnOnce(&[f64]) -> Vec<f64>,
    {
        let trace = self.net.forward_trace(obs);
        let dlogits = make_dlogits(trace.output());
        self.net.backward(&trace, &dlogits)
    }

    /// Gradient of `−logπ(actions)·scale − ent_coef·H` w.r.t. parameters —
    /// the generic policy-gradient loss (A2C uses `scale = advantage`).
    pub fn policy_gradient(&self, obs: &[f64], actions: &[usize], scale: f64, ent_coef: f64) -> Gradients {
        let n_heads = self.n_heads;
        self.grad_with(obs, |logits| {
            let mut d = vec![0.0; logits.len()];
            for (h, &a) in actions.iter().enumerate().take(n_heads) {
                let head = &logits[h * MOVES..(h + 1) * MOVES];
                let lp = log_prob_grad(head, a);
                let ent = entropy_grad(head);
                for k in 0..MOVES {
                    d[h * MOVES + k] = -scale * lp[k] - ent_coef * ent[k] / n_heads as f64;
                }
            }
            d
        })
    }

    /// Gradient of the joint `KL(old ‖ current)` w.r.t. parameters (TRPO's
    /// Fisher-vector products differentiate this).
    pub fn kl_gradient(&self, obs: &[f64], old_logits: &[f64]) -> Gradients {
        let n_heads = self.n_heads;
        self.grad_with(obs, |logits| {
            let mut d = vec![0.0; logits.len()];
            for h in 0..n_heads {
                let g = kl_grad_new(
                    &old_logits[h * MOVES..(h + 1) * MOVES],
                    &logits[h * MOVES..(h + 1) * MOVES],
                );
                d[h * MOVES..(h + 1) * MOVES].copy_from_slice(&g);
            }
            d
        })
    }

    /// Flattened parameters (TRPO line search).
    pub fn flat_params(&self) -> Vec<f64> {
        self.net.flat_params()
    }

    /// Overwrites parameters (TRPO line search).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_flat_params(&mut self, p: &[f64]) {
        self.net.set_flat_params(p);
    }

    /// Mutable access to the underlying network for optimizer steps.
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }
}

/// A scalar state-value network.
#[derive(Debug, Clone)]
pub struct ValueNet {
    net: Mlp,
}

impl ValueNet {
    /// Creates a value net for `obs_dim` observations.
    pub fn new<R: Rng + ?Sized>(obs_dim: usize, hidden: usize, rng: &mut R) -> Self {
        ValueNet { net: Mlp::new(&[obs_dim, hidden, hidden, 1], Activation::Tanh, rng) }
    }

    /// Predicted value of an observation.
    pub fn value(&self, obs: &[f64]) -> f64 {
        self.net.forward(obs)[0]
    }

    /// Gradient of `(V(obs) − target)²` w.r.t. parameters.
    pub fn td_gradient(&self, obs: &[f64], target: f64) -> Gradients {
        let trace = self.net.forward_trace(obs);
        let err = trace.output()[0] - target;
        self.net.backward(&trace, &[2.0 * err])
    }

    /// Flattened parameters (health snapshots).
    pub fn flat_params(&self) -> Vec<f64> {
        self.net.flat_params()
    }

    /// Overwrites parameters (health rollback).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_flat_params(&mut self, p: &[f64]) {
        self.net.set_flat_params(p);
    }

    /// Mutable access for optimizer steps.
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_rng::rngs::StdRng;
    use asdex_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn logits_shape() {
        let p = Policy::new(4, 3, 16, &mut rng());
        assert_eq!(p.logits(&[0.0; 4]).len(), 9);
        assert_eq!(p.n_heads(), 3);
    }

    #[test]
    fn action_sample_consistency() {
        let p = Policy::new(4, 2, 16, &mut rng());
        let mut r = rng();
        let obs = [0.1, 0.2, 0.3, 0.4];
        let s = p.act(&obs, &mut r);
        assert_eq!(s.actions.len(), 2);
        assert!(s.actions.iter().all(|&a| a < MOVES));
        let lp = p.log_prob(&obs, &s.actions);
        assert!((lp - s.log_prob).abs() < 1e-12);
        assert!(lp < 0.0);
    }

    #[test]
    fn entropy_positive_at_init() {
        let p = Policy::new(4, 3, 16, &mut rng());
        let h = p.entropy(&[0.0; 4]);
        assert!(h > 0.5, "near-uniform init entropy {h}");
    }

    #[test]
    fn kl_zero_against_self() {
        let p = Policy::new(3, 2, 8, &mut rng());
        let obs = [0.5, -0.5, 0.1];
        let logits = p.logits(&obs);
        assert!(p.kl_from(&obs, &logits).abs() < 1e-12);
    }

    #[test]
    fn policy_gradient_increases_chosen_action_prob() {
        let mut p = Policy::new(3, 2, 16, &mut rng());
        let obs = [0.3, -0.1, 0.8];
        let actions = vec![2usize, 0usize];
        let lp_before = p.log_prob(&obs, &actions);
        // Positive advantage: gradient of −logπ·adv, stepping *against* it
        // (i.e. applying −grad) raises the log-prob.
        for _ in 0..50 {
            let g = p.policy_gradient(&obs, &actions, 1.0, 0.0);
            p.net_mut().apply_flat_delta(g.flat(), -0.05);
        }
        let lp_after = p.log_prob(&obs, &actions);
        assert!(lp_after > lp_before, "{lp_after} vs {lp_before}");
    }

    #[test]
    fn kl_gradient_matches_fd() {
        let mut p = Policy::new(3, 2, 8, &mut rng());
        let obs = [0.2, 0.4, -0.6];
        let old = p.logits(&obs);
        // Perturb the policy so KL is nonzero.
        let mut params = p.flat_params();
        for (k, v) in params.iter_mut().enumerate() {
            *v += 0.01 * ((k % 7) as f64 - 3.0);
        }
        p.set_flat_params(&params);
        let g = p.kl_gradient(&obs, &old);
        let h = 1e-6;
        for k in (0..params.len()).step_by(17) {
            let mut up = params.clone();
            up[k] += h;
            let mut pp = p.clone();
            pp.set_flat_params(&up);
            let kl_up = pp.kl_from(&obs, &old);
            let mut dn = params.clone();
            dn[k] -= h;
            pp.set_flat_params(&dn);
            let kl_dn = pp.kl_from(&obs, &old);
            let fd = (kl_up - kl_dn) / (2.0 * h);
            assert!((g.flat()[k] - fd).abs() < 1e-6 * (1.0 + fd.abs()), "param {k}");
        }
    }

    #[test]
    fn value_net_learns_constant() {
        let mut v = ValueNet::new(2, 16, &mut rng());
        for _ in 0..300 {
            let g = v.td_gradient(&[0.5, 0.5], 3.0);
            v.net_mut().apply_flat_delta(g.flat(), -0.01);
        }
        assert!((v.value(&[0.5, 0.5]) - 3.0).abs() < 0.1);
    }
}
