//! AutoCkt-style RL environment over a sizing problem.
//!
//! The paper's model-free baselines "follow the same observation design in
//! AutoCkt": the state is the current normalized sizing vector plus the
//! normalized distance of each measurement to its spec, the action is a
//! per-parameter {down, stay, up} grid move, and the reward is the same
//! value function the model-based agent ranks candidates with.

use asdex_env::{EvalRequest, EvalStats, SizingProblem};
use asdex_rng::Rng;

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Observation after the step.
    pub obs: Vec<f64>,
    /// Reward (value, plus a bonus when every spec is met).
    pub reward: f64,
    /// Episode termination (feasible point or horizon).
    pub done: bool,
    /// `true` when the new point satisfies every spec.
    pub feasible: bool,
}

/// Episode-based sizing environment with a simulation meter.
#[derive(Debug, Clone)]
pub struct SizingEnv<'p> {
    problem: &'p SizingProblem,
    /// Episode horizon.
    pub max_steps: usize,
    /// Reward bonus on reaching a feasible point (AutoCkt uses +10).
    pub feasible_bonus: f64,
    /// Grid indices moved per ±1 action on each axis.
    strides: Vec<usize>,
    grid_lens: Vec<usize>,
    state: Vec<usize>,
    steps_in_episode: usize,
    stats: EvalStats,
    budget: usize,
    first_feasible_sim: Option<usize>,
    best_value: f64,
    best_point: Vec<f64>,
    last_feasible: bool,
}

impl<'p> SizingEnv<'p> {
    /// Wraps a problem with the given episode horizon and no simulation
    /// cap.
    pub fn new(problem: &'p SizingProblem, max_steps: usize) -> Self {
        Self::with_budget(problem, max_steps, usize::MAX)
    }

    /// Wraps a problem with a hard simulation cap: once `max_sims`
    /// simulator calls (retries included) have been issued, further
    /// observations are served without simulating, so `sims()` can never
    /// exceed the cap no matter how episodes align with the budget.
    pub fn with_budget(problem: &'p SizingProblem, max_steps: usize, max_sims: usize) -> Self {
        let grid_lens: Vec<usize> = problem.space.params().iter().map(|p| p.len()).collect();
        // Stride so ~20 moves cross an axis, at least one grid point.
        let strides = grid_lens.iter().map(|&n| (n / 20).max(1)).collect();
        SizingEnv {
            problem,
            max_steps,
            feasible_bonus: 10.0,
            strides,
            grid_lens,
            state: Vec::new(),
            steps_in_episode: 0,
            stats: EvalStats::new(),
            budget: max_sims,
            first_feasible_sim: None,
            best_value: f64::NEG_INFINITY,
            best_point: Vec::new(),
            last_feasible: false,
        }
    }

    /// Observation dimension: parameters + one slack per spec.
    pub fn obs_dim(&self) -> usize {
        self.problem.dim() + self.problem.specs.len()
    }

    /// Number of action heads (= parameters); each head picks one of 3
    /// moves.
    pub fn n_heads(&self) -> usize {
        self.problem.dim()
    }

    /// Total simulator invocations so far (retries included).
    pub fn sims(&self) -> usize {
        self.stats.sims
    }

    /// Telemetry accumulated over every evaluation this env has issued.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Simulation index at which the first feasible point appeared.
    pub fn first_feasible_sim(&self) -> Option<usize> {
        self.first_feasible_sim
    }

    /// Best value and point seen so far.
    pub fn best(&self) -> (f64, &[f64]) {
        (self.best_value, &self.best_point)
    }

    /// Whether the most recent evaluation (reset or step) was feasible.
    pub fn last_feasible(&self) -> bool {
        self.last_feasible
    }

    fn normalized_state(&self) -> Vec<f64> {
        self.state
            .iter()
            .zip(self.problem.space.params())
            .map(|(&i, p)| p.normalized_of_index(i))
            .collect()
    }

    fn observe(&mut self) -> (Vec<f64>, f64, bool) {
        let u = self.normalized_state();
        let remaining = self.budget.saturating_sub(self.stats.sims);
        if remaining == 0 {
            // Budget exhausted: issue no simulation. The point reads as a
            // plain (finite) failure so in-flight rollouts stay numerically
            // sane while the agent's budget check stops the search.
            self.last_feasible = false;
            let mut obs = u;
            obs.extend(vec![-1.0; self.problem.specs.len()]);
            let value = self.problem.value_fn.failure_value(&self.problem.specs);
            return (obs, value, false);
        }
        // Single-request batch through the shared pipeline; `remaining`
        // is at least 1 here, so the request is always admitted.
        let Some(e) = self
            .problem
            .evaluate_batch(&[EvalRequest::new(u.clone(), 0)], remaining)
            .pop()
        else {
            self.last_feasible = false;
            let mut obs = u;
            obs.extend(vec![-1.0; self.problem.specs.len()]);
            let value = self.problem.value_fn.failure_value(&self.problem.specs);
            return (obs, value, false);
        };
        self.stats.record(&e);
        if e.value > self.best_value {
            self.best_value = e.value;
            self.best_point = e.x_norm.clone();
        }
        if e.feasible && self.first_feasible_sim.is_none() {
            self.first_feasible_sim = Some(self.stats.sims);
        }
        // Per-spec normalized slack (unclipped, bounded to ±1).
        let slacks: Vec<f64> = match &e.measurements {
            Some(meas) => self
                .problem
                .specs
                .specs()
                .iter()
                .map(|s| {
                    let m = meas[s.measurement];
                    (s.slack(m) / (m.abs() + s.target.abs() + 1e-12)).clamp(-1.0, 1.0)
                })
                .collect(),
            None => vec![-1.0; self.problem.specs.len()],
        };
        self.last_feasible = e.feasible;
        let mut obs = u;
        obs.extend(slacks);
        (obs, e.value, e.feasible)
    }

    /// Starts a new episode at a random grid point (costs one
    /// simulation). Returns the initial observation.
    pub fn reset<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        self.state = self.grid_lens.iter().map(|&n| rng.gen_range(0..n)).collect();
        self.steps_in_episode = 0;
        let (obs, _, _) = self.observe();
        obs
    }

    /// Applies a multi-discrete action (`0` = down, `1` = stay, `2` = up
    /// per head) and simulates the new point.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len() != self.n_heads()` or the episode was not
    /// reset.
    pub fn step(&mut self, actions: &[usize]) -> StepResult {
        assert_eq!(actions.len(), self.n_heads(), "action dimension mismatch");
        assert!(!self.state.is_empty(), "call reset before step");
        for (k, &a) in actions.iter().enumerate() {
            let stride = self.strides[k] as isize;
            let delta = match a {
                0 => -stride,
                1 => 0,
                _ => stride,
            };
            let next = self.state[k] as isize + delta;
            self.state[k] = next.clamp(0, self.grid_lens[k] as isize - 1) as usize;
        }
        self.steps_in_episode += 1;
        let (obs, value, feasible) = self.observe();
        let reward = value + if feasible { self.feasible_bonus } else { 0.0 };
        let done = feasible || self.steps_in_episode >= self.max_steps;
        StepResult { obs, reward, done, feasible }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_env::circuits::synthetic::Bowl;
    use asdex_rng::rngs::StdRng;
    use asdex_rng::SeedableRng;

    #[test]
    fn dimensions() {
        let problem = Bowl::problem(3, 0.2).unwrap();
        let env = SizingEnv::new(&problem, 20);
        assert_eq!(env.obs_dim(), 3 + 1);
        assert_eq!(env.n_heads(), 3);
    }

    #[test]
    fn reset_and_step_count_sims() {
        let problem = Bowl::problem(2, 0.2).unwrap();
        let mut env = SizingEnv::new(&problem, 5);
        let mut rng = StdRng::seed_from_u64(0);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.len(), env.obs_dim());
        assert_eq!(env.sims(), 1);
        let r = env.step(&[1, 1]);
        assert_eq!(env.sims(), 2);
        assert_eq!(r.obs.len(), env.obs_dim());
    }

    #[test]
    fn actions_move_the_state() {
        let problem = Bowl::problem(2, 0.2).unwrap();
        let mut env = SizingEnv::new(&problem, 50);
        let mut rng = StdRng::seed_from_u64(3);
        let obs0 = env.reset(&mut rng);
        let r = env.step(&[2, 0]);
        // x0 went up, x1 went down (unless clamped at a boundary).
        assert!(r.obs[0] >= obs0[0]);
        assert!(r.obs[1] <= obs0[1]);
    }

    #[test]
    fn horizon_terminates_episode() {
        let problem = Bowl::problem(2, 0.0001).unwrap(); // infeasible
        let mut env = SizingEnv::new(&problem, 3);
        let mut rng = StdRng::seed_from_u64(1);
        env.reset(&mut rng);
        assert!(!env.step(&[1, 1]).done);
        assert!(!env.step(&[1, 1]).done);
        assert!(env.step(&[1, 1]).done, "horizon reached");
    }

    #[test]
    fn feasible_gives_bonus_and_done() {
        let problem = Bowl::problem(2, 0.9).unwrap(); // nearly everywhere feasible
        let mut env = SizingEnv::new(&problem, 50);
        let mut rng = StdRng::seed_from_u64(1);
        env.reset(&mut rng);
        let r = env.step(&[1, 1]);
        assert!(r.feasible);
        assert!(r.done);
        assert!(r.reward > 5.0, "bonus applied: {}", r.reward);
        assert!(env.first_feasible_sim().is_some());
    }

    #[test]
    fn budget_cap_is_a_hard_ceiling() {
        let problem = Bowl::problem(2, 0.0001).unwrap(); // infeasible
        let mut env = SizingEnv::with_budget(&problem, 4, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let mut obs = env.reset(&mut rng);
        for _ in 0..30 {
            let r = env.step(&[1, 1]);
            assert!(r.reward.is_finite(), "capped observations stay finite");
            assert_eq!(r.obs.len(), env.obs_dim());
            obs = if r.done { env.reset(&mut rng) } else { r.obs };
        }
        let _ = obs;
        assert_eq!(env.sims(), 6, "exactly the cap, never beyond");
        assert_eq!(env.stats().sims, 6);
    }

    #[test]
    fn state_clamps_at_boundaries() {
        let problem = Bowl::problem(1, 0.2).unwrap();
        let mut env = SizingEnv::new(&problem, 1000);
        let mut rng = StdRng::seed_from_u64(1);
        env.reset(&mut rng);
        for _ in 0..100 {
            let r = env.step(&[0]);
            assert!(r.obs[0] >= 0.0);
        }
    }
}
