//! Synchronous Advantage Actor-Critic (A2C) baseline.
//!
//! N-step advantage estimates with a learned state-value baseline, entropy
//! regularization, and Adam updates — a faithful small-scale port of the
//! Stable-Baselines agent the paper benchmarks in Table I.

use crate::rl::env::SizingEnv;
use crate::rl::policy::{Policy, ValueNet};
use crate::rl::{policy_is_trained, RlSentinel};
use asdex_env::{SearchBudget, SearchOutcome, Searcher, SizingProblem};
use asdex_nn::{Adam, Optimizer};
use asdex_rng::rngs::StdRng;
use asdex_rng::SeedableRng;

/// A2C hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A2cConfig {
    /// Rollout length between updates.
    pub n_steps: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Entropy bonus coefficient.
    pub ent_coef: f64,
    /// Policy learning rate.
    pub lr: f64,
    /// Value-net learning rate.
    pub value_lr: f64,
    /// Hidden width of both networks.
    pub hidden: usize,
    /// Episode horizon.
    pub horizon: usize,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            n_steps: 8,
            gamma: 0.95,
            ent_coef: 0.01,
            lr: 7e-4,
            value_lr: 1e-3,
            hidden: 64,
            horizon: 30,
        }
    }
}

/// The A2C agent.
#[derive(Debug, Clone, Default)]
pub struct A2c {
    /// Hyperparameters.
    pub config: A2cConfig,
}

impl A2c {
    /// Creates the agent with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Searcher for A2c {
    fn name(&self) -> &str {
        "a2c"
    }

    fn search(&mut self, problem: &SizingProblem, budget: SearchBudget, seed: u64) -> SearchOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = SizingEnv::with_budget(problem, cfg.horizon, budget.max_sims);
        let mut policy = Policy::new(env.obs_dim(), env.n_heads(), cfg.hidden, &mut rng);
        let mut value = ValueNet::new(env.obs_dim(), cfg.hidden, &mut rng);
        let mut policy_opt = Adam::new(cfg.lr);
        let mut value_opt = Adam::new(cfg.value_lr);
        let mut sentinel = RlSentinel::new();
        sentinel.snapshot(&policy, &value);

        let mut obs = env.reset(&mut rng);
        let mut solved_at: Option<usize> = None;
        while env.sims() < budget.max_sims && solved_at.is_none() {
            // Collect an n-step rollout.
            let mut observations = Vec::with_capacity(cfg.n_steps);
            let mut actions_taken = Vec::with_capacity(cfg.n_steps);
            let mut rewards = Vec::with_capacity(cfg.n_steps);
            let mut dones = Vec::with_capacity(cfg.n_steps);
            let mut last_obs = obs.clone();
            for _ in 0..cfg.n_steps {
                if env.sims() >= budget.max_sims {
                    break;
                }
                let sample = policy.act(&last_obs, &mut rng);
                let step = env.step(&sample.actions);
                observations.push(last_obs.clone());
                actions_taken.push(sample.actions);
                rewards.push(step.reward);
                dones.push(step.done);
                last_obs = if step.done { env.reset(&mut rng) } else { step.obs };
            }
            if observations.is_empty() {
                break;
            }

            // Bootstrapped n-step returns.
            let mut ret = if *dones.last().expect("nonempty") {
                0.0
            } else {
                value.value(&last_obs)
            };
            let mut returns = vec![0.0; rewards.len()];
            for t in (0..rewards.len()).rev() {
                if dones[t] {
                    ret = 0.0;
                }
                ret = rewards[t] + cfg.gamma * ret;
                returns[t] = ret;
            }

            // Accumulate gradients over the rollout.
            let mut policy_grad: Option<asdex_nn::Gradients> = None;
            let mut value_grad: Option<asdex_nn::Gradients> = None;
            for t in 0..observations.len() {
                let adv = returns[t] - value.value(&observations[t]);
                let g = policy.policy_gradient(&observations[t], &actions_taken[t], adv, cfg.ent_coef);
                match &mut policy_grad {
                    Some(acc) => acc.add(&g),
                    None => policy_grad = Some(g),
                }
                let vg = value.td_gradient(&observations[t], returns[t]);
                match &mut value_grad {
                    Some(acc) => acc.add(&vg),
                    None => value_grad = Some(vg),
                }
            }
            let n = observations.len() as f64;
            if let Some(mut g) = policy_grad {
                g.scale(1.0 / n);
                if sentinel.admit(g.flat_mut()) {
                    policy_opt.step(policy.net_mut(), g.flat());
                }
            }
            if let Some(mut g) = value_grad {
                g.scale(1.0 / n);
                if sentinel.admit(g.flat_mut()) {
                    value_opt.step(value.net_mut(), g.flat());
                }
            }
            // Entropy-collapse / NaN-weight sentinel: a healthy policy is
            // snapshotted as the rollback target, a collapsed one is
            // restored from the last-good snapshot with fresh optimizer
            // moments.
            if RlSentinel::policy_healthy(&policy, &observations, None) {
                sentinel.snapshot(&policy, &value);
            } else if sentinel.rollback(&mut policy, &mut value) {
                policy_opt.reset();
                value_opt.reset();
            }
            // Paper-style success check: a deterministic episode of the
            // *trained* policy must reach a feasible point.
            if policy_is_trained(&policy, &mut env, budget, &mut rng) {
                solved_at = Some(env.sims());
                break;
            }
            obs = env.reset(&mut rng);
            let _ = last_obs;
        }

        let stats = env.stats().clone();
        let (best_value, best_point) = env.best();
        match solved_at {
            Some(sims) => SearchOutcome {
                success: true,
                simulations: sims,
                best_point: best_point.to_vec(),
                best_value,
                best_measurements: None,
                stats,
                health: sentinel.stats(),
            },
            None => SearchOutcome {
                success: false,
                simulations: budget.max_sims,
                best_point: best_point.to_vec(),
                best_value,
                best_measurements: None,
                stats,
                health: sentinel.stats(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_env::circuits::synthetic::Bowl;

    #[test]
    fn finds_easy_target() {
        let problem = Bowl::problem(2, 0.35).unwrap();
        let mut agent = A2c::new();
        let out = agent.search(&problem, SearchBudget::new(5000), 3);
        assert!(out.success, "best {}", out.best_value);
    }

    #[test]
    fn budget_respected() {
        let problem = Bowl::problem(3, 0.0001).unwrap();
        let mut agent = A2c::new();
        let out = agent.search(&problem, SearchBudget::new(300), 1);
        assert!(!out.success);
        assert_eq!(out.simulations, 300);
    }

    #[test]
    fn deterministic() {
        let problem = Bowl::problem(2, 0.2).unwrap();
        let mut agent = A2c::new();
        let a = agent.search(&problem, SearchBudget::new(400), 7);
        let b = agent.search(&problem, SearchBudget::new(400), 7);
        assert_eq!(a.simulations, b.simulations);
        assert_eq!(a.success, b.success);
    }
}
