//! Model-free reinforcement-learning baselines (A2C, PPO, TRPO) in the
//! AutoCkt mold, as benchmarked in the paper's Table I.

mod a2c;
mod env;
mod policy;
mod ppo;
mod trpo;

use asdex_env::{HealthStats, SearchBudget};
use asdex_nn::{GradGuard, GuardOutcome};
use asdex_rng::Rng;

/// Mean per-head entropy (nats) below which a policy is declared
/// collapsed — a fresh 3-way head starts near ln 3 ≈ 1.1.
pub(crate) const ENTROPY_FLOOR: f64 = 1e-3;

/// Mean KL between consecutive policies above which an update is declared
/// a blow-up and rolled back.
pub(crate) const KL_CEILING: f64 = 2.0;

/// Self-healing sentinel shared by the model-free agents: global-norm
/// gradient clipping, non-finite update rejection, and last-good
/// policy/value snapshots to roll back to when the policy collapses
/// (entropy under [`ENTROPY_FLOOR`]) or blows up (KL over [`KL_CEILING`]).
/// Pure function of the gradients and network outputs — no rng, no
/// wall-clock — so it preserves the determinism contracts.
pub(crate) struct RlSentinel {
    guard: GradGuard,
    stats: HealthStats,
    last_good: Option<(Vec<f64>, Vec<f64>)>,
}

impl RlSentinel {
    pub(crate) fn new() -> Self {
        RlSentinel { guard: GradGuard::default(), stats: HealthStats::new(), last_good: None }
    }

    pub(crate) fn stats(&self) -> HealthStats {
        self.stats
    }

    /// Clips a flat gradient in place. Returns `false` when the gradient
    /// is non-finite and the optimizer step must be skipped.
    pub(crate) fn admit(&mut self, grad: &mut [f64]) -> bool {
        match self.guard.apply(grad) {
            GuardOutcome::Ok => true,
            GuardOutcome::Clipped => {
                self.stats.clipped_updates += 1;
                true
            }
            GuardOutcome::NonFinite => {
                self.stats.nonfinite_updates += 1;
                false
            }
        }
    }

    /// Counts a non-finite quantity detected outside the gradient path
    /// (TRPO's CG direction or step scale).
    pub(crate) fn flag_nonfinite(&mut self) {
        self.stats.nonfinite_updates += 1;
    }

    /// Records the current networks as the last-good state.
    pub(crate) fn snapshot(&mut self, policy: &Policy, value: &ValueNet) {
        self.last_good = Some((policy.flat_params(), value.flat_params()));
    }

    /// Post-update health check over a probe batch of observations:
    /// entropy above the collapse floor, and — when the pre-update logits
    /// are supplied — mean KL below the blow-up ceiling. Non-finite
    /// entropy/KL (NaN weights) also fails, which keeps `act_greedy`'s
    /// finite-logits contract intact.
    pub(crate) fn policy_healthy(
        policy: &Policy,
        observations: &[Vec<f64>],
        old_logits: Option<&[Vec<f64>]>,
    ) -> bool {
        if observations.is_empty() {
            return true;
        }
        let n = observations.len() as f64;
        let mean_entropy = observations.iter().map(|o| policy.entropy(o)).sum::<f64>() / n;
        if !mean_entropy.is_finite() || mean_entropy < ENTROPY_FLOOR {
            return false;
        }
        if let Some(old) = old_logits {
            let mean_kl =
                observations.iter().zip(old).map(|(o, ol)| policy.kl_from(o, ol)).sum::<f64>() / n;
            if !mean_kl.is_finite() || mean_kl > KL_CEILING {
                return false;
            }
        }
        true
    }

    /// Restores the last-good snapshot, if any. The caller must reset its
    /// optimizer moments afterwards — they were accumulated against the
    /// now-discarded weights. Returns `true` when a rollback happened.
    pub(crate) fn rollback(&mut self, policy: &mut Policy, value: &mut ValueNet) -> bool {
        match &self.last_good {
            Some((p, v)) => {
                policy.set_flat_params(p);
                value.set_flat_params(v);
                self.stats.rollbacks += 1;
                true
            }
            None => false,
        }
    }
}

/// Consecutive deterministic-episode successes required before a model-free
/// policy counts as "trained" (one lucky rollout is not a deployable
/// policy).
pub(crate) const GREEDY_SUCCESSES_REQUIRED: usize = 3;

/// Runs the full paper-style competence check: the greedy policy must
/// solve [`GREEDY_SUCCESSES_REQUIRED`] evaluation episodes in a row from
/// independent random starts.
pub(crate) fn policy_is_trained<R: Rng + ?Sized>(
    policy: &Policy,
    env: &mut SizingEnv<'_>,
    budget: SearchBudget,
    rng: &mut R,
) -> bool {
    for _ in 0..GREEDY_SUCCESSES_REQUIRED {
        if !greedy_episode(policy, env, budget, rng) {
            return false;
        }
    }
    true
}

/// Runs one deterministic (greedy) evaluation episode — the success
/// criterion of the paper's Table I for model-free agents: a *trained*
/// policy must reach a feasible point, not merely stumble on one during
/// exploration. Returns `true` on success; consumes simulator budget like
/// any other episode.
pub(crate) fn greedy_episode<R: Rng + ?Sized>(
    policy: &Policy,
    env: &mut SizingEnv<'_>,
    budget: SearchBudget,
    rng: &mut R,
) -> bool {
    if env.sims() >= budget.max_sims {
        return false;
    }
    let mut obs = env.reset(rng);
    if env.last_feasible() {
        return true;
    }
    for _ in 0..env.max_steps {
        if env.sims() >= budget.max_sims {
            return false;
        }
        let actions = policy.act_greedy(&obs);
        let step = env.step(&actions);
        if step.feasible {
            return true;
        }
        if step.done {
            break;
        }
        obs = step.obs;
    }
    false
}

pub use a2c::{A2c, A2cConfig};
pub use env::{SizingEnv, StepResult};
pub use policy::{ActionSample, Policy, ValueNet, MOVES};
pub use ppo::{Ppo, PpoConfig};
pub use trpo::{Trpo, TrpoConfig};
