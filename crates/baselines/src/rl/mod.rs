//! Model-free reinforcement-learning baselines (A2C, PPO, TRPO) in the
//! AutoCkt mold, as benchmarked in the paper's Table I.

mod a2c;
mod env;
mod policy;
mod ppo;
mod trpo;

use asdex_env::SearchBudget;
use asdex_rng::Rng;

/// Consecutive deterministic-episode successes required before a model-free
/// policy counts as "trained" (one lucky rollout is not a deployable
/// policy).
pub(crate) const GREEDY_SUCCESSES_REQUIRED: usize = 3;

/// Runs the full paper-style competence check: the greedy policy must
/// solve [`GREEDY_SUCCESSES_REQUIRED`] evaluation episodes in a row from
/// independent random starts.
pub(crate) fn policy_is_trained<R: Rng + ?Sized>(
    policy: &Policy,
    env: &mut SizingEnv<'_>,
    budget: SearchBudget,
    rng: &mut R,
) -> bool {
    for _ in 0..GREEDY_SUCCESSES_REQUIRED {
        if !greedy_episode(policy, env, budget, rng) {
            return false;
        }
    }
    true
}

/// Runs one deterministic (greedy) evaluation episode — the success
/// criterion of the paper's Table I for model-free agents: a *trained*
/// policy must reach a feasible point, not merely stumble on one during
/// exploration. Returns `true` on success; consumes simulator budget like
/// any other episode.
pub(crate) fn greedy_episode<R: Rng + ?Sized>(
    policy: &Policy,
    env: &mut SizingEnv<'_>,
    budget: SearchBudget,
    rng: &mut R,
) -> bool {
    if env.sims() >= budget.max_sims {
        return false;
    }
    let mut obs = env.reset(rng);
    if env.last_feasible() {
        return true;
    }
    for _ in 0..env.max_steps {
        if env.sims() >= budget.max_sims {
            return false;
        }
        let actions = policy.act_greedy(&obs);
        let step = env.step(&actions);
        if step.feasible {
            return true;
        }
        if step.done {
            break;
        }
        obs = step.obs;
    }
    false
}

pub use a2c::{A2c, A2cConfig};
pub use env::{SizingEnv, StepResult};
pub use policy::{ActionSample, Policy, ValueNet, MOVES};
pub use ppo::{Ppo, PpoConfig};
pub use trpo::{Trpo, TrpoConfig};
