//! Trust Region Policy Optimization baseline.
//!
//! Natural-gradient policy steps under a KL constraint: the search
//! direction solves `F s = g` by conjugate gradient with Fisher-vector
//! products computed as finite differences of the KL gradient, and a
//! backtracking line search enforces both surrogate improvement and the
//! KL trust region. This is the same *optimization-side* trust region the
//! paper's title contrasts with its *design-space* trust region.

use crate::rl::env::SizingEnv;
use crate::rl::policy::{Policy, ValueNet};
use crate::rl::{policy_is_trained, RlSentinel};
use asdex_env::{SearchBudget, SearchOutcome, Searcher, SizingProblem};
use asdex_nn::{Adam, Optimizer};
use asdex_rng::rngs::StdRng;
use asdex_rng::SeedableRng;

/// TRPO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrpoConfig {
    /// Steps collected per batch.
    pub batch: usize,
    /// Discount factor.
    pub gamma: f64,
    /// KL trust-region radius δ.
    pub max_kl: f64,
    /// Conjugate-gradient iterations.
    pub cg_iters: usize,
    /// CG damping added to the FVP.
    pub damping: f64,
    /// Line-search backtracks.
    pub backtracks: usize,
    /// Value learning rate.
    pub value_lr: f64,
    /// Hidden width.
    pub hidden: usize,
    /// Episode horizon.
    pub horizon: usize,
}

impl Default for TrpoConfig {
    fn default() -> Self {
        TrpoConfig {
            batch: 128,
            gamma: 0.95,
            max_kl: 0.01,
            cg_iters: 10,
            damping: 0.1,
            backtracks: 10,
            value_lr: 1e-3,
            hidden: 64,
            horizon: 30,
        }
    }
}

/// The TRPO agent.
#[derive(Debug, Clone, Default)]
pub struct Trpo {
    /// Hyperparameters.
    pub config: TrpoConfig,
}

impl Trpo {
    /// Creates the agent with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Searcher for Trpo {
    fn name(&self) -> &str {
        "trpo"
    }

    fn search(&mut self, problem: &SizingProblem, budget: SearchBudget, seed: u64) -> SearchOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = SizingEnv::with_budget(problem, cfg.horizon, budget.max_sims);
        let mut policy = Policy::new(env.obs_dim(), env.n_heads(), cfg.hidden, &mut rng);
        let mut value = ValueNet::new(env.obs_dim(), cfg.hidden, &mut rng);
        let mut value_opt = Adam::new(cfg.value_lr);
        let mut sentinel = RlSentinel::new();
        sentinel.snapshot(&policy, &value);

        let mut obs = env.reset(&mut rng);
        let mut solved_at: Option<usize> = None;
        while env.sims() < budget.max_sims && solved_at.is_none() {
            // --- Collect a batch. -------------------------------------------
            let mut observations = Vec::new();
            let mut actions_taken: Vec<Vec<usize>> = Vec::new();
            let mut rewards = Vec::new();
            let mut dones = Vec::new();
            let mut old_logits: Vec<Vec<f64>> = Vec::new();
            let mut old_log_probs = Vec::new();
            let mut last_obs = obs.clone();
            for _ in 0..cfg.batch {
                if env.sims() >= budget.max_sims {
                    break;
                }
                let sample = policy.act(&last_obs, &mut rng);
                let step = env.step(&sample.actions);
                observations.push(last_obs.clone());
                actions_taken.push(sample.actions);
                old_logits.push(sample.logits);
                old_log_probs.push(sample.log_prob);
                rewards.push(step.reward);
                dones.push(step.done);
                last_obs = if step.done { env.reset(&mut rng) } else { step.obs };
            }
            if observations.is_empty() {
                break;
            }

            // --- Advantages (discounted returns − baseline). ----------------
            let mut ret = if *dones.last().expect("nonempty") { 0.0 } else { value.value(&last_obs) };
            let mut advantages = vec![0.0; rewards.len()];
            let mut returns = vec![0.0; rewards.len()];
            for t in (0..rewards.len()).rev() {
                if dones[t] {
                    ret = 0.0;
                }
                ret = rewards[t] + cfg.gamma * ret;
                returns[t] = ret;
                advantages[t] = ret - value.value(&observations[t]);
            }
            let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
            let var = advantages.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>()
                / advantages.len() as f64;
            let std = var.sqrt().max(1e-8);
            for a in &mut advantages {
                *a = (*a - mean) / std;
            }

            // --- Policy gradient g of the surrogate. ------------------------
            // Surrogate L(θ) = E[ratio·adv]; at θ_old its gradient equals
            // E[∇logπ·adv]. `policy_gradient` returns −∇logπ·adv, so negate.
            let mut g: Option<asdex_nn::Gradients> = None;
            for t in 0..observations.len() {
                let grad = policy.policy_gradient(&observations[t], &actions_taken[t], advantages[t], 0.0);
                match &mut g {
                    Some(acc) => acc.add(&grad),
                    None => g = Some(grad),
                }
            }
            let mut g = g.expect("nonempty batch");
            g.scale(-1.0 / observations.len() as f64);
            let mut g = g.flat().to_vec();
            // A non-finite policy gradient poisons CG, the FVP, and the
            // line search all at once — skip the policy update entirely
            // (the value net and the next batch still proceed).
            let g_ok = sentinel.admit(&mut g);

            // --- Fisher-vector product via KL-gradient finite differences. --
            let theta0 = policy.flat_params();
            let mean_kl_grad = |p: &mut Policy| -> Vec<f64> {
                let mut acc: Option<asdex_nn::Gradients> = None;
                for t in 0..observations.len() {
                    let grad = p.kl_gradient(&observations[t], &old_logits[t]);
                    match &mut acc {
                        Some(a) => a.add(&grad),
                        None => acc = Some(grad),
                    }
                }
                let mut acc = acc.expect("nonempty");
                acc.scale(1.0 / observations.len() as f64);
                acc.flat().to_vec()
            };
            let eps = 1e-5;
            let fvp = |v: &[f64], p: &mut Policy| -> Vec<f64> {
                // ∇KL(θ0) = 0, so F·v ≈ ∇KL(θ0 + εv)/ε (+ damping).
                let theta: Vec<f64> = theta0.iter().zip(v).map(|(t, vi)| t + eps * vi).collect();
                p.set_flat_params(&theta);
                let grad = mean_kl_grad(p);
                p.set_flat_params(&theta0);
                grad.iter().zip(v).map(|(gk, vk)| gk / eps + cfg.damping * vk).collect()
            };

            if g_ok {
                // --- Conjugate gradient: solve F s = g. ---------------------
                let n = g.len();
                let mut s = vec![0.0; n];
                let mut r = g.clone();
                let mut p_dir = g.clone();
                let mut rr = dot(&r, &r);
                for _ in 0..cfg.cg_iters {
                    if rr < 1e-12 {
                        break;
                    }
                    let fp = fvp(&p_dir, &mut policy);
                    let alpha = rr / dot(&p_dir, &fp).max(1e-12);
                    for i in 0..n {
                        s[i] += alpha * p_dir[i];
                        r[i] -= alpha * fp[i];
                    }
                    let rr_new = dot(&r, &r);
                    let beta = rr_new / rr;
                    for i in 0..n {
                        p_dir[i] = r[i] + beta * p_dir[i];
                    }
                    rr = rr_new;
                }

                // --- Step size from the KL constraint + line search. --------
                let fs = fvp(&s, &mut policy);
                let shs = dot(&s, &fs).max(1e-12);
                let step_scale = (2.0 * cfg.max_kl / shs).sqrt();
                if s.iter().all(|v| v.is_finite()) && shs.is_finite() && step_scale.is_finite() {
                    let surrogate = |p: &Policy| -> f64 {
                        let mut total = 0.0;
                        for t in 0..observations.len() {
                            let new_lp = p.log_prob(&observations[t], &actions_taken[t]);
                            total += (new_lp - old_log_probs[t]).exp() * advantages[t];
                        }
                        total / observations.len() as f64
                    };
                    let mean_kl = |p: &Policy| -> f64 {
                        observations
                            .iter()
                            .zip(&old_logits)
                            .map(|(o, ol)| p.kl_from(o, ol))
                            .sum::<f64>()
                            / observations.len() as f64
                    };
                    let base_surrogate = surrogate(&policy);
                    let mut accepted = false;
                    let mut frac = 1.0;
                    for _ in 0..cfg.backtracks {
                        let theta: Vec<f64> = theta0
                            .iter()
                            .zip(&s)
                            .map(|(t, si)| t + frac * step_scale * si)
                            .collect();
                        policy.set_flat_params(&theta);
                        if surrogate(&policy) > base_surrogate
                            && mean_kl(&policy) <= cfg.max_kl * 1.5
                        {
                            accepted = true;
                            break;
                        }
                        frac *= 0.5;
                    }
                    if !accepted {
                        policy.set_flat_params(&theta0);
                    }
                } else {
                    // The CG direction or KL step scale went non-finite:
                    // abandon the natural-gradient step and keep θ₀.
                    sentinel.flag_nonfinite();
                    policy.set_flat_params(&theta0);
                }
            }

            // --- Value-net regression. --------------------------------------
            for t in 0..observations.len() {
                let mut vg = value.td_gradient(&observations[t], returns[t]);
                if sentinel.admit(vg.flat_mut()) {
                    value_opt.step(value.net_mut(), vg.flat());
                }
            }
            // Entropy-collapse / NaN-weight sentinel, as in A2C (the KL
            // trust region itself is already enforced by the line search).
            if RlSentinel::policy_healthy(&policy, &observations, None) {
                sentinel.snapshot(&policy, &value);
            } else if sentinel.rollback(&mut policy, &mut value) {
                value_opt.reset();
            }
            // Paper-style success check: a deterministic episode of the
            // *trained* policy must reach a feasible point.
            if policy_is_trained(&policy, &mut env, budget, &mut rng) {
                solved_at = Some(env.sims());
                break;
            }
            obs = env.reset(&mut rng);
            let _ = last_obs;
        }

        let stats = env.stats().clone();
        let (best_value, best_point) = env.best();
        match solved_at {
            Some(sims) => SearchOutcome {
                success: true,
                simulations: sims,
                best_point: best_point.to_vec(),
                best_value,
                best_measurements: None,
                stats,
                health: sentinel.stats(),
            },
            None => SearchOutcome {
                success: false,
                simulations: budget.max_sims,
                best_point: best_point.to_vec(),
                best_value,
                best_measurements: None,
                stats,
                health: sentinel.stats(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_env::circuits::synthetic::Bowl;

    #[test]
    fn finds_easy_target() {
        let problem = Bowl::problem(2, 0.35).unwrap();
        let mut agent = Trpo::new();
        let out = agent.search(&problem, SearchBudget::new(5000), 4);
        assert!(out.success, "best {}", out.best_value);
    }

    #[test]
    fn budget_respected() {
        let problem = Bowl::problem(3, 0.0001).unwrap();
        let mut agent = Trpo::new();
        let out = agent.search(&problem, SearchBudget::new(270), 1);
        assert!(!out.success);
        assert_eq!(out.simulations, 270);
    }

    #[test]
    fn deterministic() {
        let problem = Bowl::problem(2, 0.2).unwrap();
        let mut agent = Trpo::new();
        let a = agent.search(&problem, SearchBudget::new(300), 6);
        let b = agent.search(&problem, SearchBudget::new(300), 6);
        assert_eq!(a.simulations, b.simulations);
    }
}
