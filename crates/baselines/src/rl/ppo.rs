//! Proximal Policy Optimization (clipped surrogate) baseline.
//!
//! Batch collection with GAE(λ) advantages, several epochs of clipped
//! surrogate updates per batch, entropy regularization — the
//! Stable-Baselines-style PPO the paper benchmarks in Table I.

use crate::rl::env::SizingEnv;
use crate::rl::policy::{Policy, ValueNet, MOVES};
use crate::rl::{policy_is_trained, RlSentinel};
use asdex_env::{SearchBudget, SearchOutcome, Searcher, SizingProblem};
use asdex_nn::{log_prob_grad, Adam, Optimizer};
use asdex_rng::rngs::StdRng;
use asdex_rng::seq::SliceRandom;
use asdex_rng::SeedableRng;

/// PPO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpoConfig {
    /// Steps collected per batch.
    pub batch: usize,
    /// Optimization epochs over each batch.
    pub epochs: usize,
    /// Clip range ε.
    pub clip: f64,
    /// Discount factor.
    pub gamma: f64,
    /// GAE λ.
    pub lam: f64,
    /// Entropy bonus coefficient.
    pub ent_coef: f64,
    /// Policy learning rate.
    pub lr: f64,
    /// Value learning rate.
    pub value_lr: f64,
    /// Hidden width.
    pub hidden: usize,
    /// Episode horizon.
    pub horizon: usize,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            batch: 128,
            epochs: 4,
            clip: 0.2,
            gamma: 0.95,
            lam: 0.9,
            ent_coef: 0.01,
            lr: 3e-4,
            value_lr: 1e-3,
            hidden: 64,
            horizon: 30,
        }
    }
}

/// Raw rollout record: (obs, actions, reward, old log-prob, done, V(s)).
type RawStep = (Vec<f64>, Vec<usize>, f64, f64, bool, f64);

/// One stored transition.
struct Transition {
    obs: Vec<f64>,
    actions: Vec<usize>,
    old_log_prob: f64,
    advantage: f64,
    ret: f64,
}

/// The PPO agent.
#[derive(Debug, Clone, Default)]
pub struct Ppo {
    /// Hyperparameters.
    pub config: PpoConfig,
}

impl Ppo {
    /// Creates the agent with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Searcher for Ppo {
    fn name(&self) -> &str {
        "ppo"
    }

    fn search(&mut self, problem: &SizingProblem, budget: SearchBudget, seed: u64) -> SearchOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = SizingEnv::with_budget(problem, cfg.horizon, budget.max_sims);
        let mut policy = Policy::new(env.obs_dim(), env.n_heads(), cfg.hidden, &mut rng);
        let mut value = ValueNet::new(env.obs_dim(), cfg.hidden, &mut rng);
        let mut policy_opt = Adam::new(cfg.lr);
        let mut value_opt = Adam::new(cfg.value_lr);
        let mut sentinel = RlSentinel::new();
        sentinel.snapshot(&policy, &value);

        let mut obs = env.reset(&mut rng);
        let mut solved_at: Option<usize> = None;
        while env.sims() < budget.max_sims && solved_at.is_none() {
            // --- Collect a batch. -------------------------------------------
            let mut raw: Vec<RawStep> = Vec::new();
            let mut last_obs = obs.clone();
            for _ in 0..cfg.batch {
                if env.sims() >= budget.max_sims {
                    break;
                }
                let sample = policy.act(&last_obs, &mut rng);
                let v_est = value.value(&last_obs);
                let step = env.step(&sample.actions);
                raw.push((last_obs.clone(), sample.actions, step.reward, sample.log_prob, step.done, v_est));
                last_obs = if step.done { env.reset(&mut rng) } else { step.obs };
            }
            if raw.is_empty() {
                break;
            }

            // --- GAE(λ). ----------------------------------------------------
            let mut transitions: Vec<Transition> = Vec::with_capacity(raw.len());
            let mut gae = 0.0;
            let mut next_value = if raw.last().expect("nonempty").4 { 0.0 } else { value.value(&last_obs) };
            for (o, a, r, old_lp, done, v_est) in raw.into_iter().rev() {
                if done {
                    next_value = 0.0;
                    gae = 0.0;
                }
                let delta = r + cfg.gamma * next_value - v_est;
                gae = delta + cfg.gamma * cfg.lam * gae;
                next_value = v_est;
                transitions.push(Transition {
                    obs: o,
                    actions: a,
                    old_log_prob: old_lp,
                    advantage: gae,
                    ret: gae + v_est,
                });
            }
            transitions.reverse();
            // Advantage normalization.
            let mean = transitions.iter().map(|t| t.advantage).sum::<f64>() / transitions.len() as f64;
            let var = transitions
                .iter()
                .map(|t| (t.advantage - mean) * (t.advantage - mean))
                .sum::<f64>()
                / transitions.len() as f64;
            let std = var.sqrt().max(1e-8);
            for t in &mut transitions {
                t.advantage = (t.advantage - mean) / std;
            }

            // --- Clipped-surrogate epochs. ----------------------------------
            // Pre-update distribution for the post-epochs KL blow-up check
            // (at this point the current policy *is* the old policy).
            let obs_batch: Vec<Vec<f64>> = transitions.iter().map(|t| t.obs.clone()).collect();
            let pre_logits: Vec<Vec<f64>> = obs_batch.iter().map(|o| policy.logits(o)).collect();
            let mut order: Vec<usize> = (0..transitions.len()).collect();
            for _ in 0..cfg.epochs {
                order.shuffle(&mut rng);
                for &i in &order {
                    let t = &transitions[i];
                    let n_heads = policy.n_heads();
                    let (clip, ent_coef, adv, old_lp) = (cfg.clip, cfg.ent_coef, t.advantage, t.old_log_prob);
                    let actions = t.actions.clone();
                    let mut g = policy.grad_with(&t.obs, |logits| {
                        let new_lp = Policy::log_prob_of(logits, &actions);
                        let ratio = (new_lp - old_lp).exp();
                        let clipped = ratio < 1.0 - clip || ratio > 1.0 + clip;
                        // Surrogate L = min(ratio·adv, clip(ratio)·adv);
                        // gradient flows only through the unclipped branch
                        // when it is the active minimum.
                        let pass_through = if adv >= 0.0 { !(clipped && ratio > 1.0 + clip) } else { !(clipped && ratio < 1.0 - clip) };
                        let mut d = vec![0.0; logits.len()];
                        for (h, &a) in actions.iter().enumerate().take(n_heads) {
                            let head = &logits[h * MOVES..(h + 1) * MOVES];
                            let lp_grad = log_prob_grad(head, a);
                            let ent = asdex_nn::entropy_grad(head);
                            for k in 0..MOVES {
                                let surrogate = if pass_through { -adv * ratio * lp_grad[k] } else { 0.0 };
                                d[h * MOVES + k] = surrogate - ent_coef * ent[k] / n_heads as f64;
                            }
                        }
                        d
                    });
                    if sentinel.admit(g.flat_mut()) {
                        policy_opt.step(policy.net_mut(), g.flat());
                    }
                    let mut vg = value.td_gradient(&transitions[i].obs, transitions[i].ret);
                    if sentinel.admit(vg.flat_mut()) {
                        value_opt.step(value.net_mut(), vg.flat());
                    }
                }
            }
            // Entropy-collapse / KL-blow-up sentinel: a healthy policy is
            // snapshotted as the rollback target; a collapsed or blown-up
            // one is restored from the last-good snapshot with fresh
            // optimizer moments.
            if RlSentinel::policy_healthy(&policy, &obs_batch, Some(&pre_logits)) {
                sentinel.snapshot(&policy, &value);
            } else if sentinel.rollback(&mut policy, &mut value) {
                policy_opt.reset();
                value_opt.reset();
            }
            // Paper-style success check: a deterministic episode of the
            // *trained* policy must reach a feasible point.
            if policy_is_trained(&policy, &mut env, budget, &mut rng) {
                solved_at = Some(env.sims());
                break;
            }
            obs = env.reset(&mut rng);
            let _ = last_obs;
        }

        let stats = env.stats().clone();
        let (best_value, best_point) = env.best();
        match solved_at {
            Some(sims) => SearchOutcome {
                success: true,
                simulations: sims,
                best_point: best_point.to_vec(),
                best_value,
                best_measurements: None,
                stats,
                health: sentinel.stats(),
            },
            None => SearchOutcome {
                success: false,
                simulations: budget.max_sims,
                best_point: best_point.to_vec(),
                best_value,
                best_measurements: None,
                stats,
                health: sentinel.stats(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_env::circuits::synthetic::Bowl;

    #[test]
    fn finds_easy_target() {
        let problem = Bowl::problem(2, 0.35).unwrap();
        let mut agent = Ppo::new();
        let out = agent.search(&problem, SearchBudget::new(5000), 2);
        assert!(out.success, "best {}", out.best_value);
    }

    #[test]
    fn budget_respected() {
        let problem = Bowl::problem(3, 0.0001).unwrap();
        let mut agent = Ppo::new();
        let out = agent.search(&problem, SearchBudget::new(260), 1);
        assert!(!out.success);
        assert_eq!(out.simulations, 260);
    }

    #[test]
    fn deterministic() {
        let problem = Bowl::problem(2, 0.2).unwrap();
        let mut agent = Ppo::new();
        let a = agent.search(&problem, SearchBudget::new(300), 5);
        let b = agent.search(&problem, SearchBudget::new(300), 5);
        assert_eq!(a.simulations, b.simulations);
    }
}
