//! Extremely randomized trees (Geurts et al.) regression forest — the
//! surrogate inside the paper's "customized BO", which "substitutes
//! Gaussian Process with extra-tree regressor" for scalability.

use asdex_rng::rngs::StdRng;
use asdex_rng::{Rng, SeedableRng};

/// One node of an extra tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        mean: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf { mean } => *mean,
            Node::Split { feature, threshold, left, right } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }

    /// Number of split levels on the deepest path (a bare leaf is 0).
    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// Hyperparameters of the forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Leaf size: nodes with at most this many samples stop splitting.
    pub min_samples_leaf: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { n_trees: 25, min_samples_leaf: 2, max_depth: 18 }
    }
}

/// An extremely randomized trees regressor.
///
/// Each split picks a random feature and a uniformly random threshold
/// between that feature's min and max in the node — no split-score search
/// at all, which makes fitting nearly free and the ensemble variance a
/// useful uncertainty signal.
#[derive(Debug, Clone)]
pub struct ExtraTrees {
    trees: Vec<Node>,
    config: ForestConfig,
}

impl ExtraTrees {
    /// Fits a forest on `(xs, ys)`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or lengths mismatch.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: ForestConfig, seed: u64) -> Self {
        assert!(!xs.is_empty(), "extra trees need at least one sample");
        assert_eq!(xs.len(), ys.len(), "sample/target length mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let idx: Vec<usize> = (0..xs.len()).collect();
        let trees = (0..config.n_trees)
            .map(|_| Self::build(xs, ys, &idx, 0, &config, &mut rng))
            .collect();
        ExtraTrees { trees, config }
    }

    fn build(
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: &[usize],
        depth: usize,
        config: &ForestConfig,
        rng: &mut StdRng,
    ) -> Node {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
        if idx.len() <= config.min_samples_leaf || depth >= config.max_depth {
            return Node::Leaf { mean };
        }
        let n_features = xs[0].len();
        // Try a few random features until one has spread.
        for _ in 0..n_features.max(4) {
            let feature = rng.gen_range(0..n_features);
            let lo = idx.iter().map(|&i| xs[i][feature]).fold(f64::INFINITY, f64::min);
            let hi = idx.iter().map(|&i| xs[i][feature]).fold(f64::NEG_INFINITY, f64::max);
            if hi - lo <= 1e-12 {
                continue;
            }
            let threshold = rng.gen_range(lo..hi);
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| xs[i][feature] <= threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                continue;
            }
            let left = Box::new(Self::build(xs, ys, &left_idx, depth + 1, config, rng));
            let right = Box::new(Self::build(xs, ys, &right_idx, depth + 1, config, rng));
            return Node::Split { feature, threshold, left, right };
        }
        Node::Leaf { mean }
    }

    /// Mean prediction across the forest.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Mean and cross-tree standard deviation — the BO uncertainty signal.
    pub fn predict_with_std(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
        (mean, var.sqrt())
    }

    /// Number of trees in the forest.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` when the forest has no trees (cannot happen through `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Depth of the deepest tree (diagnostics).
    pub fn max_depth(&self) -> usize {
        self.trees.iter().map(Node::depth).max().unwrap_or(0)
    }

    /// The configuration the forest was fitted with.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = vec![i as f64 / 19.0, j as f64 / 19.0];
                ys.push((x[0] - 0.3).powi(2) + 2.0 * (x[1] - 0.7).powi(2));
                xs.push(x);
            }
        }
        (xs, ys)
    }

    #[test]
    fn fits_smooth_function() {
        let (xs, ys) = grid_data();
        let f = ExtraTrees::fit(&xs, &ys, ForestConfig::default(), 1);
        let mut err = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            err += (f.predict(x) - y).abs();
        }
        err /= xs.len() as f64;
        assert!(err < 0.02, "mean abs error {err}");
    }

    #[test]
    fn interpolates_between_grid_points() {
        let (xs, ys) = grid_data();
        let f = ExtraTrees::fit(&xs, &ys, ForestConfig::default(), 1);
        let pred = f.predict(&[0.31, 0.69]);
        let truth: f64 = (0.31f64 - 0.3).powi(2) + 2.0 * (0.69f64 - 0.7).powi(2);
        assert!((pred - truth).abs() < 0.05, "{pred} vs {truth}");
    }

    #[test]
    fn uncertainty_higher_away_from_data() {
        let xs: Vec<Vec<f64>> = (0..30).map(|k| vec![0.4 + 0.2 * k as f64 / 29.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
        let f = ExtraTrees::fit(&xs, &ys, ForestConfig::default(), 3);
        let (_, s_in) = f.predict_with_std(&[0.5]);
        let (_, s_out) = f.predict_with_std(&[0.95]);
        // Extrapolation uncertainty is a soft property of tree ensembles;
        // at minimum the in-data uncertainty must be small.
        assert!(s_in < 0.2, "in-data std {s_in}");
        let _ = s_out;
    }

    #[test]
    fn single_sample_constant_prediction() {
        let f = ExtraTrees::fit(&[vec![0.5, 0.5]], &[3.0], ForestConfig::default(), 0);
        assert_eq!(f.predict(&[0.0, 1.0]), 3.0);
        let (m, s) = f.predict_with_std(&[0.9, 0.9]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 0.0);
        assert!(!f.is_empty());
    }

    #[test]
    fn constant_features_become_leaves() {
        let xs = vec![vec![1.0, 2.0]; 10];
        let ys: Vec<f64> = (0..10).map(f64::from).collect();
        let f = ExtraTrees::fit(&xs, &ys, ForestConfig::default(), 0);
        assert!((f.predict(&[1.0, 2.0]) - 4.5).abs() < 1e-12);
        assert_eq!(f.max_depth(), 0, "no splits on constant features");
    }

    #[test]
    fn depth_limit_respected() {
        let (xs, ys) = grid_data();
        let cfg = ForestConfig { max_depth: 3, ..Default::default() };
        let f = ExtraTrees::fit(&xs, &ys, cfg, 1);
        assert!(f.max_depth() <= 3);
        assert_eq!(f.len(), cfg.n_trees);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_data_panics() {
        let _ = ExtraTrees::fit(&[], &[], ForestConfig::default(), 0);
    }
}
