//! The paper's "customized BO" baseline: Bayesian optimization with an
//! extra-trees surrogate and dynamically balanced exploration /
//! exploitation (Table I: 100 % success at 330 average iterations; also
//! the comparison agent of Tables IV–V).

use crate::trees::{ExtraTrees, ForestConfig};
use asdex_env::{
    EvalRequest, EvalStats, Evaluation, HealthStats, SearchBudget, SearchOutcome, Searcher,
    SizingProblem,
};
use asdex_rng::rngs::StdRng;
use asdex_rng::SeedableRng;

/// Configuration of the BO agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoConfig {
    /// Random points evaluated before the surrogate takes over.
    pub n_init: usize,
    /// Candidate pool size scored by the acquisition per iteration.
    pub pool: usize,
    /// Initial UCB exploration weight β₀.
    pub beta0: f64,
    /// Multiplicative β decay per iteration — the paper's "dynamic
    /// balancing of exploration & exploitation".
    pub beta_decay: f64,
    /// Forest settings.
    pub forest: ForestConfig,
    /// After this many observations the forest is refitted only every
    /// `refit_stride` iterations (refitting on every point is O(n²) over a
    /// long run).
    pub refit_threshold: usize,
    /// Refit stride once past the threshold.
    pub refit_stride: u64,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            n_init: 20,
            pool: 1500,
            beta0: 2.0,
            beta_decay: 0.995,
            forest: ForestConfig::default(),
            refit_threshold: 600,
            refit_stride: 5,
        }
    }
}

/// The customized-BO search agent.
#[derive(Debug, Clone, Default)]
pub struct CustomizedBo {
    /// Hyperparameters.
    pub config: BoConfig,
}

impl CustomizedBo {
    /// Creates the agent with default settings.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Searcher for CustomizedBo {
    fn name(&self) -> &str {
        "bo"
    }

    fn search(&mut self, problem: &SizingProblem, budget: SearchBudget, seed: u64) -> SearchOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut stats = EvalStats::new();
        let mut health = HealthStats::new();
        let mut best_point = vec![0.5; problem.dim()];
        let mut best_value = f64::NEG_INFINITY;
        let mut best_meas = None;

        let evaluate = |u: &[f64],
                            stats: &mut EvalStats,
                            health: &HealthStats,
                            xs: &mut Vec<Vec<f64>>,
                            ys: &mut Vec<f64>,
                            best_point: &mut Vec<f64>,
                            best_value: &mut f64,
                            best_meas: &mut Option<Vec<f64>>|
         -> Option<SearchOutcome> {
            // Single-request batch: exactly `evaluate_with_budget`, but
            // routed through the one pipeline every agent shares.
            let mut evals = problem
                .evaluate_batch(&[EvalRequest::new(u.to_vec(), 0)], budget.max_sims - stats.sims);
            let Some(e) = evals.pop() else {
                return None; // budget fully reserved; the loop guard exits
            };
            stats.record(&e);
            xs.push(e.x_norm.clone());
            ys.push(e.value);
            if e.value > *best_value {
                *best_value = e.value;
                *best_point = e.x_norm.clone();
                *best_meas = e.measurements.clone();
            }
            if e.feasible {
                Some(SearchOutcome {
                    success: true,
                    simulations: stats.sims,
                    best_point: e.x_norm,
                    best_value: e.value,
                    best_measurements: e.measurements,
                    stats: stats.clone(),
                    health: *health,
                })
            } else {
                None
            }
        };

        // Initial design, scored as one batch (sampling consumes the rng,
        // evaluation does not, so the stream matches the serial order).
        let init_requests: Vec<EvalRequest> = (0..cfg.n_init)
            .map(|_| EvalRequest::new(problem.space.sample(&mut rng), 0))
            .collect();
        let mut first_feasible: Option<Evaluation> = None;
        for e in problem.evaluate_batch(&init_requests, budget.max_sims) {
            stats.record(&e);
            xs.push(e.x_norm.clone());
            ys.push(e.value);
            if e.value > best_value {
                best_value = e.value;
                best_point = e.x_norm.clone();
                best_meas = e.measurements.clone();
            }
            if e.feasible && first_feasible.is_none() {
                first_feasible = Some(e);
            }
        }
        if let Some(e) = first_feasible {
            return SearchOutcome {
                success: true,
                simulations: stats.sims,
                best_point: e.x_norm,
                best_value: e.value,
                best_measurements: e.measurements,
                stats,
                health,
            };
        }

        // Surrogate-guided loop.
        let mut beta = cfg.beta0;
        let mut iter = 0u64;
        let mut forest: Option<ExtraTrees> = None;
        while stats.sims < budget.max_sims {
            iter += 1;
            let needs_refit = forest.is_none()
                || xs.len() < cfg.refit_threshold
                || iter.is_multiple_of(cfg.refit_stride);
            if needs_refit {
                forest = Some(ExtraTrees::fit(&xs, &ys, cfg.forest, seed.wrapping_add(iter)));
            }
            let forest = forest.as_ref().expect("fitted above");
            let mut best_candidate: Option<(Vec<f64>, f64)> = None;
            let mut first_candidate: Option<Vec<f64>> = None;
            let mut acq_min = f64::INFINITY;
            let mut acq_max = f64::NEG_INFINITY;
            let mut saw_nonfinite = false;
            for _ in 0..cfg.pool {
                let u = problem.space.sample(&mut rng);
                let (mean, std) = forest.predict_with_std(&u);
                let acq = mean + beta * std;
                if first_candidate.is_none() {
                    first_candidate = Some(u.clone());
                }
                if acq.is_finite() {
                    acq_min = acq_min.min(acq);
                    acq_max = acq_max.max(acq);
                } else {
                    saw_nonfinite = true;
                }
                if best_candidate.as_ref().is_none_or(|(_, b)| acq > *b) {
                    best_candidate = Some((u, acq));
                }
            }
            // A degenerate surrogate — non-finite predictions, or a
            // constant acquisition surface that cannot rank candidates —
            // falls back to random acquisition: take the first sampled
            // candidate of the pool (the rng stream is unchanged either
            // way, so thread-count and resume invariance hold).
            let degenerate = saw_nonfinite || acq_max <= acq_min;
            let u = if degenerate {
                health.surrogate_fallbacks += 1;
                first_candidate.expect("pool is non-empty")
            } else {
                best_candidate.expect("pool is non-empty").0
            };
            if let Some(done) = evaluate(
                &u,
                &mut stats,
                &health,
                &mut xs,
                &mut ys,
                &mut best_point,
                &mut best_value,
                &mut best_meas,
            ) {
                return done;
            }
            beta *= cfg.beta_decay;
        }

        SearchOutcome {
            success: false,
            simulations: budget.max_sims,
            best_point,
            best_value,
            best_measurements: best_meas,
            stats,
            health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_env::circuits::synthetic::{Bowl, Tradeoff};

    #[test]
    fn solves_bowl() {
        let problem = Bowl::problem(3, 0.12).unwrap();
        let mut agent = CustomizedBo::new();
        let out = agent.search(&problem, SearchBudget::new(3000), 5);
        assert!(out.success, "best value {}", out.best_value);
    }

    #[test]
    fn solves_tradeoff() {
        let problem = Tradeoff::problem().unwrap();
        let mut agent = CustomizedBo::new();
        let out = agent.search(&problem, SearchBudget::new(3000), 2);
        assert!(out.success);
    }

    #[test]
    fn beats_pure_random_on_narrow_target() {
        use crate::random::RandomSearch;
        let problem = Bowl::problem(4, 0.1).unwrap();
        let budget = SearchBudget::new(4000);
        let mut bo_total = 0usize;
        let mut rnd_total = 0usize;
        for seed in 0..3 {
            let bo = CustomizedBo::new().search(&problem, budget, seed);
            let rnd = RandomSearch::new().search(&problem, budget, seed);
            bo_total += bo.simulations;
            rnd_total += rnd.simulations;
        }
        assert!(bo_total < rnd_total, "bo {bo_total} vs random {rnd_total}");
    }

    #[test]
    fn budget_respected_on_impossible_spec() {
        let problem = Bowl::problem(3, 0.001).unwrap();
        let mut agent = CustomizedBo::new();
        let out = agent.search(&problem, SearchBudget::new(150), 1);
        assert!(!out.success);
        assert_eq!(out.simulations, 150);
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = Bowl::problem(2, 0.15).unwrap();
        let mut agent = CustomizedBo::new();
        let a = agent.search(&problem, SearchBudget::new(500), 8);
        let b = agent.search(&problem, SearchBudget::new(500), 8);
        assert_eq!(a, b);
    }
}
