//! Pure random search — the paper's strongest non-learning baseline
//! (Table I: 100 % success at 8565 average iterations).

use asdex_env::{
    EvalRequest, EvalStats, Evaluation, HealthStats, SearchBudget, SearchOutcome, Searcher,
    SizingProblem,
};
use asdex_rng::rngs::StdRng;
use asdex_rng::SeedableRng;

/// Uniform random search over the design-space grid.
///
/// Candidates are drawn and scored in chunks through the batched
/// evaluation pipeline, so a problem with a worker pool evaluates them
/// concurrently; the outcome is identical at every thread count.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// Points sampled and evaluated per batch.
    pub chunk: usize,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch { chunk: 8 }
    }
}

impl RandomSearch {
    /// Creates the agent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Multi-corner variant used by the Table III "random search" row:
    /// each sampled point is checked at every corner (stopping at the
    /// first failing corner, as a designer would).
    pub fn search_all_corners(
        &self,
        problem: &SizingProblem,
        budget: SearchBudget,
        seed: u64,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = EvalStats::new();
        let mut best_point = vec![0.5; problem.dim()];
        let mut best_value = f64::NEG_INFINITY;
        let mut best_meas = None;
        while stats.sims < budget.max_sims {
            let u = problem.space.sample(&mut rng);
            // All corners of one point as one batch; a batch the budget
            // could not fully admit cannot count as a pass.
            let requests = EvalRequest::fan_out(&u, problem.corners.len());
            let evals = problem.evaluate_batch(&requests, budget.max_sims - stats.sims);
            let mut worst = f64::INFINITY;
            let mut all_pass = evals.len() == requests.len();
            let mut meas = None;
            for e in evals {
                stats.record(&e);
                worst = worst.min(e.value);
                if meas.is_none() {
                    meas = e.measurements;
                }
                all_pass &= e.feasible;
            }
            if worst > best_value {
                best_value = worst;
                best_point = u.clone();
                best_meas = meas;
            }
            if all_pass {
                let simulations = stats.sims;
                return SearchOutcome {
                    success: true,
                    simulations,
                    best_point: u,
                    best_value: worst,
                    best_measurements: best_meas,
                    stats,
                    health: HealthStats::new(),
                };
            }
        }
        SearchOutcome {
            success: false,
            simulations: budget.max_sims,
            best_point,
            best_value,
            best_measurements: best_meas,
            stats,
            health: HealthStats::new(),
        }
    }
}

impl Searcher for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn search(&mut self, problem: &SizingProblem, budget: SearchBudget, seed: u64) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = EvalStats::new();
        let mut best_point = vec![0.5; problem.dim()];
        let mut best_value = f64::NEG_INFINITY;
        let mut best_meas = None;
        while stats.sims < budget.max_sims {
            let requests: Vec<EvalRequest> = (0..self.chunk.max(1))
                .map(|_| EvalRequest::new(problem.space.sample(&mut rng), 0))
                .collect();
            let evals = problem.evaluate_batch(&requests, budget.max_sims - stats.sims);
            let mut feasible: Option<Evaluation> = None;
            for e in evals {
                stats.record(&e);
                if e.value > best_value {
                    best_value = e.value;
                    best_point = e.x_norm.clone();
                    best_meas = e.measurements.clone();
                }
                if e.feasible && feasible.is_none() {
                    feasible = Some(e);
                }
            }
            if let Some(e) = feasible {
                return SearchOutcome {
                    success: true,
                    simulations: stats.sims,
                    best_point: e.x_norm,
                    best_value: e.value,
                    best_measurements: e.measurements,
                    stats,
                    health: HealthStats::new(),
                };
            }
        }
        SearchOutcome {
            success: false,
            simulations: budget.max_sims,
            best_point,
            best_value,
            best_measurements: best_meas,
            stats,
            health: HealthStats::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_env::circuits::synthetic::Bowl;
    use asdex_env::{PvtCorner, PvtSet};

    #[test]
    fn finds_large_feasible_region() {
        let problem = Bowl::problem(2, 0.3).unwrap();
        let mut agent = RandomSearch::new();
        let out = agent.search(&problem, SearchBudget::new(5000), 1);
        assert!(out.success);
        assert_eq!(out.best_value, 0.0);
        assert_eq!(out.stats.sims, out.simulations, "telemetry matches accounting");
        assert_eq!(out.stats.total_failures(), 0, "synthetic bowl never fails");
    }

    #[test]
    fn exhausts_budget_on_tiny_region() {
        let problem = Bowl::problem(5, 0.01).unwrap();
        let mut agent = RandomSearch::new();
        let out = agent.search(&problem, SearchBudget::new(200), 1);
        assert!(!out.success);
        assert_eq!(out.simulations, 200);
        assert_eq!(out.stats.sims, 200);
        assert!(out.best_value < 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = Bowl::problem(3, 0.2).unwrap();
        let mut agent = RandomSearch::new();
        let a = agent.search(&problem, SearchBudget::new(1000), 9);
        let b = agent.search(&problem, SearchBudget::new(1000), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn all_corner_variant_counts_every_corner() {
        let mut problem = Bowl::problem(2, 0.25).unwrap();
        problem.corners = PvtSet::new(vec![
            PvtCorner::nominal(),
            PvtCorner { temp_celsius: 60.0, ..PvtCorner::nominal() },
        ]);
        let agent = RandomSearch::new();
        let out = agent.search_all_corners(&problem, SearchBudget::new(4000), 5);
        if out.success {
            assert!(out.simulations >= 2, "success needs at least both corners");
        }
    }
}
