//! Baseline search agents for the ASDEX experiments.
//!
//! Every agent the paper's Table I compares against, implemented from
//! scratch on the workspace's own substrates:
//!
//! * [`RandomSearch`] — uniform sampling (a strong baseline per the
//!   paper),
//! * [`CustomizedBo`] — Bayesian optimization with an extra-trees
//!   surrogate ([`ExtraTrees`]) and dynamically balanced exploration,
//! * [`rl::A2c`], [`rl::Ppo`], [`rl::Trpo`] — model-free RL agents in the
//!   AutoCkt style (multi-discrete grid moves, normalized-slack
//!   observations, the same value function as the model-based agent).
//!
//! All agents implement [`asdex_env::Searcher`], so the experiment
//! harnesses treat them interchangeably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bo;
mod random;
pub mod rl;
mod trees;

pub use bo::{BoConfig, CustomizedBo};
pub use random::RandomSearch;
pub use trees::{ExtraTrees, ForestConfig};
