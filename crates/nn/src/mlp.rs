//! Feed-forward networks with explicit backpropagation.
//!
//! [`Mlp`] is the workhorse behind both the paper's SPICE approximator
//! `f_NN(X; θ)` (a small 3-layer regression net, §IV-B) and the policy /
//! value heads of the model-free baselines. It exposes:
//!
//! * [`Mlp::forward`] — plain inference,
//! * [`Mlp::forward_trace`] + [`Mlp::backward`] — gradients w.r.t. an
//!   arbitrary output gradient (so callers implement any loss),
//! * [`Mlp::flat_params`] / [`Mlp::set_flat_params`] — the flattened
//!   parameter view TRPO's line search needs.

use crate::activation::Activation;
use asdex_rng::Rng;

/// One dense layer: `y = act(W x + b)`.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    /// Row-major `out × in` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    act: Activation,
}

impl Dense {
    fn new<R: Rng + ?Sized>(n_in: usize, n_out: usize, act: Activation, rng: &mut R) -> Self {
        // Xavier/Glorot uniform init.
        let limit = (6.0 / (n_in + n_out) as f64).sqrt();
        let w = (0..n_in * n_out).map(|_| rng.gen_range(-limit..limit)).collect();
        Dense { w, b: vec![0.0; n_out], n_in, n_out, act }
    }

    fn forward(&self, x: &[f64], pre: &mut Vec<f64>, out: &mut Vec<f64>) {
        pre.clear();
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.b[o];
            pre.push(z);
            out.push(self.act.apply(z));
        }
    }
}

/// Gradients of an [`Mlp`] with the same shape as its parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// Flattened gradient in [`Mlp::flat_params`] order.
    flat: Vec<f64>,
    /// Gradient of the loss w.r.t. the network input.
    pub input_grad: Vec<f64>,
}

impl Gradients {
    /// The flattened gradient vector (same layout as
    /// [`Mlp::flat_params`]).
    pub fn flat(&self) -> &[f64] {
        &self.flat
    }

    /// Mutable view of the flattened gradient, for in-place surgery such
    /// as global-norm clipping (`GradGuard`).
    pub fn flat_mut(&mut self) -> &mut [f64] {
        &mut self.flat
    }

    /// Scales the gradient in place.
    pub fn scale(&mut self, k: f64) {
        for g in &mut self.flat {
            *g *= k;
        }
    }

    /// Accumulates another gradient (`self += other`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, other: &Gradients) {
        assert_eq!(self.flat.len(), other.flat.len());
        for (a, b) in self.flat.iter_mut().zip(&other.flat) {
            *a += b;
        }
    }
}

/// Cached activations from [`Mlp::forward_trace`], consumed by
/// [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct Trace {
    input: Vec<f64>,
    /// Pre-activations per layer.
    pres: Vec<Vec<f64>>,
    /// Post-activations per layer.
    outs: Vec<Vec<f64>>,
}

impl Trace {
    /// The network output this trace recorded.
    pub fn output(&self) -> &[f64] {
        self.outs.last().expect("at least one layer")
    }
}

/// A multilayer perceptron.
///
/// # Example
///
/// Train a tiny net to fit `y = 2x` with plain SGD on MSE:
///
/// ```
/// use asdex_nn::{Mlp, Activation, mse_output_grad};
/// use asdex_rng::SeedableRng;
///
/// let mut rng = asdex_rng::rngs::StdRng::seed_from_u64(0);
/// let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, &mut rng);
/// for _ in 0..500 {
///     for &x in &[-1.0, -0.5, 0.0, 0.5, 1.0f64] {
///         let trace = net.forward_trace(&[x]);
///         let grad_out = mse_output_grad(trace.output(), &[2.0 * x]);
///         let grads = net.backward(&trace, &grad_out);
///         net.apply_flat_delta(grads.flat(), -0.05);
///     }
/// }
/// let y = net.forward(&[0.25]);
/// assert!((y[0] - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates a network with the given layer sizes; all hidden layers use
    /// `hidden_act`, the output layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], hidden_act: Activation, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (k, pair) in sizes.windows(2).enumerate() {
            let act = if k + 2 == sizes.len() { Activation::Identity } else { hidden_act };
            layers.push(Dense::new(pair[0], pair[1], act, rng));
        }
        Mlp { layers }
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.layers.first().expect("nonempty").n_in
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.layers.last().expect("nonempty").n_out
    }

    /// Plain forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_in()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_in(), "input dimension mismatch");
        let mut cur = x.to_vec();
        let mut pre = Vec::new();
        let mut out = Vec::new();
        for layer in &self.layers {
            layer.forward(&cur, &mut pre, &mut out);
            std::mem::swap(&mut cur, &mut out);
        }
        cur
    }

    /// Forward pass that records the activations needed for
    /// [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_in()`.
    pub fn forward_trace(&self, x: &[f64]) -> Trace {
        assert_eq!(x.len(), self.n_in(), "input dimension mismatch");
        let mut pres = Vec::with_capacity(self.layers.len());
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut cur = x.to_vec();
        for layer in &self.layers {
            let mut pre = Vec::new();
            let mut out = Vec::new();
            layer.forward(&cur, &mut pre, &mut out);
            cur = out.clone();
            pres.push(pre);
            outs.push(out);
        }
        Trace { input: x.to_vec(), pres, outs }
    }

    /// Backpropagates `dL/dy` (gradient of any scalar loss w.r.t. the
    /// network output) through a recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if `output_grad.len() != self.n_out()`.
    pub fn backward(&self, trace: &Trace, output_grad: &[f64]) -> Gradients {
        assert_eq!(output_grad.len(), self.n_out(), "output gradient dimension mismatch");
        let mut flat = vec![0.0; self.param_count()];
        // Walk layers backwards, maintaining delta = dL/d(pre-activation).
        let mut delta: Vec<f64> = Vec::new();
        let mut offsets = self.layer_offsets();
        offsets.reverse();

        let mut upstream = output_grad.to_vec();
        for (rev_k, layer) in self.layers.iter().enumerate().rev() {
            let pre = &trace.pres[rev_k];
            delta.clear();
            delta.extend(
                upstream
                    .iter()
                    .zip(pre)
                    .map(|(u, &z)| u * layer.act.derivative(z)),
            );
            let input: &[f64] = if rev_k == 0 { &trace.input } else { &trace.outs[rev_k - 1] };
            let off = offsets[self.layers.len() - 1 - rev_k];
            // dW[o][i] = delta[o] * input[i]; db[o] = delta[o].
            for o in 0..layer.n_out {
                let base = off + o * layer.n_in;
                for (i, &xi) in input.iter().enumerate() {
                    flat[base + i] += delta[o] * xi;
                }
                flat[off + layer.n_out * layer.n_in + o] += delta[o];
            }
            // Upstream for the previous layer: W^T delta.
            let mut next_up = vec![0.0; layer.n_in];
            for (o, &d) in delta.iter().enumerate().take(layer.n_out) {
                let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                for (i, &wi) in row.iter().enumerate() {
                    next_up[i] += wi * d;
                }
            }
            upstream = next_up;
        }
        Gradients { flat, input_grad: upstream }
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Flattened parameters: per layer, weights row-major then biases.
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Overwrites all parameters from a flattened vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.param_count()`.
    pub fn set_flat_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.param_count(), "parameter count mismatch");
        let mut k = 0;
        for l in &mut self.layers {
            let nw = l.w.len();
            l.w.copy_from_slice(&params[k..k + nw]);
            k += nw;
            let nb = l.b.len();
            l.b.copy_from_slice(&params[k..k + nb]);
            k += nb;
        }
    }

    /// In-place `θ += alpha · delta` on the flattened parameters — the
    /// primitive behind SGD and line searches.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != self.param_count()`.
    pub fn apply_flat_delta(&mut self, delta: &[f64], alpha: f64) {
        assert_eq!(delta.len(), self.param_count(), "parameter count mismatch");
        let mut k = 0;
        for l in &mut self.layers {
            for w in &mut l.w {
                *w += alpha * delta[k];
                k += 1;
            }
            for b in &mut l.b {
                *b += alpha * delta[k];
                k += 1;
            }
        }
    }

    /// Starting offset of each layer's parameters in the flat layout.
    fn layer_offsets(&self) -> Vec<usize> {
        let mut offs = Vec::with_capacity(self.layers.len());
        let mut k = 0;
        for l in &self.layers {
            offs.push(k);
            k += l.w.len() + l.b.len();
        }
        offs
    }
}

/// Gradient of mean-squared error `L = Σ (y − t)² / n` w.r.t. `y`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mse_output_grad(y: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), target.len(), "mse dimension mismatch");
    let n = y.len() as f64;
    y.iter().zip(target).map(|(yi, ti)| 2.0 * (yi - ti) / n).collect()
}

/// Mean-squared error between a prediction and a target.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mse(y: &[f64], target: &[f64]) -> f64 {
    assert_eq!(y.len(), target.len(), "mse dimension mismatch");
    let n = y.len() as f64;
    y.iter().zip(target).map(|(yi, ti)| (yi - ti) * (yi - ti)).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_rng::rngs::StdRng;
    use asdex_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn shapes() {
        let net = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng());
        assert_eq!(net.n_in(), 3);
        assert_eq!(net.n_out(), 2);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 2);
    }

    #[test]
    fn flat_params_round_trip() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, &mut rng());
        let p = net.flat_params();
        let y0 = net.forward(&[0.3, -0.4]);
        let mut p2 = p.clone();
        for v in &mut p2 {
            *v += 1.0;
        }
        net.set_flat_params(&p2);
        assert_ne!(net.forward(&[0.3, -0.4]), y0);
        net.set_flat_params(&p);
        assert_eq!(net.forward(&[0.3, -0.4]), y0);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut net = Mlp::new(&[2, 4, 3], Activation::Tanh, &mut rng());
        let x = [0.3, -0.7];
        let target = [0.1, -0.2, 0.4];
        let trace = net.forward_trace(&x);
        let grads = net.backward(&trace, &mse_output_grad(trace.output(), &target));

        let p0 = net.flat_params();
        let h = 1e-6;
        for k in (0..p0.len()).step_by(3) {
            let mut p = p0.clone();
            p[k] += h;
            net.set_flat_params(&p);
            let up = mse(&net.forward(&x), &target);
            p[k] -= 2.0 * h;
            net.set_flat_params(&p);
            let down = mse(&net.forward(&x), &target);
            let fd = (up - down) / (2.0 * h);
            assert!(
                (grads.flat()[k] - fd).abs() < 1e-6 * (1.0 + fd.abs()),
                "param {k}: analytic {} vs fd {fd}",
                grads.flat()[k]
            );
        }
    }

    #[test]
    fn input_gradient_check() {
        let net = Mlp::new(&[3, 6, 1], Activation::Tanh, &mut rng());
        let x = [0.2, 0.5, -0.1];
        let trace = net.forward_trace(&x);
        let grads = net.backward(&trace, &[1.0]);
        let h = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += h;
            let up = net.forward(&xp)[0];
            xp[i] -= 2.0 * h;
            let down = net.forward(&xp)[0];
            let fd = (up - down) / (2.0 * h);
            assert!((grads.input_grad[i] - fd).abs() < 1e-7, "input {i}");
        }
    }

    #[test]
    fn relu_gradient_check() {
        let mut net = Mlp::new(&[2, 8, 1], Activation::Relu, &mut rng());
        let x = [0.9, -0.4];
        let target = [0.3];
        let trace = net.forward_trace(&x);
        let grads = net.backward(&trace, &mse_output_grad(trace.output(), &target));
        let p0 = net.flat_params();
        let h = 1e-7;
        for k in (0..p0.len()).step_by(5) {
            let mut p = p0.clone();
            p[k] += h;
            net.set_flat_params(&p);
            let up = mse(&net.forward(&x), &target);
            net.set_flat_params(&p0);
            let base = mse(&net.forward(&x), &target);
            let fd = (up - base) / h;
            assert!(
                (grads.flat()[k] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {k}: {} vs {fd}",
                grads.flat()[k]
            );
        }
    }

    #[test]
    fn learns_linear_function() {
        let mut rng = rng();
        let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, &mut rng);
        for _ in 0..2000 {
            let x = rng.gen_range(-1.0..1.0);
            let trace = net.forward_trace(&[x]);
            let g = net.backward(&trace, &mse_output_grad(trace.output(), &[0.5 * x + 0.2]));
            net.apply_flat_delta(g.flat(), -0.05);
        }
        for &x in &[-0.8, -0.2, 0.0, 0.4, 0.9] {
            let y = net.forward(&[x])[0];
            assert!((y - (0.5 * x + 0.2)).abs() < 0.05, "x={x}, y={y}");
        }
    }

    #[test]
    fn gradients_accumulate_and_scale() {
        let net = Mlp::new(&[1, 2, 1], Activation::Tanh, &mut rng());
        let t = net.forward_trace(&[0.5]);
        let mut g1 = net.backward(&t, &[1.0]);
        let g2 = net.backward(&t, &[1.0]);
        g1.add(&g2);
        g1.scale(0.5);
        for (a, b) in g1.flat().iter().zip(g2.flat()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn params_transfer_between_networks() {
        let net = Mlp::new(&[2, 3, 1], Activation::Relu, &mut rng());
        let mut back = Mlp::new(&[2, 3, 1], Activation::Relu, &mut rng());
        back.set_flat_params(&net.flat_params());
        for (a, b) in back.flat_params().iter().zip(net.flat_params()) {
            assert_eq!(*a, b);
        }
        let ya = back.forward(&[0.1, 0.2]);
        let yb = net.forward(&[0.1, 0.2]);
        assert!((ya[0] - yb[0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_size_panics() {
        let net = Mlp::new(&[2, 2], Activation::Relu, &mut rng());
        let _ = net.forward(&[1.0]);
    }
}
