//! Categorical (softmax) distribution utilities for the model-free
//! baselines' policy heads: sampling, log-probabilities, entropy, KL, and
//! the gradients policy-gradient losses need.

use asdex_rng::Rng;

/// Numerically stable softmax.
///
/// Degenerate input — no finite logit at all (all `-inf`, or NaN-laden) —
/// would otherwise produce `0/0 = NaN` probabilities; it falls back to
/// the uniform distribution instead, the only defensible answer when the
/// logits carry no information.
///
/// ```
/// let p = asdex_nn::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().filter(|l| l.is_finite()).fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return vec![1.0 / logits.len() as f64; logits.len()];
    }
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Numerically stable log-softmax. Falls back to the uniform
/// distribution's `-ln n` when no logit is finite, mirroring [`softmax`].
pub fn log_softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().filter(|l| l.is_finite()).fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return vec![-(logits.len() as f64).ln(); logits.len()];
    }
    let lse = logits.iter().map(|&l| (l - max).exp()).sum::<f64>().ln() + max;
    logits.iter().map(|&l| l - lse).collect()
}

/// Samples an index from the categorical distribution over `logits`.
pub fn sample_categorical<R: Rng + ?Sized>(logits: &[f64], rng: &mut R) -> usize {
    let p = softmax(logits);
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, pi) in p.iter().enumerate() {
        acc += pi;
        if u <= acc {
            return i;
        }
    }
    p.len() - 1
}

/// Entropy of the categorical distribution over `logits` \[nats\].
pub fn entropy(logits: &[f64]) -> f64 {
    let p = softmax(logits);
    let logp = log_softmax(logits);
    -p.iter().zip(&logp).map(|(pi, li)| pi * li).sum::<f64>()
}

/// `KL(p_old ‖ p_new)` between two categorical distributions given by
/// logits.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn kl_divergence(old_logits: &[f64], new_logits: &[f64]) -> f64 {
    assert_eq!(old_logits.len(), new_logits.len(), "kl dimension mismatch");
    let p_old = softmax(old_logits);
    let lp_old = log_softmax(old_logits);
    let lp_new = log_softmax(new_logits);
    p_old
        .iter()
        .zip(lp_old.iter().zip(&lp_new))
        .map(|(p, (lo, ln))| p * (lo - ln))
        .sum()
}

/// Gradient of `log π(action)` w.r.t. the logits: `1{i=a} − p_i`.
pub fn log_prob_grad(logits: &[f64], action: usize) -> Vec<f64> {
    let p = softmax(logits);
    p.iter()
        .enumerate()
        .map(|(i, pi)| if i == action { 1.0 - pi } else { -pi })
        .collect()
}

/// Gradient of the entropy w.r.t. the logits:
/// `∂H/∂z_i = −p_i (log p_i + H)`.
pub fn entropy_grad(logits: &[f64]) -> Vec<f64> {
    let p = softmax(logits);
    let logp = log_softmax(logits);
    let h = entropy(logits);
    p.iter().zip(&logp).map(|(pi, li)| -pi * (li + h)).collect()
}

/// Gradient of `KL(p_old ‖ p_new)` w.r.t. the **new** logits:
/// `∂KL/∂z_i = p_new_i − p_old_i`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn kl_grad_new(old_logits: &[f64], new_logits: &[f64]) -> Vec<f64> {
    assert_eq!(old_logits.len(), new_logits.len(), "kl dimension mismatch");
    let p_old = softmax(old_logits);
    let p_new = softmax(new_logits);
    p_new.iter().zip(&p_old).map(|(n, o)| n - o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdex_rng::rngs::StdRng;
    use asdex_rng::SeedableRng;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        let huge = softmax(&[1e6, 0.0]);
        assert!(huge[0].is_finite() && (huge[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_neg_inf_logits_fall_back_to_uniform() {
        // Regression: `max = -inf` made `(l - max)` a `-inf - -inf = NaN`
        // and every probability 0/0. A policy head whose logits all
        // underflow must degrade to the uniform distribution instead.
        let logits = [f64::NEG_INFINITY; 3];
        let p = softmax(&logits);
        for pi in &p {
            assert!(pi.is_finite(), "softmax produced non-finite {pi}");
            assert!((pi - 1.0 / 3.0).abs() < 1e-12, "expected uniform, got {pi}");
        }
        let lp = log_softmax(&logits);
        for li in &lp {
            assert!(li.is_finite(), "log_softmax produced non-finite {li}");
            assert!((li + 3f64.ln()).abs() < 1e-12, "expected -ln 3, got {li}");
        }
        // A partially -inf head is still handled by the ordinary path.
        let mixed = [f64::NEG_INFINITY, 0.0];
        let p = softmax(&mixed);
        assert_eq!(p[0], 0.0);
        assert!((p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_softmax_consistent() {
        let logits = [0.3, -1.2, 2.0];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (pi, li) in p.iter().zip(&lp) {
            assert!((pi.ln() - li).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_entropy_is_log_n() {
        let h = entropy(&[0.0, 0.0, 0.0, 0.0]);
        assert!((h - 4f64.ln()).abs() < 1e-12);
        // Peaked distribution has near-zero entropy.
        assert!(entropy(&[100.0, 0.0]) < 1e-10);
    }

    #[test]
    fn kl_properties() {
        let a = [0.5, -0.3, 1.0];
        assert!(kl_divergence(&a, &a).abs() < 1e-12, "KL(p‖p) = 0");
        let b = [1.5, 0.0, -1.0];
        assert!(kl_divergence(&a, &b) > 0.0, "KL > 0 for p != q");
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let logits = [0.0, 2.0_f64.ln()]; // p = [1/3, 2/3]
        let n = 30_000;
        let ones = (0..n).filter(|_| sample_categorical(&logits, &mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "sampled {frac}");
    }

    #[test]
    fn log_prob_grad_matches_fd() {
        let logits = [0.4, -0.9, 1.3];
        let action = 1;
        let g = log_prob_grad(&logits, action);
        let h = 1e-6;
        for i in 0..3 {
            let mut up = logits;
            up[i] += h;
            let mut dn = logits;
            dn[i] -= h;
            let fd = (log_softmax(&up)[action] - log_softmax(&dn)[action]) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-8, "logit {i}");
        }
    }

    #[test]
    fn entropy_grad_matches_fd() {
        let logits = [0.2, -0.5, 0.9, 0.0];
        let g = entropy_grad(&logits);
        let h = 1e-6;
        for i in 0..4 {
            let mut up = logits;
            up[i] += h;
            let mut dn = logits;
            dn[i] -= h;
            let fd = (entropy(&up) - entropy(&dn)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-8, "logit {i}");
        }
    }

    #[test]
    fn kl_grad_matches_fd() {
        let old = [0.1, 0.7, -0.2];
        let new = [0.3, 0.2, 0.5];
        let g = kl_grad_new(&old, &new);
        let h = 1e-6;
        for i in 0..3 {
            let mut up = new;
            up[i] += h;
            let mut dn = new;
            dn[i] -= h;
            let fd = (kl_divergence(&old, &up) - kl_divergence(&old, &dn)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-8, "logit {i}");
        }
    }
}
