//! Input/output standardization for regression targets.
//!
//! The SPICE approximator trains on measurements spanning wildly different
//! units (dB, Hz, W, m²); fitting raw targets would let the largest unit
//! dominate the MSE. [`Normalizer`] maintains per-component mean/std over
//! the points seen so far and maps both ways.


/// Per-component standardizer: `z = (x − mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    dim: usize,
    count: usize,
    mean: Vec<f64>,
    /// Running sum of squared deviations (Welford).
    m2: Vec<f64>,
}

impl Normalizer {
    /// Creates a standardizer for `dim`-component vectors.
    pub fn new(dim: usize) -> Self {
        Normalizer { dim, count: 0, mean: vec![0.0; dim], m2: vec![0.0; dim] }
    }

    /// Number of observed vectors.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Dimension of the vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Observes one vector (Welford update).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn observe(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.dim, "normalizer dimension mismatch");
        self.count += 1;
        for (i, &xi) in x.iter().enumerate() {
            let d = xi - self.mean[i];
            self.mean[i] += d / self.count as f64;
            self.m2[i] += d * (xi - self.mean[i]);
        }
    }

    /// Current per-component standard deviation (1.0 until two samples
    /// exist or when a component is constant).
    pub fn std(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| {
                if self.count < 2 {
                    1.0
                } else {
                    let var = self.m2[i] / (self.count - 1) as f64;
                    if var > 1e-24 {
                        var.sqrt()
                    } else {
                        1.0
                    }
                }
            })
            .collect()
    }

    /// Current per-component mean.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Standardizes a vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "normalizer dimension mismatch");
        debug_assert!(
            x.iter().all(|v| v.is_finite()),
            "normalize called with non-finite input {x:?}"
        );
        let std = self.std();
        x.iter().enumerate().map(|(i, &v)| (v - self.mean[i]) / std[i]).collect()
    }

    /// Inverts [`Normalizer::normalize`].
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn denormalize(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.dim, "normalizer dimension mismatch");
        debug_assert!(
            z.iter().all(|v| v.is_finite()),
            "denormalize called with non-finite input {z:?}"
        );
        let std = self.std();
        z.iter().enumerate().map(|(i, &v)| v * std[i] + self.mean[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_match_closed_form() {
        let mut n = Normalizer::new(2);
        let data = [[1.0, 100.0], [3.0, 200.0], [5.0, 300.0]];
        for d in &data {
            n.observe(d);
        }
        assert_eq!(n.count(), 3);
        assert!((n.mean()[0] - 3.0).abs() < 1e-12);
        assert!((n.mean()[1] - 200.0).abs() < 1e-12);
        let s = n.std();
        assert!((s[0] - 2.0).abs() < 1e-12);
        assert!((s[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip() {
        let mut n = Normalizer::new(3);
        for k in 0..10 {
            n.observe(&[k as f64, 2.0 * k as f64 + 1.0, -0.5 * k as f64]);
        }
        let x = [4.2, -1.0, 7.0];
        let z = n.normalize(&x);
        let back = n.denormalize(&z);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_cases_fall_back_to_unit_scale() {
        let mut n = Normalizer::new(1);
        assert_eq!(n.std(), vec![1.0], "no data");
        n.observe(&[5.0]);
        assert_eq!(n.std(), vec![1.0], "one sample");
        n.observe(&[5.0]);
        n.observe(&[5.0]);
        assert_eq!(n.std(), vec![1.0], "constant component");
        // Normalization of the constant just centers it.
        assert_eq!(n.normalize(&[5.0]), vec![0.0]);
    }

    #[test]
    fn constant_feature_round_trips_without_nan() {
        // A constant component has zero variance; the unit-scale fallback
        // must keep normalize/denormalize a finite, exact round trip
        // instead of dividing by zero.
        let mut n = Normalizer::new(2);
        for k in 0..10 {
            n.observe(&[7.5, k as f64]);
        }
        let x = [7.5, 4.0];
        let z = n.normalize(&x);
        assert!(z.iter().all(|v| v.is_finite()), "normalized constant went non-finite: {z:?}");
        assert_eq!(z[0], 0.0, "constant centers to zero");
        let back = n.denormalize(&z);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12, "round trip drifted: {a} vs {b}");
        }
    }

    #[test]
    fn standardized_data_has_unit_stats() {
        let mut n = Normalizer::new(1);
        let data: Vec<f64> = (0..100).map(|k| (k as f64 * 0.37).sin() * 13.0 + 5.0).collect();
        for &d in &data {
            n.observe(&[d]);
        }
        let zs: Vec<f64> = data.iter().map(|&d| n.normalize(&[d])[0]).collect();
        let mean = zs.iter().sum::<f64>() / zs.len() as f64;
        let var = zs.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / (zs.len() - 1) as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }
}
