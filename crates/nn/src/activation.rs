//! Activation functions.


/// Element-wise activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear output layer).
    Identity,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation, expressed in terms of the
    /// **pre-activation** value `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_shape() {
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.derivative(2.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-2.0), 0.0);
    }

    #[test]
    fn tanh_derivative_matches_fd() {
        for &x in &[-2.0, -0.3, 0.0, 0.7, 1.9] {
            let d = Activation::Tanh.derivative(x);
            let h = 1e-6;
            let fd = (Activation::Tanh.apply(x + h) - Activation::Tanh.apply(x - h)) / (2.0 * h);
            assert!((d - fd).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn identity_passthrough() {
        assert_eq!(Activation::Identity.apply(-7.5), -7.5);
        assert_eq!(Activation::Identity.derivative(123.0), 1.0);
    }
}
