//! Numeric guards for the training loop: gradient clipping, non-finite
//! detection, and loss-explosion sentinels.
//!
//! Analog sizing trains its surrogate online on whatever the simulator
//! returns. A single huge-but-finite measurement (a near-singular bias
//! point, an injected fault) can send one backprop pass off to 1e60 and
//! silently corrupt every weight. The self-healing layer interposes two
//! small, deterministic mechanisms before any optimizer step:
//!
//! * [`GradGuard`] — rejects non-finite gradients outright and clips the
//!   rest to a global-norm ceiling, exactly once, before the step;
//! * [`TrainHealth`] — classifies each update's loss against a running
//!   median of recent healthy losses, flagging order-of-magnitude
//!   explosions so the owner can roll back to a last-good snapshot.
//!
//! Neither consumes randomness or wall-clock, so guarded training remains
//! bitwise deterministic given the seed — the thread-count and
//! crash/resume invariance contracts hold verbatim.

/// How one gradient fared against the guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardOutcome {
    /// Gradient finite and within the norm ceiling; apply as-is.
    Ok,
    /// Gradient finite but over the ceiling; it was rescaled in place and
    /// should be applied.
    Clipped,
    /// Gradient contained NaN/Inf; it must not be applied at all (an
    /// optimizer step would poison the moments and the weights).
    NonFinite,
}

/// Global-norm gradient clipping with non-finite rejection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradGuard {
    /// Global L2-norm ceiling; gradients above it are rescaled to it.
    pub max_norm: f64,
}

impl GradGuard {
    /// Creates a guard with the given global-norm ceiling.
    pub fn new(max_norm: f64) -> Self {
        assert!(max_norm > 0.0, "max_norm must be positive");
        GradGuard { max_norm }
    }

    /// Checks `grad` and clips it in place when its global norm exceeds
    /// the ceiling. Returns what happened; on [`GuardOutcome::NonFinite`]
    /// the gradient is left untouched and must be discarded by the caller.
    pub fn apply(&self, grad: &mut [f64]) -> GuardOutcome {
        if grad.iter().any(|g| !g.is_finite()) {
            return GuardOutcome::NonFinite;
        }
        // Overflow-safe global norm: factor out the largest magnitude so
        // squaring cannot hit +Inf even for components near f64::MAX.
        let max_abs = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
        if max_abs == 0.0 {
            return GuardOutcome::Ok;
        }
        let norm = max_abs
            * grad.iter().map(|g| (g / max_abs) * (g / max_abs)).sum::<f64>().sqrt();
        if norm <= self.max_norm {
            return GuardOutcome::Ok;
        }
        let scale = self.max_norm / norm;
        for g in grad.iter_mut() {
            *g *= scale;
        }
        GuardOutcome::Clipped
    }
}

impl Default for GradGuard {
    /// A generous default ceiling: healthy surrogate/policy gradients in
    /// this workspace sit orders of magnitude below 1e3, so clean runs
    /// never clip while poisoned batches are still tamed.
    fn default() -> Self {
        GradGuard::new(1e3)
    }
}

/// Classification of one training update by [`TrainHealth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateClass {
    /// Loss finite and consistent with recent history.
    Ok,
    /// Gradient was clipped but the loss is otherwise healthy.
    Clipped,
    /// Loss or gradient contained NaN/Inf.
    NonFinite,
    /// Loss finite but an order of magnitude above the running median of
    /// recent healthy losses — the model is diverging.
    LossExplosion,
}

/// Running-median loss sentinel.
///
/// Keeps a short window of recent *healthy* losses and flags a new loss
/// as [`UpdateClass::LossExplosion`] when it exceeds
/// `explosion_factor × max(median, median_floor)`. Explosive and
/// non-finite losses are never pushed into the window, so one bad batch
/// cannot shift the baseline it is judged against.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainHealth {
    /// Multiple of the running median at which a loss counts as exploded.
    pub explosion_factor: f64,
    /// Floor on the median so near-zero converged losses don't make every
    /// tiny wobble look explosive.
    pub median_floor: f64,
    /// Updates observed before explosion detection arms.
    pub min_history: usize,
    window: Vec<f64>,
    capacity: usize,
}

impl TrainHealth {
    /// Creates a sentinel with the given window capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "window capacity must be at least 1");
        TrainHealth {
            explosion_factor: 32.0,
            median_floor: 0.1,
            min_history: 5,
            window: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// The same sentinel with different explosion thresholds — lower
    /// `explosion_factor`/`median_floor` make it more sensitive.
    pub fn with_thresholds(mut self, explosion_factor: f64, median_floor: f64) -> Self {
        assert!(explosion_factor > 1.0, "explosion factor must exceed 1");
        assert!(median_floor >= 0.0, "median floor must be non-negative");
        self.explosion_factor = explosion_factor;
        self.median_floor = median_floor;
        self
    }

    /// Classifies one update given its loss and the gradient-guard
    /// outcome, updating the healthy-loss window as a side effect.
    pub fn classify(&mut self, loss: f64, guard: GuardOutcome) -> UpdateClass {
        if guard == GuardOutcome::NonFinite || !loss.is_finite() {
            return UpdateClass::NonFinite;
        }
        if self.window.len() >= self.min_history {
            let threshold = self.explosion_factor * self.median().max(self.median_floor);
            if loss > threshold {
                return UpdateClass::LossExplosion;
            }
        }
        self.push(loss);
        if guard == GuardOutcome::Clipped {
            UpdateClass::Clipped
        } else {
            UpdateClass::Ok
        }
    }

    /// Median of the healthy-loss window (0.0 when empty).
    pub fn median(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let mut sorted = self.window.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("window holds finite losses"));
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        }
    }

    /// Number of healthy losses currently in the window.
    pub fn history_len(&self) -> usize {
        self.window.len()
    }

    /// Clears the loss history (e.g. after a rollback, when the upcoming
    /// losses will follow a new regime).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    fn push(&mut self, loss: f64) {
        if self.window.len() == self.capacity {
            self.window.remove(0);
        }
        self.window.push(loss);
    }
}

impl Default for TrainHealth {
    fn default() -> Self {
        TrainHealth::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_passes_small_gradients_untouched() {
        let guard = GradGuard::new(10.0);
        let mut g = vec![1.0, -2.0, 2.0];
        let before = g.clone();
        assert_eq!(guard.apply(&mut g), GuardOutcome::Ok);
        assert_eq!(g, before);
    }

    #[test]
    fn guard_clips_to_the_ceiling() {
        let guard = GradGuard::new(1.0);
        let mut g = vec![3.0, 4.0]; // norm 5
        assert_eq!(guard.apply(&mut g), GuardOutcome::Clipped);
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-12, "clipped norm {norm}");
        assert!((g[0] / g[1] - 3.0 / 4.0).abs() < 1e-12, "direction preserved");
    }

    #[test]
    fn guard_rejects_non_finite_without_mutating() {
        let guard = GradGuard::new(1.0);
        let mut g = vec![1.0, f64::NAN];
        assert_eq!(guard.apply(&mut g), GuardOutcome::NonFinite);
        assert_eq!(g[0], 1.0);
        let mut g = vec![f64::INFINITY, 0.0];
        assert_eq!(guard.apply(&mut g), GuardOutcome::NonFinite);
    }

    #[test]
    fn guard_survives_near_max_components() {
        // A naive Σg² would overflow to +Inf here and break the rescale.
        let guard = GradGuard::new(1.0);
        let mut g = vec![1e200, -1e200];
        assert_eq!(guard.apply(&mut g), GuardOutcome::Clipped);
        assert!(g.iter().all(|v| v.is_finite()));
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "clipped norm {norm}");
    }

    #[test]
    fn guard_zero_gradient_is_ok() {
        let guard = GradGuard::new(1.0);
        let mut g = vec![0.0, 0.0];
        assert_eq!(guard.apply(&mut g), GuardOutcome::Ok);
    }

    #[test]
    fn health_flags_explosions_after_warmup() {
        let mut h = TrainHealth::new(8);
        for _ in 0..6 {
            assert_eq!(h.classify(0.5, GuardOutcome::Ok), UpdateClass::Ok);
        }
        // 0.5 median, floor 0.1 → threshold 16; a 100× jump must flag.
        assert_eq!(h.classify(50.0, GuardOutcome::Ok), UpdateClass::LossExplosion);
        // The explosive loss was not pushed: the median is unchanged and a
        // healthy loss still classifies as Ok.
        assert!((h.median() - 0.5).abs() < 1e-12);
        assert_eq!(h.classify(0.6, GuardOutcome::Ok), UpdateClass::Ok);
    }

    #[test]
    fn health_is_lenient_before_warmup() {
        let mut h = TrainHealth::new(8);
        // With fewer than min_history samples nothing is explosive.
        assert_eq!(h.classify(1e9, GuardOutcome::Ok), UpdateClass::Ok);
    }

    #[test]
    fn health_floor_tolerates_converged_losses() {
        let mut h = TrainHealth::new(8);
        for _ in 0..6 {
            h.classify(1e-6, GuardOutcome::Ok);
        }
        // Median ~1e-6 but the floor keeps the threshold at 3.2: a loss of
        // 1.0 is a wobble, not an explosion.
        assert_eq!(h.classify(1.0, GuardOutcome::Ok), UpdateClass::Ok);
        assert_eq!(h.classify(100.0, GuardOutcome::Ok), UpdateClass::LossExplosion);
    }

    #[test]
    fn health_propagates_guard_outcomes() {
        let mut h = TrainHealth::new(8);
        assert_eq!(h.classify(0.5, GuardOutcome::Clipped), UpdateClass::Clipped);
        assert_eq!(h.classify(f64::NAN, GuardOutcome::Ok), UpdateClass::NonFinite);
        assert_eq!(h.classify(0.5, GuardOutcome::NonFinite), UpdateClass::NonFinite);
    }

    #[test]
    fn health_reset_clears_history() {
        let mut h = TrainHealth::new(8);
        for _ in 0..6 {
            h.classify(0.5, GuardOutcome::Ok);
        }
        h.reset();
        assert_eq!(h.history_len(), 0);
        // Back to the lenient warmup regime.
        assert_eq!(h.classify(1e9, GuardOutcome::Ok), UpdateClass::Ok);
    }

    #[test]
    fn window_is_bounded() {
        let mut h = TrainHealth::new(4);
        for k in 0..20 {
            h.classify(0.1 + k as f64 * 0.01, GuardOutcome::Ok);
        }
        assert_eq!(h.history_len(), 4);
    }
}
