//! Feed-forward neural networks for ASDEX.
//!
//! This crate implements the learning substrate of the DAC 2021 paper:
//!
//! * [`Mlp`] — dense feed-forward networks with explicit backprop, the
//!   paper's 3-layer SPICE approximator (eq. 3) and the baselines' policy
//!   and value heads,
//! * [`Sgd`] / [`Adam`] — first-order optimizers over flattened
//!   parameters,
//! * [`Normalizer`] — running standardization of inputs/targets,
//! * categorical policy utilities ([`softmax`], [`log_prob_grad`],
//!   [`kl_divergence`], …) used by A2C/PPO/TRPO, and
//! * training-health guards ([`GradGuard`], [`TrainHealth`]) — global-norm
//!   gradient clipping, non-finite rejection, and running-median
//!   loss-explosion sentinels for the self-healing learning loop.
//!
//! Everything is deterministic given a seeded RNG, which the experiment
//! harnesses rely on.
//!
//! # Example
//!
//! ```
//! use asdex_nn::{Mlp, Activation, Adam, Optimizer, mse_output_grad};
//! use asdex_rng::SeedableRng;
//!
//! let mut rng = asdex_rng::rngs::StdRng::seed_from_u64(1);
//! let mut net = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut rng);
//! let mut adam = Adam::new(0.01);
//! for _ in 0..300 {
//!     let trace = net.forward_trace(&[0.5, -0.5]);
//!     let g = net.backward(&trace, &mse_output_grad(trace.output(), &[1.0]));
//!     adam.step(&mut net, g.flat());
//! }
//! assert!((net.forward(&[0.5, -0.5])[0] - 1.0).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod categorical;
mod guard;
mod mlp;
mod normalizer;
mod optimizer;

pub use activation::Activation;
pub use categorical::{
    entropy, entropy_grad, kl_divergence, kl_grad_new, log_prob_grad, log_softmax,
    sample_categorical, softmax,
};
pub use guard::{GradGuard, GuardOutcome, TrainHealth, UpdateClass};
pub use mlp::{mse, mse_output_grad, Gradients, Mlp, Trace};
pub use normalizer::Normalizer;
pub use optimizer::{Adam, Optimizer, Sgd};
