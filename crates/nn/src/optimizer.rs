//! First-order optimizers operating on flattened parameter vectors.

use crate::mlp::Mlp;

/// An optimizer that turns a flat gradient into a flat parameter update.
pub trait Optimizer {
    /// Computes the update for `grad` and applies it to `net`
    /// (minimization: steps **against** the gradient).
    fn step(&mut self, net: &mut Mlp, grad: &[f64]);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp, grad: &[f64]) {
        if self.velocity.len() != grad.len() {
            self.velocity = vec![0.0; grad.len()];
        }
        let mut update = vec![0.0; grad.len()];
        for ((v, g), u) in self.velocity.iter_mut().zip(grad).zip(&mut update) {
            *v = self.momentum * *v - self.lr * g;
            *u = *v;
        }
        net.apply_flat_delta(&update, 1.0);
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with standard hyperparameters.
    pub fn new(lr: f64) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: Vec::new(), v: Vec::new(), t: 0 }
    }

    /// Resets the moment estimates (e.g. when the training distribution
    /// shifts after a trust-region restart).
    pub fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp, grad: &[f64]) {
        if self.m.len() != grad.len() {
            self.m = vec![0.0; grad.len()];
            self.v = vec![0.0; grad.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let mut update = vec![0.0; grad.len()];
        for i in 0..grad.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            update[i] = -self.lr * mhat / (vhat.sqrt() + self.eps);
        }
        net.apply_flat_delta(&update, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::{mse, mse_output_grad};
    use asdex_rng::rngs::StdRng;
    use asdex_rng::{Rng, SeedableRng};

    fn train<O: Optimizer>(opt: &mut O, epochs: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Mlp::new(&[1, 12, 1], Activation::Tanh, &mut rng);
        for _ in 0..epochs {
            let x = rng.gen_range(-1.0..1.0);
            let target = [x * x];
            let trace = net.forward_trace(&[x]);
            let g = net.backward(&trace, &mse_output_grad(trace.output(), &target));
            opt.step(&mut net, g.flat());
        }
        let mut loss = 0.0;
        for k in 0..20 {
            let x = -1.0 + 2.0 * k as f64 / 19.0;
            loss += mse(&net.forward(&[x]), &[x * x]);
        }
        loss / 20.0
    }

    #[test]
    fn sgd_reduces_loss() {
        let loss = train(&mut Sgd::new(0.05), 3000);
        assert!(loss < 0.01, "sgd final loss {loss}");
    }

    #[test]
    fn momentum_helps_or_matches() {
        let plain = train(&mut Sgd::new(0.02), 1500);
        let mom = train(&mut Sgd::with_momentum(0.02, 0.9), 1500);
        assert!(mom < plain * 2.0, "momentum not catastrophically worse");
        assert!(mom < 0.02);
    }

    #[test]
    fn adam_converges_fast() {
        let loss = train(&mut Adam::new(0.01), 2500);
        assert!(loss < 0.005, "adam final loss {loss}");
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut adam = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Mlp::new(&[1, 2, 1], Activation::Tanh, &mut rng);
        let t = net.forward_trace(&[0.5]);
        let g = net.backward(&t, &[1.0]);
        adam.step(&mut net, g.flat());
        assert!(adam.t == 1);
        adam.reset();
        assert!(adam.t == 0);
    }
}
