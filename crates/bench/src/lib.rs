//! Shared infrastructure for the ASDEX experiment harnesses.
//!
//! Every table and figure of the paper has a `harness = false` bench
//! target in this crate; `cargo bench --workspace` regenerates them all.
//! This library provides the common pieces: run-count scaling (`--full`
//! for paper-scale repetition counts), statistics, table printing, and
//! CSV output under `bench_results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// How many repetitions to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Runs for cheap agents (ours, BO, random). Paper: 100.
    pub many: usize,
    /// Runs for expensive agents (model-free RL). Paper: 10.
    pub few: usize,
    /// `true` when `--full` (paper-scale counts) was requested.
    pub full: bool,
}

impl RunScale {
    /// Parses the scale from CLI args / `ASDEX_FULL`: default is a
    /// laptop-scale fraction of the paper's counts; `--full` restores
    /// them.
    pub fn from_env() -> Self {
        let full = std::env::args().any(|a| a == "--full")
            || std::env::var("ASDEX_FULL").map(|v| v == "1").unwrap_or(false);
        let mut scale = if full {
            RunScale { many: 100, few: 10, full: true }
        } else {
            RunScale { many: 20, few: 3, full: false }
        };
        // Explicit overrides for smoke tests and CI.
        if let Ok(v) = std::env::var("ASDEX_RUNS") {
            if let Ok(n) = v.parse() {
                scale.many = n;
            }
        }
        if let Ok(v) = std::env::var("ASDEX_RUNS_FEW") {
            if let Ok(n) = v.parse() {
                scale.few = n;
            }
        }
        scale
    }
}

/// Parses the evaluation worker count for a harness: `--threads N` on
/// the command line wins, else 0 (which defers to `ASDEX_THREADS` inside
/// the batched pipeline, else serial). The thread count changes
/// wall-clock only, never results.
pub fn bench_threads() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        }
    }
    0
}

/// Summary statistics over per-run step counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of contributing runs.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for < 2 runs).
    pub std: f64,
}

impl Stats {
    /// Computes statistics of a sample; all-zero for an empty slice.
    pub fn of(samples: &[usize]) -> Stats {
        if samples.is_empty() {
            return Stats { n: 0, mean: 0.0, min: 0.0, max: 0.0, std: 0.0 };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<usize>() as f64 / n as f64;
        let min = *samples.iter().min().expect("nonempty") as f64;
        let max = *samples.iter().max().expect("nonempty") as f64;
        let std = if n < 2 {
            0.0
        } else {
            (samples.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        Stats { n, mean, min, max, std }
    }
}

/// Prints a report table with a title, column headers, and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain([h.len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("| {:<width$} ", c, width = widths[i]));
        }
        s.push('|');
        println!("{s}");
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        line(row.clone());
    }
}

/// Writes rows as CSV under `bench_results/<name>.csv` (best effort — a
/// read-only filesystem only loses the file, not the run).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = PathBuf::from("bench_results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    let _ = fs::write(dir.join(format!("{name}.csv")), out);
}

/// Merges per-run evaluation telemetry into one record and renders the
/// one-line summary every harness prints beneath its table: total
/// simulator calls, failures by kind, retry-ladder activity.
pub fn telemetry_line(per_run: &[asdex_env::EvalStats]) -> String {
    let mut total = asdex_env::EvalStats::new();
    for s in per_run {
        total.merge(s);
    }
    total.to_string()
}

/// Formats a float with a fixed number of decimals, rendering
/// non-finite/sentinel values as `"failed"`.
pub fn fmt_or_failed(x: f64, decimals: usize) -> String {
    if x.is_finite() {
        format!("{x:.decimals$}")
    } else {
        "failed".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = Stats::of(&[10, 20, 30]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        assert!((s.std - 10.0).abs() < 1e-12);
    }

    #[test]
    fn stats_degenerate() {
        assert_eq!(Stats::of(&[]).n, 0);
        let s = Stats::of(&[7]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_or_failed(1.23456, 2), "1.23");
        assert_eq!(fmt_or_failed(f64::NAN, 2), "failed");
        assert_eq!(fmt_or_failed(f64::INFINITY, 1), "failed");
    }
}
