//! **Ablation** — the escape criterion `C_riterion` (Algorithm 1 lines
//! 15–17).
//!
//! The agent abandons a region after `restart_after` non-improving steps
//! and re-seeds globally. Too small: it never exploits a basin. Too
//! large: it grinds in hopeless regions. This sweep quantifies the knob
//! on the 45 nm opamp.

use asdex_bench::{print_table, write_csv, RunScale, Stats};
use asdex_core::{ExplorerConfig, LocalExplorer};
use asdex_env::circuits::synthetic::Deceptive;
use asdex_env::{SearchBudget, Searcher};

fn main() {
    let scale = RunScale::from_env();
    let runs = scale.many;
    let problem = Deceptive::problem().expect("problem builds");
    // A tighter cap than Table I's: every simulated point is a closed-form
    // evaluation, but the no-restart variant spends its whole budget
    // training on a hopeless region, which costs real wall time.
    let budget = SearchBudget::new(3_000);
    println!("Deceptive landscape: a broad basin peaks just below spec; only the escape");
    println!("criterion lets the agent abandon it for the feasible needle elsewhere.");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for restart_after in [3usize, 10, 25, 80, 100_000] {
        let label = if restart_after >= 100_000 {
            "never restart".to_string()
        } else {
            format!("restart after {restart_after}")
        };
        let mut agent =
            LocalExplorer::new(ExplorerConfig { restart_after, ..ExplorerConfig::default() });
        let mut ok = Vec::new();
        let mut failures = 0usize;
        for seed in 0..runs as u64 {
            let out = agent.search(&problem, budget, seed);
            if out.success {
                ok.push(out.simulations);
            } else {
                failures += 1;
            }
        }
        let s = Stats::of(&ok);
        println!("  {label}: avg {:.1}, failures {failures}", s.mean);
        rows.push(vec![
            label.clone(),
            format!("{:.0}%", 100.0 * ok.len() as f64 / runs as f64),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.min),
            format!("{:.0}", s.max),
        ]);
        csv.push(vec![label, format!("{}", s.mean), format!("{}", ok.len()), format!("{failures}")]);
    }

    print_table(
        "Ablation — escape criterion sweep (deceptive landscape)",
        &["C_riterion", "success rate", "avg steps", "min", "max"],
        &rows,
    );
    write_csv("ablation_restart", &["variant", "avg_steps", "successes", "failures"], &csv);
    println!("\nExpectation: a moderate criterion wins; extremes hurt either exploitation\n(tiny) or escape from bad basins (huge).");
}
