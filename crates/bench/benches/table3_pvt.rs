//! **Table III** — Comparison of PVT exploration strategies.
//!
//! Paper (22 nm two-stage opamp, multiple PVT corners):
//!
//! | strategy                     | avg steps        | min | max  |
//! |------------------------------|------------------|-----|------|
//! | random search                | failed (10,000+) | —   | —    |
//! | brute force (test all cond.) | 359.4            | 36  | 1305 |
//! | progressive (random cond.)   | 89.52            | 20  | 450  |
//! | progressive (hardest cond.)  | 72.60            | 15  | 279  |
//!
//! Shape targets: random fails within the cap; progressive beats brute
//! force by roughly 4×; hardest-first edges out random-first but both are
//! the same order (the strategy is insensitive to the initial corner).

use asdex_baselines::RandomSearch;
use asdex_bench::{bench_threads, print_table, telemetry_line, write_csv, RunScale, Stats};
use asdex_core::{PvtExplorer, PvtStrategy};
use asdex_env::circuits::opamp::TwoStageOpamp;
use asdex_env::{PvtSet, SearchBudget};

fn main() {
    let scale = RunScale::from_env();
    let runs = scale.many;
    let budget = SearchBudget::new(10_000);

    let opamp = TwoStageOpamp::bsim22();
    let problem = opamp
        .problem_with(opamp.specs(), PvtSet::signoff5())
        .expect("PVT problem")
        .with_threads(bench_threads());
    println!(
        "Table III reproduction: 22 nm opamp across {} corners, {} runs each",
        problem.corners.len(),
        runs
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();

    // Row 1: random search over all corners.
    {
        let agent = RandomSearch::new();
        let mut steps = Vec::new();
        let mut failures = 0usize;
        let mut telemetry = Vec::new();
        for seed in 0..runs as u64 {
            let out = agent.search_all_corners(&problem, budget, seed);
            if out.success {
                steps.push(out.simulations);
            } else {
                failures += 1;
            }
            telemetry.push(out.stats);
        }
        println!("  random search telemetry: {}", telemetry_line(&telemetry));
        let s = Stats::of(&steps);
        let measured = if steps.is_empty() {
            format!("failed ({}+)", budget.max_sims)
        } else if failures > 0 {
            format!("{:.1} ({} failed)", s.mean, failures)
        } else {
            format!("{:.1}", s.mean)
        };
        println!("  random search: {failures}/{runs} failures");
        rows.push(vec![
            "random search".into(),
            measured,
            if steps.is_empty() { "NA".into() } else { format!("{:.0}", s.min) },
            if steps.is_empty() { "NA".into() } else { format!("{:.0}", s.max) },
            "failed (10,000+)".into(),
        ]);
        csv.push(vec![
            "random".into(),
            format!("{}", s.mean),
            format!("{}", steps.len()),
            format!("{failures}"),
        ]);
    }

    // Rows 2–4: brute force and the progressive strategies.
    let paper = [("359.4", "36", "1305"), ("89.52", "20", "450"), ("72.60", "15", "279")];
    for (strategy, (p_avg, p_min, p_max)) in [
        PvtStrategy::BruteForce,
        PvtStrategy::ProgressiveRandom,
        PvtStrategy::ProgressiveHardest,
    ]
    .into_iter()
    .zip(paper)
    {
        let agent = PvtExplorer::new(strategy);
        let mut steps = Vec::new();
        let mut failures = 0usize;
        let mut telemetry = Vec::new();
        for seed in 0..runs as u64 {
            let out = agent.run(&problem, budget, seed);
            if out.success {
                steps.push(out.simulations);
            } else {
                failures += 1;
            }
            telemetry.push(out.stats);
        }
        let s = Stats::of(&steps);
        println!("  {:<22} avg {:.1} (failures {failures})", strategy.label(), s.mean);
        println!("  {:<22} telemetry: {}", strategy.label(), telemetry_line(&telemetry));
        rows.push(vec![
            strategy.label().to_string(),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.min),
            format!("{:.0}", s.max),
            format!("{p_avg} / {p_min} / {p_max}"),
        ]);
        csv.push(vec![
            strategy.label().to_string(),
            format!("{}", s.mean),
            format!("{}", steps.len()),
            format!("{failures}"),
        ]);
    }

    print_table(
        "Table III — PVT exploration strategies (22 nm opamp, 5 corners)",
        &["strategy", "avg steps", "min", "max", "paper (avg/min/max)"],
        &rows,
    );
    write_csv("table3_pvt", &["strategy", "avg_steps", "successes", "failures"], &csv);
    println!(
        "\nShape check: random fails or nearly fails within the cap; progressive is a\nmultiple cheaper than brute force; the initial-corner choice moves the mean\nonly modestly."
    );
}
