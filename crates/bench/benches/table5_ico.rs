//! **Table V** — ICO sizing on the n5 node (TSMC 5 nm in the paper).
//!
//! Paper (design space 20^4):
//!
//! | agent         | # iterations | phase noise | frequency |
//! |---------------|--------------|-------------|-----------|
//! | specification | —            | < −71 dB    | > 8 GHz   |
//! | human         | untraceable  | −73.31 dB   | 8.45 GHz  |
//! | customized BO | 194          | −72.17 dB   | 8.87 GHz  |
//! | our method    | 43           | −71.76 dB   | 9.18 GHz  |
//!
//! Shape target: both agents satisfy the specs, and the global BO spends
//! a multiple of our local agent's iterations (paper: 4.5×).

use asdex_baselines::CustomizedBo;
use asdex_bench::{print_table, write_csv, RunScale, Stats};
use asdex_core::LocalExplorer;
use asdex_env::circuits::ico::{meas, Ico, IcoEvaluator};
use asdex_env::problem::Evaluator;
use asdex_env::{PvtCorner, SearchBudget, Searcher};

fn main() {
    let scale = RunScale::from_env();
    let runs = scale.many;
    let ico = Ico::n5();
    let problem = ico.problem().expect("ICO problem");
    let budget = SearchBudget::new(10_000);
    println!(
        "Table V reproduction: ICO on {}, |D| = 20^4, averaging {} runs",
        ico.process().name,
        runs
    );

    let mut rows = vec![vec![
        "specification".to_string(),
        "-".to_string(),
        "< -71 dB".to_string(),
        "> 8 GHz".to_string(),
        "spec".to_string(),
    ]];
    let mut csv = Vec::new();

    // Human reference.
    let eval = IcoEvaluator::new(ico.clone());
    let human_m = eval.evaluate(&ico.human_reference(), &PvtCorner::nominal()).expect("model evaluates");
    rows.push(vec![
        "human".to_string(),
        "untraceable".to_string(),
        format!("{:.2} dB", human_m[meas::PN_DBC]),
        format!("{:.2} GHz", human_m[meas::FREQ_HZ] / 1e9),
        "-73.31 dB / 8.45 GHz".to_string(),
    ]);
    csv.push(vec![
        "human".into(),
        "".into(),
        format!("{}", human_m[meas::PN_DBC]),
        format!("{}", human_m[meas::FREQ_HZ]),
    ]);

    // Agents averaged over seeds.
    let mut report = |name: &str, paper: &str, iters: &[usize], pn: f64, freq: f64, rows: &mut Vec<Vec<String>>| {
        let s = Stats::of(iters);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", s.mean),
            format!("{pn:.2} dB"),
            format!("{:.2} GHz", freq / 1e9),
            paper.to_string(),
        ]);
        csv.push(vec![name.to_string(), format!("{}", s.mean), format!("{pn}"), format!("{freq}")]);
    };

    let mut bo_iters = Vec::new();
    let mut bo_last = (f64::NAN, f64::NAN);
    for seed in 0..runs as u64 {
        let mut bo = CustomizedBo::new();
        let out = bo.search(&problem, budget, seed);
        if out.success {
            bo_iters.push(out.simulations);
            if let Some(m) = &out.best_measurements {
                bo_last = (m[meas::PN_DBC], m[meas::FREQ_HZ]);
            }
        }
    }
    println!("  BO: {}/{} success, avg {:.0}", bo_iters.len(), runs, Stats::of(&bo_iters).mean);
    report("customized BO", "194 / -72.17 dB / 8.87 GHz", &bo_iters, bo_last.0, bo_last.1, &mut rows);

    let mut trm_iters = Vec::new();
    let mut trm_last = (f64::NAN, f64::NAN);
    for seed in 0..runs as u64 {
        let mut agent = LocalExplorer::default();
        let out = agent.search(&problem, budget, seed);
        if out.success {
            trm_iters.push(out.simulations);
            if let Some(m) = &out.best_measurements {
                trm_last = (m[meas::PN_DBC], m[meas::FREQ_HZ]);
            }
        }
    }
    println!("  ours: {}/{} success, avg {:.0}", trm_iters.len(), runs, Stats::of(&trm_iters).mean);
    report("our method", "43 / -71.76 dB / 9.18 GHz", &trm_iters, trm_last.0, trm_last.1, &mut rows);

    print_table(
        "Table V — ICO circuit sizing benchmark (n5)",
        &["agent", "# iterations", "phase noise", "frequency", "paper"],
        &rows,
    );
    write_csv("table5_ico", &["agent", "iterations", "pn_dbc", "freq_hz"], &csv);

    let ratio = Stats::of(&bo_iters).mean / Stats::of(&trm_iters).mean.max(1.0);
    println!(
        "\nShape check: both agents meet the specs; BO/ours iteration ratio = {ratio:.1}x\n(paper: 4.5x) — the global surrogate pays a multiple over local search."
    );
}
