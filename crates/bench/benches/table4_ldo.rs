//! **Table IV** — LDO sizing on the n6 node (TSMC 6 nm in the paper).
//!
//! Paper (design space ≈ 10^29):
//!
//! | agent         | # iterations | loop gain | area     |
//! |---------------|--------------|-----------|----------|
//! | specification | —            | > 40.0 dB | < 650 µm² |
//! | human         | untraceable  | 38.0 dB   | 650 µm²  |
//! | customized BO | failed       | 38.2 dB   | 604 µm²  |
//! | our method    | 2609         | 40.0 dB   | 632 µm²  |
//!
//! Shape targets: the human reference lands close to but short of the
//! spec, BO gets close without satisfying every constraint in budget, and
//! the trust-region agent meets all specs. The spec *values* here are
//! recalibrated to the synthetic n6 landscape (Level-1 cards have far more
//! intrinsic gain than real 6 nm silicon — see `asdex_env::circuits::ldo`);
//! the spec *structure* (loop-gain floor vs area cap) is the paper's.

use asdex_baselines::CustomizedBo;
use asdex_bench::{print_table, write_csv, RunScale, Stats};
use asdex_core::LocalExplorer;
use asdex_env::circuits::ldo::{meas, Ldo};
use asdex_env::problem::Evaluator;
use asdex_env::{PvtCorner, SearchBudget, Searcher};

fn main() {
    let scale = RunScale::from_env();
    // LDO searches run thousands of slow simulations; cap the repetitions.
    let runs = scale.many.min(8) as u64;
    let ldo = Ldo::n6();
    let problem = ldo.problem().expect("LDO problem");
    let budget = SearchBudget::new(10_000);
    println!(
        "Table IV reproduction: LDO on {}, |D| = 10^{:.1}",
        ldo.process().name,
        problem.space.size_log10()
    );

    let mut rows = vec![vec![
        "specification".to_string(),
        "-".to_string(),
        "> 84.0 dB".to_string(),
        "< 58 um2".to_string(),
        "paper: > 40.0 dB, < 650 um2".to_string(),
    ]];
    let mut csv = Vec::new();

    // Human reference row.
    let human_x = ldo.human_reference();
    let eval = asdex_env::circuits::ldo::LdoEvaluator::new(ldo.clone());
    let human_m = eval.evaluate(&human_x, &PvtCorner::nominal()).expect("human design simulates");
    rows.push(vec![
        "human".to_string(),
        "untraceable".to_string(),
        format!("{:.1} dB", human_m[meas::LOOP_GAIN_DB]),
        format!("{:.0} um2", human_m[meas::AREA_UM2]),
        "38.0 dB / 650 um2".to_string(),
    ]);
    csv.push(vec![
        "human".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{}", human_m[meas::LOOP_GAIN_DB]),
        format!("{}", human_m[meas::AREA_UM2]),
    ]);

    // Agents averaged over seeds.
    let bench_agent = |name: &str, agent: &mut dyn Searcher, paper: &str, rows: &mut Vec<Vec<String>>, csv: &mut Vec<Vec<String>>| {
        let mut ok = Vec::new();
        let mut failures = 0usize;
        let mut last = (f64::NAN, f64::NAN);
        for seed in 0..runs {
            let out = agent.search(&problem, budget, seed);
            if out.success {
                ok.push(out.simulations);
                if let Some(m) = &out.best_measurements {
                    last = (m[meas::LOOP_GAIN_DB], m[meas::AREA_UM2]);
                }
            } else {
                failures += 1;
            }
        }
        let s = Stats::of(&ok);
        let iters = if failures > 0 && ok.is_empty() {
            "failed".to_string()
        } else if failures > 0 {
            format!("{:.0} ({failures}/{runs} failed)", s.mean)
        } else {
            format!("{:.0}", s.mean)
        };
        println!("  {name}: {}/{} success, avg {:.0}", ok.len(), runs, s.mean);
        rows.push(vec![
            name.to_string(),
            iters,
            format!("{:.1} dB", last.0),
            format!("{:.0} um2", last.1),
            paper.to_string(),
        ]);
        csv.push(vec![
            name.to_string(),
            format!("{}", s.mean),
            format!("{}", ok.len()),
            format!("{failures}"),
            format!("{}", last.0),
            format!("{}", last.1),
        ]);
    };

    bench_agent("customized BO", &mut CustomizedBo::new(), "failed / 38.2 dB / 604 um2", &mut rows, &mut csv);
    bench_agent("our method", &mut LocalExplorer::default(), "2609 / 40.0 dB / 632 um2", &mut rows, &mut csv);

    print_table(
        "Table IV — LDO circuit sizing benchmark (n6)",
        &["agent", "# iterations", "loop gain", "area", "paper"],
        &rows,
    );
    write_csv(
        "table4_ldo",
        &["agent", "avg_iterations", "successes", "failures", "loop_gain_db", "area_um2"],
        &csv,
    );
    println!(
        "\nShape check: the human reference is competent but short of spec; the\ntrust-region agent satisfies every constraint within budget."
    );
}
